// Node churn: the engine treats topology as mutable at runtime. Nodes join
// (and immediately start receiving diffusion flow), loaded nodes leave
// (their tasks are redistributed to their neighbours, conserving load at
// the event boundary), and edges appear — all while Algorithm 1 keeps
// balancing. Locality (footnote 1) is what makes this cheap: only the
// affected neighbourhood's diffusion parameters and flow accumulators are
// rebuilt.
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	discretelb "repro"
)

func main() {
	const side = 8
	g, err := discretelb.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	s := discretelb.UniformSpeeds(n)
	rng := rand.New(rand.NewSource(7))
	tokens := discretelb.UniformRandomLoad(n, 16*int64(n), rng)
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := discretelb.NewEngine(discretelb.EngineConfig{Graph: g, Speeds: s, Tasks: tasks})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The churn schedule: two fast nodes join, two loaded nodes leave, and
	// a shortcut edge appears.
	events := []discretelb.EngineEvent{
		discretelb.EngineJoin(10, 2, 0, 9, 33),                          // slot 64: speed 2, three peers
		discretelb.EngineJoin(20, 2, 5, 42),                             // slot 65
		discretelb.EngineArrival(25, n, 500),                            // burst straight at the first joiner
		discretelb.EngineLeave(30, 27),                                  // interior node hands load to 4 neighbours
		discretelb.EngineLeave(40, 13),                                  //
		discretelb.EngineEdgeChange(50, [][2]int{{3, 3 + 4*side}}, nil), // shortcut
		discretelb.EngineCompletion(60, 9, 200),                         // some work finishes
	}
	for _, ev := range events {
		if err := eng.Schedule(ev); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("torus %dx%d, W=%d: joins at rounds 10/20, leaves at 30/40, edge at 50\n\n",
		side, side, eng.RealTotal())
	for round := 0; round < 120; round++ {
		if err := eng.Step(); err != nil {
			log.Fatal(err) // a conservation failure would surface here
		}
		if (round+1)%15 == 0 {
			sm, _ := eng.LastSample()
			fmt.Printf("round %3d: n=%d m=%d  W=%5d  max-avg %6.2f  dummies %d\n",
				sm.Round, sm.Nodes, sm.Edges, sm.RealTotal, sm.MaxAvg, sm.Dummies)
		}
	}

	// The event loop validated the incremental ledger as it went; the
	// quiescence check is the stop-the-world recount.
	if err := eng.AuditFull(); err != nil {
		log.Fatal(err)
	}
	extra, ok, err := eng.RunUntilBound(5000)
	if err != nil {
		log.Fatal(err)
	}
	snap := eng.Snapshot(false)
	fmt.Printf("\nafter churn: n=%d (64 − 2 + 2), load conserved, max-avg %.2f <= bound %.0f (ok=%v, +%d rounds)\n",
		snap.Nodes, snap.MaxAvg, snap.Bound, ok, extra)
	if !ok {
		log.Fatal("discrepancy did not re-enter the Theorem 3 bound")
	}
}
