// Heterogeneous cluster: weighted tasks on nodes with different speeds —
// the paper's general model, which most prior discrete schemes do not
// support. A two-tier cluster (half the machines 4x faster) receives a burst
// of mixed-size jobs on one ingress node; Algorithm 1 over FOS spreads them
// so every machine's makespan (load/speed) agrees up to the Theorem 3 bound
// 2·d·wmax + 2.
//
// Run with:
//
//	go run ./examples/hetcluster
package main

import (
	"fmt"
	"log"
	"math/rand"

	discretelb "repro"

	"repro/internal/workload"
)

func main() {
	const (
		side  = 12 // 12x12 torus: the cluster interconnect
		wmax  = 8  // heaviest job weight
		jobs  = 9000
		fast  = 4 // speed of the fast tier
		seed  = 7
		probe = 500_000
	)
	g, err := discretelb.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	s, err := workload.TieredSpeeds(g.N(), fast)
	if err != nil {
		log.Fatal(err)
	}

	// A burst of mixed-size jobs arriving at ingress node 0.
	rng := rand.New(rand.NewSource(seed))
	dist, err := workload.PointMassWeightedTasks(g.N(), jobs, 0, wmax, rng)
	if err != nil {
		log.Fatal(err)
	}
	totalWeight := dist.Loads().Total()

	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		log.Fatal(err)
	}
	factory := discretelb.FOSFactory(g, s, alpha)
	bt, err := discretelb.TimeToBalance(factory, dist.Loads().Float(), probe)
	if err != nil {
		log.Fatal(err)
	}

	p, err := discretelb.NewFlowImitation(g, s, dist, factory, discretelb.PolicyLIFO)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discretelb.Run(p, discretelb.RunOptions{Rounds: bt, RealTotal: totalWeight})
	if err != nil {
		log.Fatal(err)
	}

	bound := float64(2*int64(g.MaxDegree())*dist.MaxWeight() + 2)
	fmt.Printf("cluster: %s, speeds 1/%d two-tier, %d jobs (wmax=%d, W=%d)\n",
		g, fast, jobs, dist.MaxWeight(), totalWeight)
	fmt.Printf("continuous balancing time T = %d rounds\n", bt)
	fmt.Printf("final max-min makespan gap: %.2f\n", res.MaxMin)
	fmt.Printf("final max-avg makespan gap: %.2f (Theorem 3 bound %.0f)\n", res.MaxAvg, bound)
	fmt.Printf("dummy tokens created: %d\n", res.Dummies)

	// Show a few per-tier makespans to make the speed-proportional
	// allocation visible.
	ms, err := discretelb.Makespans(res.FinalLoad, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample makespans  fast tier: %.1f %.1f %.1f   slow tier: %.1f %.1f %.1f\n",
		ms[0], ms[1], ms[2], ms[g.N()-3], ms[g.N()-2], ms[g.N()-1])
	fmt.Printf("ideal makespan W/S = %.1f everywhere\n",
		float64(totalWeight)/float64(s.Sum()))
}
