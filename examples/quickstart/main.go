// Quickstart: balance unit tokens on a hypercube with the paper's
// Algorithm 1 (deterministic flow imitation over first-order diffusion).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	discretelb "repro"
)

func main() {
	// An 8-dimensional hypercube: n = 256 nodes, degree d = 8.
	g, err := discretelb.NewHypercube(8)
	if err != nil {
		log.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())

	// Adversarial start: all 16384 tokens on node 0.
	tokens, err := discretelb.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		log.Fatal(err)
	}

	res, err := discretelb.BalanceTokensAlg1(g, s, tokens)
	if err != nil {
		log.Fatal(err)
	}

	bound := 2*g.MaxDegree() + 2 // Theorem 3 with wmax = 1
	fmt.Printf("graph: %s\n", g)
	fmt.Printf("rounds run (continuous balancing time T): %d\n", res.Rounds)
	fmt.Printf("final max-min discrepancy: %.0f (Theorem 3 bound: %d)\n", res.MaxMin, bound)
	fmt.Printf("final max-avg discrepancy: %.0f\n", res.MaxAvg)
	fmt.Printf("dummy tokens created: %d\n", res.Dummies)
	if res.MaxAvg <= float64(bound) {
		fmt.Println("=> within the paper's bound")
	}
}
