// Matching model: single-port balancing on an arbitrary (non-regular)
// network. Each round load moves only along a random maximal matching, as in
// the random matching model of Ghosh–Muthukrishnan, and the paper's
// Algorithm 2 (randomized flow imitation) discretizes it. This is the
// setting of Table 2, where Algorithm 1/2 are the only schemes whose final
// discrepancy is independent of n on arbitrary graphs.
//
// Run with:
//
//	go run ./examples/matchingmodel
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	discretelb "repro"
)

func main() {
	const (
		n     = 400
		seed  = 42
		probe = 500_000
	)
	rng := rand.New(rand.NewSource(seed))
	g, err := discretelb.NewErdosRenyi(n, 8.0/float64(n-1), rng)
	if err != nil {
		log.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())

	tokens, err := discretelb.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		log.Fatal(err)
	}

	// One random maximal matching per round; the schedule is shared by the
	// probe and the imitator so both see the same matchings.
	sched := discretelb.NewRandomMatchings(g, seed)
	factory := discretelb.MatchingFactory(g, s, sched)
	bt, err := discretelb.TimeToBalance(factory, tokens.Float(), probe)
	if err != nil {
		log.Fatal(err)
	}

	p, err := discretelb.NewRandomizedFlowImitation(g, s, tokens, factory,
		rand.New(rand.NewSource(seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := discretelb.Run(p, discretelb.RunOptions{
		Rounds:     bt,
		RealTotal:  tokens.Total(),
		TraceEvery: bt / 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	d := float64(g.MaxDegree())
	bound := d/4 + math.Sqrt(d*math.Log(float64(g.N())))
	fmt.Printf("network: %s (non-regular; min degree %d, max degree %d)\n",
		g, g.MinDegree(), g.MaxDegree())
	fmt.Printf("random-matching balancing time T = %d rounds\n", bt)
	for _, pt := range res.Trace {
		fmt.Printf("  round %6d: max-min %8.1f\n", pt.Round, pt.MaxMin)
	}
	fmt.Printf("final max-min discrepancy: %.1f\n", res.MaxMin)
	fmt.Printf("final max-avg discrepancy: %.1f (Theorem 8 shape d/4+sqrt(d·ln n) = %.1f)\n",
		res.MaxAvg, bound)
	fmt.Printf("dummy tokens created: %d\n", res.Dummies)
}
