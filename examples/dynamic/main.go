// Dynamic arrivals, online: the paper's processes are additive in the
// workload (Definition 3), so load injected mid-run simply starts balancing
// on top of the load already in motion. This example streams Poisson
// background bursts plus a three-corner hotspot ingress into the always-on
// engine — no restarts, no hand-rolled injection — and watches the max-avg
// discrepancy collapse back under the Theorem 3 bound once the stream dries
// up.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"

	discretelb "repro"
)

func main() {
	const (
		side      = 12
		burstSize = 256
	)
	g, err := discretelb.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())

	eng, err := discretelb.NewEngine(discretelb.EngineConfig{Graph: g, Speeds: s})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Streamed traffic: Poisson(0.7) bursts of 256 tokens over the first 60
	// rounds, plus three hotspot corners receiving 32 tokens per round for
	// 25 rounds.
	rng := rand.New(rand.NewSource(42))
	bursts, err := discretelb.PoissonBursts(g.N(), 60, 0.7, burstSize, 1, rng)
	if err != nil {
		log.Fatal(err)
	}
	hot, err := discretelb.HotspotIngress([]int{0, side*side/2 + side/2, side - 1}, 20, 25, 32, g.N())
	if err != nil {
		log.Fatal(err)
	}
	var streamed int64
	for _, a := range append(bursts, hot...) {
		streamed += int64(len(a.Tasks))
		if err := eng.Schedule(discretelb.EngineArrivalTasks(a.Round, a.Node, a.Tasks)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streaming %d tokens in %d batches into an empty %dx%d torus (bound %v)\n\n",
		streamed, len(bursts)+len(hot), side, side, eng.Bound())

	for round := 0; round < 400; round++ {
		if err := eng.Step(); err != nil {
			log.Fatal(err)
		}
		if (round+1)%40 == 0 {
			sample, _ := eng.LastSample()
			fmt.Printf("round %4d: W=%6d  max-avg %7.2f  Φ %10.0f  dummies %d\n",
				sample.Round, sample.RealTotal, sample.MaxAvg, sample.Potential, sample.Dummies)
		}
	}

	snap := eng.Snapshot(false)
	fmt.Printf("\nquiesced: max-avg %.2f (Theorem 3 bound %.0f), %d events, dummies %d\n",
		snap.MaxAvg, snap.Bound, snap.Events, snap.Dummies)
	if snap.MaxAvg > snap.Bound {
		log.Fatalf("discrepancy %.2f above bound %.0f", snap.MaxAvg, snap.Bound)
	}
}
