// Dynamic arrivals: the paper's processes are stateless in the workload —
// by additivity (Definition 3) a burst of new tasks dropped mid-run simply
// starts balancing on top of the already-moving load. This example injects
// three bursts at different ingress nodes of a torus and shows the max-avg
// discrepancy collapsing back under the Theorem 3 bound after each burst.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	discretelb "repro"
)

func main() {
	const (
		side     = 12
		perBurst = 4096
		settle   = 160 // rounds given to each burst
	)
	g, err := discretelb.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		log.Fatal(err)
	}

	// Start empty; bursts arrive at three corners of the torus. After each
	// burst we continue the same discrete process — flow imitation restarts
	// its continuous reference from the current (task) state, which is
	// exactly what a real system would do on re-balancing.
	ingress := []int{0, side*side/2 + side/2, side - 1}
	var carried discretelb.TaskDist = make([][]discretelb.Task, g.N())
	totalWeight := int64(0)

	for burst, node := range ingress {
		for k := 0; k < perBurst; k++ {
			carried[node] = append(carried[node], discretelb.Task{Weight: 1})
		}
		totalWeight += perBurst

		factory := discretelb.FOSFactory(g, s, alpha)
		p, err := discretelb.NewFlowImitation(g, s, carried, factory, discretelb.PolicyLIFO)
		if err != nil {
			log.Fatal(err)
		}
		res, err := discretelb.Run(p, discretelb.RunOptions{
			Rounds:     settle,
			RealTotal:  totalWeight,
			TraceEvery: settle / 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("burst %d: +%d tokens at node %d (W=%d)\n", burst+1, perBurst, node, totalWeight)
		for _, pt := range res.Trace {
			fmt.Printf("  round %4d: max-avg %8.1f\n", pt.Round, pt.MaxAvg)
		}
		fmt.Printf("  settled: max-avg %.1f (Theorem 3 bound %d), dummies %d\n\n",
			res.MaxAvg, 2*g.MaxDegree()+2, res.Dummies)

		// Carry the settled placement into the next burst.
		carried = p.Tasks()
	}
}
