// Distributed execution: Algorithm 1 with one goroutine per node, whole
// tasks travelling as channel messages, and a private continuous-process
// replica on every node (the paper's footnote 1). The run is verified to be
// bit-for-bit identical to the centralized implementation.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/continuous"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

func main() {
	g, err := graph.Hypercube(7) // n=128, d=7
	if err != nil {
		log.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		log.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		log.Fatal(err)
	}
	tokens, err := load.NewTokens(x0)
	if err != nil {
		log.Fatal(err)
	}
	maker := dist.FOSMaker(g, s, alpha)

	// How long the continuous process needs.
	probe, err := maker(x0.Float())
	if err != nil {
		log.Fatal(err)
	}
	bt, err := continuous.BalancingTime(probe, 500_000)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := dist.NewCluster(g, s, tokens, maker)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d node goroutines on %s, T = %d rounds\n", g.N(), g, bt)
	for t := 0; t < bt; t++ {
		cluster.Step()
	}
	maxAvg, err := load.MaxAvgDiscrepancy(cluster.LoadExcludingDummies(), s, x0.Total())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed final max-avg discrepancy: %.0f (bound %d), dummies %d\n",
		maxAvg, 2*g.MaxDegree()+2, cluster.DummiesCreated())

	// Cross-check against the centralized engine, round by round.
	if err := dist.Verify(g, s, tokens, maker, bt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: distributed run identical to centralized Algorithm 1")
}
