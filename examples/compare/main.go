// Compare: every diffusion-model discrete scheme side by side on a 2-d
// torus — the low-expansion graph class where the paper's flow-imitation
// algorithms separate most clearly from round-down (whose final discrepancy
// grows with the diameter, Table 1's n^{1/r} column).
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"math/rand"

	discretelb "repro"
)

func main() {
	const (
		side  = 16
		seed  = 3
		probe = 500_000
	)
	g, err := discretelb.NewTorus(side, side)
	if err != nil {
		log.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens, err := discretelb.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		log.Fatal(err)
	}
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		log.Fatal(err)
	}
	factory := discretelb.FOSFactory(g, s, alpha)
	bt, err := discretelb.TimeToBalance(factory, tokens.Float(), probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torus %dx%d, %d tokens on node 0, T = %d rounds\n\n",
		side, side, tokens.Total(), bt)
	fmt.Printf("%-28s %10s %10s %9s %5s\n", "scheme", "max-min", "max-avg", "dummies", "neg")

	type build func() (discretelb.DiscreteProcess, error)
	schemes := []struct {
		name  string
		build build
	}{
		{"round-down [37]", func() (discretelb.DiscreteProcess, error) {
			return discretelb.NewRoundDownDiffusion(g, s, alpha, tokens)
		}},
		{"deterministic [26]", func() (discretelb.DiscreteProcess, error) {
			return discretelb.NewDeterministicAccum(g, s, alpha, tokens)
		}},
		{"rand-round [26]", func() (discretelb.DiscreteProcess, error) {
			return discretelb.NewRandomizedRounding(g, s, alpha, tokens, rand.New(rand.NewSource(seed)))
		}},
		{"excess-token [9]", func() (discretelb.DiscreteProcess, error) {
			return discretelb.NewExcessToken(g, s, alpha, tokens, rand.New(rand.NewSource(seed)))
		}},
		{"Alg 1 (this paper)", func() (discretelb.DiscreteProcess, error) {
			dist, err := discretelb.NewTokens(tokens)
			if err != nil {
				return nil, err
			}
			return discretelb.NewFlowImitation(g, s, dist, factory, discretelb.PolicyLIFO)
		}},
		{"Alg 2 (this paper)", func() (discretelb.DiscreteProcess, error) {
			return discretelb.NewRandomizedFlowImitation(g, s, tokens, factory, rand.New(rand.NewSource(seed)))
		}},
	}
	for _, sc := range schemes {
		p, err := sc.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := discretelb.Run(p, discretelb.RunOptions{Rounds: bt, RealTotal: tokens.Total()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.1f %10.1f %9d %5v\n",
			sc.name, res.MaxMin, res.MaxAvg, res.Dummies, res.WentNegative)
	}
	fmt.Printf("\nTheorem 3 bound for Alg 1 (max-avg): %d\n", 2*g.MaxDegree()+2)
}
