package lint

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"
)

// TestMapOrderGolden runs maporder over the core fixture and asserts the
// violations land in exactly the functions written to violate, while every
// admitted pattern (integer accumulation, disjoint writes, deletes,
// justified sites) passes.
func TestMapOrderGolden(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/core")
	diags := (MapOrder{}).Run(pkg)
	wantFuncs(t, pkg, diags,
		"floatAccumulation",
		"orderedAppend",
		"lastWriterWins",
		"callInBody",
	)
	for _, d := range diags {
		if d.Analyzer != "maporder" {
			t.Errorf("wrong analyzer tag on %s", d)
		}
	}
}

// TestMapOrderSkipsNonDeterministicPackages: the same patterns outside the
// deterministic set are not maporder's business.
func TestMapOrderSkipsNonDeterministicPackages(t *testing.T) {
	pkg := fixturePkg(t, "fixture/baddir")
	if diags := (MapOrder{}).Run(pkg); len(diags) != 0 {
		t.Fatalf("maporder fired outside the deterministic set:\n%s", diagList(diags))
	}
}

// TestMapOrderBugClassFlipsHash is the executable form of the bug class
// maporder exists to catch: summing the same three floats in two iteration
// orders produces different values, so any state hash over the sum differs
// between two executions of identical input. Go randomizes map iteration
// per execution — an unsorted map range feeding a float accumulator IS
// this test, run by the scheduler.
func TestMapOrderBugClassFlipsHash(t *testing.T) {
	weights := map[int]float64{1: 0.1, 2: 0.2, 3: 0.3}
	sumIn := func(order ...int) float64 {
		var sum float64
		for _, k := range order {
			sum += weights[k]
		}
		return sum
	}
	a, b := sumIn(1, 2, 3), sumIn(3, 2, 1)
	if a == b {
		t.Fatalf("expected order-dependent float sums, got %v twice", a)
	}
	hash := func(v float64) [sha256.Size]byte {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		return sha256.Sum256(buf[:])
	}
	if hash(a) == hash(b) {
		t.Fatal("state hashes over the two sums should differ")
	}

	// And the analyzer catches the fixture function containing exactly
	// this pattern over a real map range.
	pkg := fixturePkg(t, "fixture/internal/core")
	for _, d := range (MapOrder{}).Run(pkg) {
		if funcOf(pkg, d) == "floatAccumulation" {
			return
		}
	}
	t.Fatal("maporder did not flag the float-accumulation fixture")
}

// TestMapOrderStaleDirective: a justification that justifies nothing is
// drift and must fail loudly.
func TestMapOrderStaleDirective(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/core")
	r := &Runner{Analyzers: []Analyzer{MapOrder{}, NonDet{}}}
	diags := r.Run([]*Package{pkg})
	var staleOrder, staleState bool
	for _, d := range byAnalyzer(diags, "lint") {
		switch funcOf(pkg, d) {
		case "staleJustification":
			staleOrder = true
		case "staleAmbientJustification":
			staleState = true
		}
	}
	if !staleOrder {
		t.Error("stale //lb:orderfree not reported")
	}
	if !staleState {
		t.Error("stale //lb:statefree not reported")
	}
	// The used justifications must NOT be reported stale.
	for _, d := range byAnalyzer(diags, "lint") {
		if f := funcOf(pkg, d); f == "justifiedProbe" || f == "sortedSum" || f == "justifiedTiming" || f == "metricsProbe" {
			t.Errorf("live justification reported stale: %s", d)
		}
	}
}
