package lint

import (
	"strings"
	"testing"
)

// TestLoaderTypeCheckFailure: a package that fails to type-check is a
// diagnostic with a position, never silence.
func TestLoaderTypeCheckFailure(t *testing.T) {
	pkg := fixturePkg(t, "fixture/broken")
	if pkg.TypeErr == nil {
		t.Fatal("broken fixture type-checked cleanly")
	}
	diags := pkg.loadDiagnostics()
	if len(diags) == 0 {
		t.Fatal("type-check failure produced no diagnostic")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "failed to type-check") && strings.Contains(d.File, "broken.go") && d.Line > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no positioned type-check diagnostic:\n%s", diagList(diags))
	}
}

// TestLoaderDegradedAnalyzers: analyzers that need type info must not
// panic or fabricate findings on a package with type errors.
func TestLoaderDegradedAnalyzers(t *testing.T) {
	pkg := fixturePkg(t, "fixture/broken")
	for _, a := range []Analyzer{MapOrder{}, NonDet{}, NewLedgerFlow(DefaultLedgerPolicy())} {
		if diags := a.Run(pkg); len(diags) != 0 {
			t.Errorf("%s fabricated findings on a broken package:\n%s", a.Name(), diagList(diags))
		}
	}
}

// TestLoaderParsesAllTargets: the loader returns every non-testdata
// package of the fixture module with files and type info attached.
func TestLoaderParsesAllTargets(t *testing.T) {
	pkgs := loadFixture(t)
	want := map[string]bool{
		"fixture/internal/core":   false,
		"fixture/internal/dist":   false,
		"fixture/internal/engine": false,
		"fixture/hot":             false,
		"fixture/broken":          false,
		"fixture/baddir":          false,
	}
	for _, pkg := range pkgs {
		if _, ok := want[pkg.Path]; !ok {
			t.Errorf("unexpected package %s", pkg.Path)
			continue
		}
		want[pkg.Path] = true
		if len(pkg.Files) == 0 {
			t.Errorf("%s loaded with no files", pkg.Path)
		}
		if pkg.Path != "fixture/broken" && (pkg.Info == nil || pkg.TypeErr != nil) {
			t.Errorf("%s should type-check cleanly: %v", pkg.Path, pkg.TypeErr)
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}

// TestLoaderCrossPackageTypes: fixture/internal/engine resolves
// dist.SendState through export data — the zero-dependency spine of the
// whole suite.
func TestLoaderCrossPackageTypes(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/engine")
	if pkg.TypeErr != nil {
		t.Fatalf("engine fixture failed to type-check: %v", pkg.TypeErr)
	}
	lf := NewLedgerFlow(DefaultLedgerPolicy())
	if diags := lf.Run(pkg); len(diags) == 0 {
		t.Fatal("cross-package receiver resolution is broken: no guarded methods recognized")
	}
}

// TestLoaderBadPattern surfaces go list failures as errors.
func TestLoaderBadPattern(t *testing.T) {
	loader := &Loader{Dir: fixtureDir}
	if _, err := loader.Load("./does-not-exist/..."); err == nil {
		t.Fatal("want an error for a pattern matching nothing")
	}
}
