package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (where possible) type-checked package.
type Package struct {
	// Path is the import path; Dir the source directory.
	Path string
	Dir  string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in GoFiles order.
	Files []*ast.File
	// GoFiles are the absolute paths of the parsed files.
	GoFiles []string
	// Types and Info carry the type-check result; Info is non-nil even
	// after a type error (filled for the parts that checked).
	Types *types.Package
	Info  *types.Info
	// TypeErr is the first type-check error; ListErr a go list load error.
	// Either surfaces as a diagnostic — never as silence.
	TypeErr error
	ListErr error
	// Directives are the parsed //lb: annotations of the package.
	Directives     []*Directive
	directiveDiags []Diagnostic
}

// loadDiagnostics converts load and type-check failures into findings.
func (p *Package) loadDiagnostics() []Diagnostic {
	var out []Diagnostic
	if p.ListErr != nil {
		out = append(out, diag("lint", token.Position{Filename: p.Dir},
			"package %s failed to load: %v", p.Path, p.ListErr))
	}
	if p.TypeErr != nil {
		pos := token.Position{Filename: p.Dir}
		if te, ok := p.TypeErr.(types.Error); ok {
			pos = te.Fset.Position(te.Pos)
		}
		out = append(out, diag("lint", pos,
			"package %s failed to type-check: %v (analyzers needing type information ran degraded)", p.Path, p.TypeErr))
	}
	return out
}

// Loader loads packages for analysis. It shells out to `go list -json`
// for build-system metadata (file sets, import resolution, export data for
// dependencies) and runs go/parser + go/types itself, so the module under
// analysis needs no dependencies beyond the standard toolchain.
type Loader struct {
	// Dir is the directory go list runs in; empty means the process cwd.
	Dir string
	// Env appends to the go command's environment (tests pin GOFLAGS).
	Env []string
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns plus their full dependency
// closure, parses the matched packages, and type-checks them against the
// toolchain's export data. Packages that fail to list or type-check are
// returned with ListErr/TypeErr set — callers decide whether that is fatal
// (the Runner reports it as a diagnostic).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	importMap := make(map[string]string)
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
		if !lp.DepOnly && !lp.Standard {
			// A pattern that resolves to nothing comes back as a pseudo-
			// package with no directory and no files — only an Error. That
			// is a caller mistake, not an analyzable package: fail the load
			// rather than report a clean pass over zero code.
			if lp.Error != nil && lp.Dir == "" && len(lp.GoFiles) == 0 {
				return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, strings.TrimSpace(lp.Error.Err))
			}
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	if len(targets) == 0 {
		// `go list -e` exits zero on a pattern that matches nothing; an
		// analysis run over zero packages would report a clean pass for
		// code that was never looked at.
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (dependency failed to build?)", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Fset: fset}
		if lp.Error != nil {
			pkg.ListErr = fmt.Errorf("%s", strings.TrimSpace(lp.Error.Err))
		}
		for _, name := range lp.GoFiles {
			fname := filepath.Join(lp.Dir, name)
			f, perr := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				if pkg.TypeErr == nil {
					pkg.TypeErr = perr
				}
				continue
			}
			pkg.Files = append(pkg.Files, f)
			pkg.GoFiles = append(pkg.GoFiles, fname)
		}
		pkg.Directives, pkg.directiveDiags = parseDirectives(fset, pkg.Files)
		if pkg.TypeErr == nil && len(pkg.Files) > 0 {
			l.typeCheck(pkg, imp)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck runs go/types over the package's parsed files. Errors are
// recorded, not fatal: Info stays usable for the prefix that checked, and
// the Runner reports the failure as a finding.
func (l *Loader) typeCheck(pkg *Package, imp types.Importer) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if pkg.TypeErr == nil {
				pkg.TypeErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if err != nil && pkg.TypeErr == nil {
		pkg.TypeErr = err
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// goList runs `go list -e -export -deps -json` over the patterns and
// decodes the package stream. -e keeps broken packages in the output with
// their Error field set; -export materializes dependency export data in the
// build cache so the type-checker never parses dependency source.
func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,ImportMap,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), l.Env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
