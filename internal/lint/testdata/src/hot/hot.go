// Package hot exercises the hotalloc escape gate end to end: the test runs
// the real compiler escape analysis (go build -gcflags=-m) over this
// package and asserts the gate attributes each allocation to the right
// annotated function.
package hot

// escapingBuffer allocates on every call: the returned slice escapes.
//
//lb:hotpath
func escapingBuffer(n int) []int {
	buf := make([]int, n)
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// boxedCounter leaks a pointer to a local, moving it to the heap, and
// returns an escaping closure.
//
//lb:hotpath
func boxedCounter() func() int {
	x := 0
	return func() int {
		x++
		return x
	}
}

// clean is hot and allocation-free: the gate admits it without allowlist
// entries.
//
//lb:hotpath
func clean(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// coldAllocator allocates but is not annotated, so the gate ignores it.
func coldAllocator(n int) []int {
	return make([]int, n)
}
