// Package engine is the golden fixture for ledgerflow's engine-side rules:
// the ledgered helpers and per-node phase bodies are approved, the conduit
// function-literal pattern is admitted, and everything else that touches a
// guarded pool method is a violation. Expected findings are asserted in
// ledgerflow_test.go.
package engine

import "fixture/internal/dist"

type engine struct {
	st      []*dist.SendState
	ledReal int64
}

// mutateLedgered is both approved and a conduit: a function literal passed
// directly to it runs under the ledger fold.
func (e *engine) mutateLedgered(st *dist.SendState, mutate func()) {
	mutate()
	e.ledReal++
}

// addTasksLedgered is the approved arrival path.
func (e *engine) addTasksLedgered(st *dist.SendState, ts []dist.Task) {
	st.AddTasks(ts)
	e.ledReal++
}

// applyArrival is admitted: the mutation sits in a conduit literal.
func (e *engine) applyArrival(st *dist.SendState, ts []dist.Task) {
	e.mutateLedgered(st, func() {
		st.AddTasks(ts)
	})
}

// decideFullNode is the approved decide-phase body.
func (e *engine) decideFullNode(i int) {
	e.st[i].Take()
}

// deliverFullNode is the approved delivery-phase body.
func (e *engine) deliverFullNode(i int, ts []dist.Task) {
	e.st[i].AddTasks(ts)
}

// decideGatedNode is the approved gated decide-phase body.
func (e *engine) decideGatedNode(k int) {
	e.st[k].Take()
}

// deliverGatedNode is the approved gated delivery-phase body.
func (e *engine) deliverGatedNode(k int, ts []dist.Task) {
	e.st[k].AddTasks(ts)
}

// applyRebalance is a violation: a direct weight-bearing mutation outside
// every approved path.
func (e *engine) applyRebalance(st *dist.SendState, ts []dist.Task) {
	st.AddTasks(ts)
}

// drainDeparted is a violation: Drain from an unapproved function.
func (e *engine) drainDeparted(st *dist.SendState) []dist.Task {
	return st.Drain()
}

// forwardVia is a violation: the guarded method escapes as a method value,
// to be invoked far from any ledger fold.
func (e *engine) forwardVia(st *dist.SendState) func() (int64, bool) {
	return st.Take
}

// sneakyNested is a violation: a function literal NOT passed to a conduit
// does not inherit approval.
func (e *engine) sneakyNested(st *dist.SendState) {
	helper := func() {
		st.RemoveNewestReal()
	}
	helper()
}
