// Package dist mirrors the production pool surface for ledgerflow's golden
// tests: SendState carries the guarded weight-bearing method set, its own
// implementation is self-approved, and runRound is the approved per-node
// round. leakDrain is the violation: a free function in the defining
// package is neither.
package dist

type Task struct {
	Weight int64
	Dummy  bool
}

type Arc struct{ Edge, Out, To int }

// SendState is the fixture pool; the method names match the production
// guarded table.
type SendState struct {
	tasks []Task
	total int64
}

func (st *SendState) AddTasks(ts []Task) {
	st.tasks = append(st.tasks, ts...)
	for _, t := range ts {
		st.total += t.Weight
	}
}

func (st *SendState) RemoveNewestReal() (Task, bool) {
	for i := len(st.tasks) - 1; i >= 0; i-- {
		if !st.tasks[i].Dummy {
			t := st.tasks[i]
			st.tasks = append(st.tasks[:i], st.tasks[i+1:]...)
			st.total -= t.Weight
			return t, true
		}
	}
	return Task{}, false
}

func (st *SendState) Drain() []Task {
	out := st.tasks
	st.tasks = nil
	st.total = 0
	return out
}

// Take draws via the unexported fast path — self-approved: the defining
// implementation may compose its own guarded methods.
func (st *SendState) Take() (int64, bool) {
	return st.take()
}

func (st *SendState) take() (int64, bool) {
	if len(st.tasks) == 0 {
		return 0, false
	}
	t := st.tasks[len(st.tasks)-1]
	st.tasks = st.tasks[:len(st.tasks)-1]
	st.total -= t.Weight
	return t.Weight, true
}

// Receive appends a delivered batch — again via a guarded sibling.
func (st *SendState) Receive(k int, a Arc, ts []Task) {
	st.AddTasks(ts)
}

func (st *SendState) DecideSends(neigh []Arc, fl []float64, wmax int64) [][]Task {
	out := make([][]Task, len(neigh))
	for k := range neigh {
		if w, ok := st.take(); ok {
			out[k] = []Task{{Weight: w}}
		}
	}
	return out
}

// runRound is the approved per-node round call site.
func runRound(st *SendState, neigh []Arc, fl []float64, wmax int64) {
	batches := st.DecideSends(neigh, fl, wmax)
	for k, a := range neigh {
		st.Receive(k, a, batches[k])
	}
}

// leakDrain bypasses the ledger: not a SendState method, not approved.
func leakDrain(st *SendState) []Task {
	return st.Drain()
}
