// Package core is a golden fixture for the maporder analyzer: its import
// path ends in internal/core, so it sits in the deterministic set. Each
// function is one caught violation or one admitted pattern; the expected
// findings are asserted in maporder_test.go.
package core

import "sort"

// floatAccumulation is the real bug class: an unsorted map range feeding a
// float sum. Addition does not associate, so iteration order flips the low
// mantissa bits of the result — and with them any state hash derived from
// it.
func floatAccumulation(weights map[int]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	return sum
}

// orderedAppend leaks iteration order directly into a slice.
func orderedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// lastWriterWins stores a value that depends on which key iterates last.
func lastWriterWins(m map[int]int) int {
	var last int
	for _, v := range m {
		last = v
	}
	return last
}

// callInBody hands the key to an arbitrary function; the proof cannot see
// through the call, so the site needs a sort or a directive.
func callInBody(m map[int]int, emit func(int)) {
	for k := range m {
		emit(k)
	}
}

// integerCount is admitted: integer accumulation commutes.
func integerCount(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// weightTotal is admitted: integer += of a pure expression.
func weightTotal(m map[int]int64) int64 {
	var total int64
	for _, w := range m {
		total += w
	}
	return total
}

// pruneZeros is admitted: delete of the range key commutes across
// iterations (distinct keys, disjoint deletes).
func pruneZeros(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// mirror is admitted: disjoint writes keyed by the range key.
func mirror(src map[int]int, dst map[int]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// justifiedProbe carries a reviewed justification, so the site passes.
func justifiedProbe(m map[int]bool) bool {
	found := false
	//lb:orderfree existence probe: the loop only tests membership, any order finds the same answer
	for _, ok := range m {
		if ok {
			found = true
		}
	}
	return found
}

// sortedSum is the fix for floatAccumulation: iterate a sorted key slice.
func sortedSum(weights map[int]float64) float64 {
	keys := make([]int, 0, len(weights))
	//lb:orderfree key collection only; the slice is sorted before any order-sensitive use
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

// staleJustification sits on a slice loop: maporder never fires here, so
// the directive justifies nothing and the runner reports it as stale.
func staleJustification(xs []int) int {
	n := 0
	//lb:orderfree stale: this loop ranges a slice, not a map
	for range xs {
		n++
	}
	return n
}
