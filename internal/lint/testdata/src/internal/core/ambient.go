// ambient.go is the golden fixture for the nondet analyzer: forbidden
// ambient reads, the admitted seeded-generator pattern, and justified
// sites. Expected findings are asserted in nondet_test.go.
package core

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// wallClockDecision feeds the wall clock into a return value — the
// canonical replay-divergence bug.
func wallClockDecision() int64 {
	return time.Now().UnixNano()
}

// globalRandDraw consumes the process-global math/rand source, whose
// sequence depends on every other caller in the process.
func globalRandDraw(n int) int {
	return rand.Intn(n)
}

// envRead makes the result machine-dependent.
func envRead() string {
	return os.Getenv("LB_MODE")
}

// coreCount reads GOMAXPROCS into a value.
func coreCount() int {
	return runtime.GOMAXPROCS(0)
}

// seededGenerator is the admitted pattern: a generator built from an
// explicit seed, so replay reproduces the sequence.
func seededGenerator(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// injectedDraw consumes an injected generator — method calls on a
// *rand.Rand are not ambient.
func injectedDraw(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// justifiedTiming carries a site-level justification.
func justifiedTiming(observe func(time.Duration)) {
	t0 := time.Now() //lb:statefree metrics-only timing: the duration feeds an observer, never state
	observe(sinceStart(t0))
}

func sinceStart(t0 time.Time) time.Duration {
	return 0
}

// metricsProbe is justified function-wide from its doc comment.
//
//lb:statefree metrics-only: every read in this function feeds histograms
func metricsProbe(observe func(time.Duration)) {
	t0 := time.Now()
	observe(time.Since(t0))
}

// staleAmbientJustification justifies nothing — the function has no
// ambient read — so the runner reports the directive as stale.
//
//lb:statefree stale: nothing here reads ambient state
func staleAmbientJustification() int {
	return 42
}
