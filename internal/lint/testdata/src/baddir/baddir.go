// Package baddir holds every way to write an lb directive wrong; each one
// must be a diagnostic, because a directive that silently fails to attach
// looks exactly like an approval.
package baddir

// hyphenName is malformed: directive names are lowercase letters only.
// (The spaced-colon variant, //lb: name, is covered by the in-memory
// parser tests — gofmt rewrites it in a real file.)
//
//lb:order-free would-be reason
func hyphenName() {}

// unknownName is not a known directive.
//
//lb:orderless misspelled
func unknownName() {}

// missingReason omits the mandatory justification.
//
//lb:orderfree
func missingReason() {}

// nearMiss has a space between // and lb: — a human plausibly meant a
// directive, so it is flagged rather than ignored.
//
// lb:statefree looks justified but attaches nothing
func nearMiss() {}

// hotpathMisplaced puts the marker on a statement instead of a function
// doc comment, where it gates nothing.
func hotpathMisplaced() int {
	x := 1 //lb:hotpath
	return x
}

// noEffect is well-formed but sits in a package outside the deterministic
// set, so it cannot justify anything.
func noEffect() {
	_ = 0 //lb:statefree this package is not in the deterministic set
}
