// Package broken fails to type-check: the loader must surface the failure
// as a diagnostic, never as silence.
package broken

func brokenCall() int {
	return undefinedFunction(42)
}
