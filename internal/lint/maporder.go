package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map inside the deterministic packages.
// Go randomizes map iteration order per execution, so any map range whose
// body can reach observable state breaks the bit-identity contract: the
// classic failure is float accumulation over an unsorted map, which flips
// the low mantissa bits — and therefore the state hash — between two runs
// of the same input. A site survives only if the loop body is provably
// order-free (a conservative structural proof, see orderFreeBody) or if it
// carries a justified //lb:orderfree directive.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "flags map ranges in deterministic packages unless provably order-free or //lb:orderfree-justified"
}
func (MapOrder) Explain() string {
	return `Algorithm 1's headline property is that four executions (centralized,
channel, net.Conn, engine) produce bit-identical floats; dist.Verify, the
gated-vs-ungated hash suite and WAL recovery all assert it. Go randomizes
map iteration order on every execution, so ranging over a map in a
deterministic package makes any order-sensitive body — float accumulation,
slice appends, first-writer-wins stores — differ between runs: an unsorted
map range feeding a float sum flips low mantissa bits and with them the
engine state hash, which replay verification then reports as corruption.
Fix: iterate a sorted key slice (or a slice instead of a map), prove the
body order-free (pure integer/set accumulation), or justify the site with
//lb:orderfree <reason>.`
}

func (m MapOrder) Run(pkg *Package) []Diagnostic {
	if !IsDeterministic(pkg.Path) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pkg, rng.X) {
				return true
			}
			pos := pkg.Fset.Position(rng.Pos())
			if d := pkg.directiveAt("orderfree", pos, false); d != nil {
				return true
			}
			if orderFreeBody(pkg, rng) {
				return true
			}
			out = append(out, diag(m.Name(), pos,
				"range over map %s is execution-order nondeterministic; sort the keys, iterate a slice, or justify with //lb:orderfree <reason>",
				types.ExprString(rng.X)))
			return true
		})
	}
	return out
}

// isMapType reports whether the ranged expression has map type. Without
// type information (a package that failed to type-check) it falls back to
// flagging nothing — the type-check failure itself is already a finding.
func isMapType(pkg *Package, x ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderFreeBody is the conservative structural proof that a map-range body
// is iteration-order independent. It admits only statements whose effects
// commute across iterations:
//
//   - delete(m, k) with k the range key (distinct keys, disjoint deletes)
//   - m2[k] = <pure expr> with k the range key (disjoint writes)
//   - integer += / -= / |= / &= / ^= and ++/-- (commutative, associative;
//     floats are rejected — float addition does not associate)
//   - x = <constant> (idempotent)
//   - if <pure cond> { order-free } else { order-free }
//
// where a "pure expr" mentions only the range variables, literals and
// loop-invariant names (nothing assigned anywhere in the body). Anything
// else — calls, appends, float accumulation, channel ops, returns — fails
// the proof and needs a sort or a directive.
func orderFreeBody(pkg *Package, rng *ast.RangeStmt) bool {
	key := identOf(rng.Key)
	val := identOf(rng.Value)
	assigned, rebound := assignedNames(rng.Body)
	var stmtOK func(s ast.Stmt) bool
	pure := func(e ast.Expr) bool { return pureExpr(e, key, val, assigned) }
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "delete" || len(call.Args) != 2 {
				return false
			}
			return key != "" && isIdent(call.Args[1], key)
		case *ast.IncDecStmt:
			// Integer ++/-- commutes; the operand is the accumulator, so it
			// is necessarily "assigned" — only its index (if any) must be
			// pure so every iteration targets a well-defined cell.
			if !isIntegral(pkg, s.X) {
				return false
			}
			switch x := s.X.(type) {
			case *ast.Ident:
				return true
			case *ast.IndexExpr:
				return pure(x.Index)
			}
			return false
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, rhs := s.Lhs[0], s.Rhs[0]
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				return isIntegral(pkg, lhs) && pure(rhs)
			case token.ASSIGN:
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if key == "" || !isIdent(ix.Index, key) {
						return false
					}
					base := identOf(ix.X)
					return base != "" && !rebound[base] && pure(rhs)
				}
				// Idempotent constant store: x = true, x = 0, ...
				if id := identOf(lhs); id != "" {
					if _, isLit := rhs.(*ast.BasicLit); isLit {
						return true
					}
					if isIdent(rhs, "true") || isIdent(rhs, "false") {
						return true
					}
				}
				return false
			default:
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !pure(s.Cond) {
				return false
			}
			if !stmtOK(s.Body) {
				return false
			}
			return s.Else == nil || stmtOK(s.Else)
		case *ast.BlockStmt:
			for _, inner := range s.List {
				if !stmtOK(inner) {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	return stmtOK(rng.Body)
}

// assignedNames collects every identifier touched by an assignment (or
// inc/dec) anywhere in the body. The first set holds everything a "pure"
// expression must not read — their value depends on how many iterations
// already ran. The second set (rebound) holds only names reassigned as a
// whole (plain-ident lhs): a map written through an index, dst[k] = v, is
// tainted for reads but is still a valid disjoint-write target as long as
// dst itself is never rebound mid-loop.
func assignedNames(body *ast.BlockStmt) (names, rebound map[string]bool) {
	names = make(map[string]bool)
	rebound = make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id := identOf(lhs); id != "" {
					names[id] = true
					rebound[id] = true
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if id := identOf(ix.X); id != "" {
						names[id] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id := identOf(n.X); id != "" {
				names[id] = true
				rebound[id] = true
			}
			if ix, ok := n.X.(*ast.IndexExpr); ok {
				if id := identOf(ix.X); id != "" {
					names[id] = true
				}
			}
		}
		return true
	})
	return names, rebound
}

// pureExpr reports whether e reads only the range variables, literals and
// loop-invariant names: no calls (len/cap excepted), no accumulated state.
func pureExpr(e ast.Expr, key, val string, assigned map[string]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return !assigned[e.Name] || e.Name == key || e.Name == val
	case *ast.BasicLit:
		return true
	case *ast.BinaryExpr:
		return pureExpr(e.X, key, val, assigned) && pureExpr(e.Y, key, val, assigned)
	case *ast.UnaryExpr:
		return e.Op != token.AND && e.Op != token.ARROW && pureExpr(e.X, key, val, assigned)
	case *ast.ParenExpr:
		return pureExpr(e.X, key, val, assigned)
	case *ast.SelectorExpr:
		return pureExpr(e.X, key, val, assigned)
	case *ast.IndexExpr:
		return pureExpr(e.X, key, val, assigned) && pureExpr(e.Index, key, val, assigned)
	case *ast.CallExpr:
		fn, ok := e.Fun.(*ast.Ident)
		if !ok || (fn.Name != "len" && fn.Name != "cap") || len(e.Args) != 1 {
			return false
		}
		return pureExpr(e.Args[0], key, val, assigned)
	default:
		return false
	}
}

// isIntegral reports whether the expression has integer type (commutative,
// associative accumulation). Unknown types — missing info — fail closed.
func isIntegral(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func identOf(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
