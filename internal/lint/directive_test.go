package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one in-memory file the way the loader does.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectivesGrammar(t *testing.T) {
	fset, files := parseSrc(t, `package p

// f is fine.
//
//lb:hotpath
func f() {}

func g() {
	_ = 1 //lb:orderfree keys are sorted upstream
	_ = 2 //lb:statefree metrics only
}
`)
	dirs, diags := parseDirectives(fset, files)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", diagList(diags))
	}
	if len(dirs) != 3 {
		t.Fatalf("want 3 directives, got %d", len(dirs))
	}
	if dirs[0].Name != "hotpath" || dirs[0].FuncDoc == nil || dirs[0].FuncDoc.Name.Name != "f" {
		t.Errorf("hotpath directive not bound to f's doc: %+v", dirs[0])
	}
	if dirs[1].Name != "orderfree" || dirs[1].Reason != "keys are sorted upstream" {
		t.Errorf("orderfree reason not captured: %+v", dirs[1])
	}
	if dirs[2].FuncDoc != nil {
		t.Errorf("line directive wrongly bound to a func doc: %+v", dirs[2])
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`package p
//lb: orderfree spaced colon
func f() {}`, "malformed lb directive"},
		{`package p
//lb:orderless unknown name
func f() {}`, "unknown lb directive"},
		{`package p
//lb:orderfree
func f() {}`, "requires a non-empty reason"},
		{`package p
//lb:statefree
func f() {}`, "requires a non-empty reason"},
		{`package p
// lb:orderfree near miss
func f() {}`, "would not attach"},
		{`package p
//lb:OrderFree uppercase
func f() {}`, "malformed lb directive"},
	}
	for _, tc := range cases {
		fset, files := parseSrc(t, tc.src)
		_, diags := parseDirectives(fset, files)
		if len(diags) != 1 || !strings.Contains(diags[0].Message, tc.want) {
			t.Errorf("source %q: want one diagnostic containing %q, got:\n%s", tc.src, tc.want, diagList(diags))
		}
	}
}

// TestDirectiveAt pins the attachment rules: same line, line above, and —
// for function-wide names — the enclosing doc comment.
func TestDirectiveAt(t *testing.T) {
	fset, files := parseSrc(t, `package p

// doc is justified function-wide.
//
//lb:statefree everything here is metrics
func doc() {
	_ = 1
}

func lines() {
	//lb:orderfree reason above
	_ = 2
	_ = 3 //lb:orderfree reason same line
}
`)
	dirs, diags := parseDirectives(fset, files)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", diagList(diags))
	}
	pkg := &Package{Fset: fset, Files: files, Directives: dirs}

	at := func(line int) token.Position { return token.Position{Filename: "src.go", Line: line} }
	if d := pkg.directiveAt("statefree", at(7), true); d == nil {
		t.Error("function-wide statefree did not cover the body")
	}
	if d := pkg.directiveAt("statefree", at(7), false); d != nil {
		t.Error("doc directive must not apply when funcWide is false")
	}
	if d := pkg.directiveAt("orderfree", at(12), false); d == nil {
		t.Error("line-above directive did not attach")
	}
	if d := pkg.directiveAt("orderfree", at(13), false); d == nil {
		t.Error("same-line directive did not attach")
	}
	if d := pkg.directiveAt("orderfree", at(16), false); d != nil {
		t.Error("directive attached to an unrelated line")
	}
}

// TestBaddirPackageDiagnostics runs the runner over the fixture package of
// wrong directives: every spelling mistake is a finding.
func TestBaddirPackageDiagnostics(t *testing.T) {
	pkg := fixturePkg(t, "fixture/baddir")
	r := &Runner{Analyzers: []Analyzer{MapOrder{}, NonDet{}}}
	diags := r.Run([]*Package{pkg})
	want := []string{
		"malformed lb directive",
		"unknown lb directive //lb:orderless",
		"requires a non-empty reason",
		"would not attach",
		"//lb:hotpath must be part of a function's doc comment",
		"has no effect: package fixture/baddir is not in the deterministic set",
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q; got:\n%s", w, diagList(diags))
		}
	}
	if len(diags) != len(want) {
		t.Errorf("want %d diagnostics, got %d:\n%s", len(want), len(diags), diagList(diags))
	}
}
