package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LedgerFlow guards the O(1) conservation ledger: every weight-bearing
// mutation of a dist.SendState pool must be reached through the ledgered
// mutation helpers or the approved round phases, so pool weight can never
// change without the corresponding ledger fold. The check walks the
// package's static call graph: a guarded method call (or escaping method
// value) is legal only when its enclosing declared function is approved,
// or when it sits in a function literal passed directly to a conduit
// (mutateLedgered, whose contract is exactly "run this mutation and fold
// the counter deltas").
type LedgerFlow struct {
	policy LedgerPolicy
	// seenApproved tracks which approved entries matched a declared
	// function, so stale policy entries fail instead of rotting.
	seenApproved map[string]bool
}

// LedgerPolicy is the approved-call-site table. The zero value is not
// useful; use DefaultLedgerPolicy (production) or build one in tests.
type LedgerPolicy struct {
	// GuardedType is the defining package suffix and type name of the pool
	// whose mutations are guarded.
	GuardedPkg  string
	GuardedType string
	// GuardedMethods are the weight-bearing methods.
	GuardedMethods map[string]bool
	// Approved maps package-path suffix -> set of declared function names
	// (methods by bare name) allowed to touch guarded methods directly.
	Approved map[string]map[string]bool
	// Conduits maps package-path suffix -> functions whose function-literal
	// arguments run under the ledger fold (the mutate callback of
	// mutateLedgered).
	Conduits map[string]map[string]bool
	// SelfApproved allows the guarded type's own methods (its defining
	// implementation) to call each other.
	SelfApproved bool
}

// DefaultLedgerPolicy is the production table: engine mutations flow
// through mutateLedgered/addTasksLedgered or the three round phases; dist
// mutations through SendState's own implementation and the per-node round.
func DefaultLedgerPolicy() LedgerPolicy {
	return LedgerPolicy{
		GuardedPkg:  "internal/dist",
		GuardedType: "SendState",
		GuardedMethods: map[string]bool{
			"AddTasks": true, "RemoveNewestReal": true, "Drain": true,
			"Take": true, "take": true, "Receive": true, "DecideSends": true,
		},
		Approved: map[string]map[string]bool{
			// The per-node phase bodies (bound as the round phases' shard
			// callbacks) are the only approved direct mutators: their dummy
			// draws are folded at the round barrier. Event-path mutations go
			// through the ledgered helpers.
			"internal/engine": {
				"mutateLedgered":   true,
				"addTasksLedgered": true,
				"decideFullNode":   true,
				"deliverFullNode":  true,
				"decideGatedNode":  true,
				"deliverGatedNode": true,
			},
			"internal/dist": {
				"runRound": true,
			},
			// netsim's per-node step is the net.Conn execution's round: it
			// drives the same DecideSends/Receive pair dist.runRound does,
			// and the harness verifies conservation externally.
			"internal/netsim": {
				"step": true,
			},
		},
		Conduits: map[string]map[string]bool{
			"internal/engine": {"mutateLedgered": true},
		},
		SelfApproved: true,
	}
}

// NewLedgerFlow builds the analyzer with the given policy.
func NewLedgerFlow(policy LedgerPolicy) *LedgerFlow {
	return &LedgerFlow{policy: policy, seenApproved: make(map[string]bool)}
}

func (*LedgerFlow) Name() string { return "ledgerflow" }
func (*LedgerFlow) Doc() string {
	return "weight-bearing pool mutations may only be reached from ledgered helpers and approved round phases"
}
func (*LedgerFlow) Explain() string {
	return `PR 3 replaced the O(n·W) per-event conservation recount with an O(1)
incremental ledger: every pool mutation folds its weight delta into
engine-level running totals, validated once per event batch. The ledger is
only sound if NO code path mutates pool weight without folding — a single
bypassed AddTasks makes conservation drift silently until a distant batch
boundary reports corruption with no culprit attached. This check computes,
over the static call graph, that every call (or escaping method value) of a
weight-bearing dist.SendState method is lexically reached through
mutateLedgered/addTasksLedgered — whose contract is "mutate, then fold the
counter deltas" — or one of the approved round phases, which fold their
dummy draws at the round barrier. To add a new mutation path, route it
through mutateLedgered or extend the approved table in the same commit that
reviews its ledger fold.`
}

// pkgMatch finds the policy entry whose package-suffix key matches path.
func pkgMatch[V any](m map[string]V, path string) (V, bool) {
	for suffix, v := range m {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return v, true
		}
	}
	var zero V
	return zero, false
}

func (lf *LedgerFlow) Run(pkg *Package) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	approved, hasApproved := pkgMatch(lf.policy.Approved, pkg.Path)
	conduits, _ := pkgMatch(lf.policy.Conduits, pkg.Path)
	guardedDefining := lf.policy.GuardedPkg == "" ||
		pkg.Path == lf.policy.GuardedPkg || strings.HasSuffix(pkg.Path, "/"+lf.policy.GuardedPkg)
	if !hasApproved && !guardedDefining {
		// Packages outside the policy: any guarded use at all is flagged, so
		// a new package cannot silently start mutating pools. Scan with an
		// empty approved set only if the package references the guarded type.
		approved = nil
	}

	var out []Diagnostic
	declared := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declared[fd.Name.Name] = true
			out = append(out, lf.checkFunc(pkg, fd, approved, conduits)...)
		}
	}
	// Drift guard: approved entries must name functions that still exist.
	if hasApproved {
		var names []string
		for name := range approved {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			key := pkg.Path + "." + name
			if declared[name] {
				lf.seenApproved[key] = true
			} else if _, reported := lf.seenApproved[key]; !reported {
				lf.seenApproved[key] = false
			}
		}
	}
	return out
}

// Finish reports stale approved-table entries: a policy row naming a
// function that no longer exists is drift, and drift fails loudly.
func (lf *LedgerFlow) Finish() []Diagnostic {
	var keys []string
	for key, seen := range lf.seenApproved {
		if !seen {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var out []Diagnostic
	for _, key := range keys {
		out = append(out, diag(lf.Name(), token.Position{},
			"stale ledgerflow approval: %s no longer exists; remove it from the approved table", key))
	}
	return out
}

// checkFunc walks one declared function, tracking the lexical chain of
// function literals, and flags guarded uses outside approved context.
func (lf *LedgerFlow) checkFunc(pkg *Package, fd *ast.FuncDecl, approved, conduits map[string]bool) []Diagnostic {
	funcApproved := approved[fd.Name.Name] ||
		(lf.policy.SelfApproved && lf.isGuardedReceiver(pkg, fd))
	var out []Diagnostic

	// conduitLits are the function literals passed directly as arguments to
	// a conduit call — their bodies run under the ledger fold.
	conduitLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeName(call)
		if callee == "" || !conduits[callee] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				conduitLits[lit] = true
			}
		}
		return true
	})

	// Walk with a stack of "am I inside a conduit literal" context.
	var walk func(n ast.Node, inConduit bool)
	walk = func(n ast.Node, inConduit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				walk(m.Body, inConduit || conduitLits[m])
				return false
			case *ast.SelectorExpr:
				if !lf.isGuardedUse(pkg, m) {
					return true
				}
				if funcApproved || inConduit {
					return true
				}
				pos := pkg.Fset.Position(m.Pos())
				out = append(out, diag(lf.Name(), pos,
					"%s mutates pool weight outside the ledger: reached from %s, not from %s; route it through mutateLedgered/addTasksLedgered or an approved round phase",
					m.Sel.Name, funcDisplayName(fd), approvedList(approved)))
				return true
			}
			return true
		})
	}
	if fd.Body != nil {
		walk(fd.Body, false)
	}
	return out
}

// isGuardedUse reports whether the selector resolves to a guarded method
// of the guarded type — called or referenced as a method value.
func (lf *LedgerFlow) isGuardedUse(pkg *Package, sel *ast.SelectorExpr) bool {
	if !lf.policy.GuardedMethods[sel.Sel.Name] {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lf.isGuardedRecvType(sig.Recv().Type())
}

// isGuardedReceiver reports whether fd is a method declared on the guarded
// type itself.
func (lf *LedgerFlow) isGuardedReceiver(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	return lf.isGuardedRecvType(t)
}

func (lf *LedgerFlow) isGuardedRecvType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != lf.policy.GuardedType {
		return false
	}
	tp := named.Obj().Pkg()
	if tp == nil {
		return false
	}
	return lf.policy.GuardedPkg == "" || tp.Path() == lf.policy.GuardedPkg ||
		strings.HasSuffix(tp.Path(), "/"+lf.policy.GuardedPkg)
}

// calleeName extracts the called function's bare name for conduit matching
// (plain call or method call).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return fmt.Sprintf("(%s).%s", recvTypeString(fd.Recv.List[0].Type), fd.Name.Name)
	}
	return fd.Name.Name
}

func recvTypeString(e ast.Expr) string { return types.ExprString(e) }

func approvedList(approved map[string]bool) string {
	if len(approved) == 0 {
		return "any approved call site (none exist in this package)"
	}
	names := make([]string, 0, len(approved))
	for name := range approved {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
