package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //lb: annotation. The grammar is deliberately
// tiny and machine-checked (malformed directives are diagnostics, not
// silence):
//
//	//lb:<name>[ <reason>]
//
// with no space between "//" and "lb:", a lowercase name, and — for the
// suppression directives — a mandatory non-empty reason:
//
//	//lb:orderfree <reason>  justifies a map range in a deterministic
//	                         package: the reason must argue why iteration
//	                         order cannot reach observable state.
//	//lb:statefree <reason>  justifies an ambient clock/RNG/env read: the
//	                         reason must argue why the value never feeds
//	                         balancing state (metrics-only timing, a worker
//	                         count the result is invariant to, ...).
//	//lb:hotpath             marks a function whose compiled code is held
//	                         to the zero-new-allocation gate (hotalloc).
//
// orderfree and statefree attach to the line they are on or the line
// directly below them (end-of-line or stacked-above comment); statefree and
// hotpath may also sit in a function's doc comment, applying to the whole
// function.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Position
	// Line is the source line the directive comment occupies.
	Line int
	// FuncDoc is set when the directive sits in a FuncDecl doc comment;
	// the directive then applies to the whole function body.
	FuncDoc *ast.FuncDecl
	// used is set by the analyzer the directive suppressed or marked; the
	// runner reports directives that justify nothing (drift guard).
	used bool
}

const directivePrefix = "//lb:"

// knownDirectives maps each directive name to whether a reason is required.
var knownDirectives = map[string]bool{
	"orderfree": true,
	"statefree": true,
	"hotpath":   false,
}

// parseDirectives extracts every //lb: directive in the package and records
// malformed ones as diagnostics. Near-misses ("// lb:orderfree",
// "//lb: orderfree") are diagnosed too: a directive that silently fails to
// attach would otherwise look like an approval.
func parseDirectives(fset *token.FileSet, files []*ast.File) (dirs []*Directive, diags []Diagnostic) {
	for _, f := range files {
		funcOf := funcDocIndex(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				pos := fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(text, directivePrefix):
					rest := strings.TrimPrefix(text, directivePrefix)
					name, reason, ok := splitDirective(rest)
					if !ok {
						diags = append(diags, diag("lint", pos,
							"malformed lb directive %q: want //lb:<name> <reason> with no space after the colon", text))
						continue
					}
					needReason, known := knownDirectives[name]
					if !known {
						diags = append(diags, diag("lint", pos,
							"unknown lb directive //lb:%s (known: hotpath, orderfree, statefree)", name))
						continue
					}
					if needReason && reason == "" {
						diags = append(diags, diag("lint", pos,
							"//lb:%s requires a non-empty reason: state why the invariant still holds at this site", name))
						continue
					}
					dirs = append(dirs, &Directive{
						Name:    name,
						Reason:  reason,
						Pos:     pos,
						Line:    pos.Line,
						FuncDoc: funcOf[cg],
					})
				case looksLikeDirective(text):
					diags = append(diags, diag("lint", pos,
						"comment %q looks like an lb directive but would not attach; write //lb:<name> with no spaces", text))
				}
			}
		}
	}
	return dirs, diags
}

// splitDirective splits "name reason..." after the //lb: prefix. It fails
// on an empty name, a leading space (the directive convention forbids
// "//lb: name"), or a name with non-lowercase characters.
func splitDirective(rest string) (name, reason string, ok bool) {
	if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
		return "", "", false
	}
	name = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	for _, r := range name {
		if r < 'a' || r > 'z' {
			return "", "", false
		}
	}
	return name, reason, true
}

// looksLikeDirective reports whether a comment is a near-miss for the
// directive grammar: "// lb:..." or "//lb :..." variants that a human
// plausibly meant as a directive.
func looksLikeDirective(text string) bool {
	trimmed := strings.TrimPrefix(text, "//")
	trimmed = strings.TrimLeft(trimmed, " \t")
	if !strings.HasPrefix(trimmed, "lb") {
		return false
	}
	rest := strings.TrimPrefix(trimmed, "lb")
	rest = strings.TrimLeft(rest, " \t")
	return strings.HasPrefix(rest, ":")
}

// funcDocIndex maps each doc comment group to its FuncDecl, so directives
// in function docs can apply function-wide.
func funcDocIndex(f *ast.File) map[*ast.CommentGroup]*ast.FuncDecl {
	idx := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			idx[fd.Doc] = fd
		}
	}
	return idx
}

// directiveAt returns an unused-or-used directive of the given name
// covering pos: on the same line, on the line directly above, or in the
// enclosing function's doc comment (statefree/hotpath only). It marks the
// directive used.
func (p *Package) directiveAt(name string, pos token.Position, funcWide bool) *Directive {
	for _, d := range p.Directives {
		if d.Name != name || d.Pos.Filename != pos.Filename {
			continue
		}
		if d.FuncDoc != nil {
			if !funcWide {
				continue
			}
			start := p.Fset.Position(d.FuncDoc.Pos())
			end := p.Fset.Position(d.FuncDoc.End())
			if pos.Line >= start.Line && pos.Line <= end.Line {
				d.used = true
				return d
			}
			continue
		}
		if d.Line == pos.Line || d.Line == pos.Line-1 {
			d.used = true
			return d
		}
	}
	return nil
}

// checkDirectives re-emits the malformed-directive diagnostics collected at
// parse time and validates placement: hotpath must sit in a function doc
// comment (anywhere else it gates nothing).
func checkDirectives(pkg *Package) []Diagnostic {
	out := append([]Diagnostic(nil), pkg.directiveDiags...)
	for _, d := range pkg.Directives {
		if d.Name == "hotpath" && d.FuncDoc == nil {
			out = append(out, diag("lint", d.Pos,
				"//lb:hotpath must be part of a function's doc comment; here it marks nothing"))
		}
	}
	return out
}

// staleDirectives reports suppression directives that justified nothing —
// a stale justification is drift, and drift fails loudly. hotpath is
// exempt: it is a marker consumed only when escape data is loaded.
func staleDirectives(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, d := range pkg.Directives {
		if d.Name == "hotpath" || d.used {
			continue
		}
		if !IsDeterministic(pkg.Path) {
			out = append(out, diag("lint", d.Pos,
				"//lb:%s has no effect: package %s is not in the deterministic set", d.Name, pkg.Path))
			continue
		}
		out = append(out, diag("lint", d.Pos,
			"stale //lb:%s: no %s finding at this site needs justifying; delete the directive", d.Name, analyzerFor(d.Name)))
	}
	return out
}

func analyzerFor(directive string) string {
	switch directive {
	case "orderfree":
		return "maporder"
	case "statefree":
		return "nondet"
	}
	return directive
}
