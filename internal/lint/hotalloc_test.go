package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotFuncLine returns the first and last source line of a fixture function
// (declaration through closing brace).
func hotFuncLine(t *testing.T, pkg *Package, name string) (file string, start, end int) {
	t.Helper()
	for _, fd := range hotpathFuncs(pkg) {
		if fd.Name.Name == name {
			p := pkg.Fset.Position(fd.Pos())
			return filepath.Clean(p.Filename), p.Line, pkg.Fset.Position(fd.End()).Line
		}
	}
	t.Fatalf("no //lb:hotpath function %s in %s", name, pkg.Path)
	return "", 0, 0
}

// TestHotAllocSynthetic drives the gate with hand-built escape data:
// unlisted allocations in hotpath ranges fail, allowlisted ones pass,
// allocations outside any hotpath function are ignored, and stale
// allowlist entries fail.
func TestHotAllocSynthetic(t *testing.T) {
	pkg := fixturePkg(t, "fixture/hot")
	file, start, end := hotFuncLine(t, pkg, "escapingBuffer")

	esc := EscapeData{file: {
		{Line: start + 1, Col: 9, Message: "make([]byte, 64) escapes to heap"},
		{Line: start + 1, Col: 20, Message: "listed thing escapes to heap"},
		{Line: end + 100, Col: 1, Message: "far away escapes to heap"},
	}}
	ha := &HotAlloc{
		Escapes:   esc,
		AllowPath: "test.allow.json",
		Allow: []AllowEntry{
			{Package: "fixture/hot", Function: "escapingBuffer", Message: "listed thing escapes to heap"},
			{Package: "fixture/hot", Function: "escapingBuffer", Message: "stale thing escapes to heap"},
		},
	}
	diags := ha.Run(pkg)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "make([]byte, 64)") {
		t.Fatalf("want exactly the unlisted allocation flagged, got:\n%s", diagList(diags))
	}
	if diags[0].Line != start+1 {
		t.Errorf("finding at line %d, want %d", diags[0].Line, start+1)
	}
	stale := ha.Finish()
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale thing") {
		t.Fatalf("want exactly the stale allowlist entry reported, got:\n%s", diagList(stale))
	}
}

// TestHotAllocEndToEnd runs the real compiler escape analysis over the hot
// fixture package: the gate must attribute each genuine allocation to its
// annotated function, admit the allocation-free function, ignore the
// unannotated one, and honor the allowlist.
func TestHotAllocEndToEnd(t *testing.T) {
	esc, err := RunEscapeAnalysis(fixtureDir, "./hot")
	if err != nil {
		t.Fatalf("escape analysis: %v", err)
	}
	pkg := fixturePkg(t, "fixture/hot")

	ha := &HotAlloc{Escapes: esc}
	diags := ha.Run(pkg)
	if len(diags) < 3 {
		t.Fatalf("want >=3 real escape findings, got %d:\n%s", len(diags), diagList(diags))
	}
	var sawMake, sawMoved, sawClosure bool
	for _, d := range diags {
		fn := funcOf(pkg, d)
		if fn != "escapingBuffer" && fn != "boxedCounter" {
			t.Errorf("finding attributed outside the allocating hotpath functions (%s): %s", fn, d)
		}
		switch {
		case strings.Contains(d.Message, "make([]int, n)"):
			sawMake = true
		case strings.Contains(d.Message, "moved to heap"):
			sawMoved = true
		case strings.Contains(d.Message, "func literal"):
			sawClosure = true
		}
	}
	if !sawMake || !sawMoved || !sawClosure {
		t.Fatalf("missing an expected allocation class (make=%v moved=%v closure=%v):\n%s",
			sawMake, sawMoved, sawClosure, diagList(diags))
	}

	// Allowlisting the slice allocation removes exactly that finding.
	allowed := &HotAlloc{Escapes: esc, Allow: []AllowEntry{
		{Package: "fixture/hot", Function: "escapingBuffer", Message: "make([]int, n) escapes to heap"},
	}}
	rediags := allowed.Run(pkg)
	if len(rediags) != len(diags)-1 {
		t.Fatalf("allowlist should remove one finding: %d -> %d\n%s", len(diags), len(rediags), diagList(rediags))
	}
	if stale := allowed.Finish(); len(stale) != 0 {
		t.Fatalf("live allowlist entry reported stale:\n%s", diagList(stale))
	}
}

// TestHotAllocDisabledWithoutEscapes: nil escape data disables the gate
// (the -noescape mode) instead of fabricating findings.
func TestHotAllocDisabledWithoutEscapes(t *testing.T) {
	pkg := fixturePkg(t, "fixture/hot")
	ha := &HotAlloc{}
	if diags := ha.Run(pkg); len(diags) != 0 {
		t.Fatalf("gate ran without escape data:\n%s", diagList(diags))
	}
	if stale := ha.Finish(); len(stale) != 0 {
		t.Fatalf("stale reporting ran without escape data:\n%s", diagList(stale))
	}
}

// TestIsAllocation pins the message filter: positives must be kept,
// negative results and inliner chatter dropped.
func TestIsAllocation(t *testing.T) {
	for msg, want := range map[string]bool{
		"make([]int, n) escapes to heap":    true,
		"&Engine{...} escapes to heap":      true,
		"moved to heap: x":                  true,
		"make([]int, n) does not escape":    false,
		"can inline clean":                  false,
		"inlining call to clean":            false,
		"leaking param: xs to result ~r0":   false,
		"func literal escapes to heap":      true,
		"new(hotSet) does not escape":       false,
		"parameter ev leaks to {heap} with": false,
	} {
		if got := isAllocation(msg); got != want {
			t.Errorf("isAllocation(%q) = %v, want %v", msg, got, want)
		}
	}
}

// TestLoadAllowlist covers the file format and the missing-file case.
func TestLoadAllowlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "allow.json")
	if entries, err := LoadAllowlist(path); err != nil || entries != nil {
		t.Fatalf("missing allowlist: got %v, %v; want empty, nil", entries, err)
	}
	if err := os.WriteFile(path, []byte(`[{"package":"p","function":"f","message":"m","why":"amortized"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadAllowlist(path)
	if err != nil || len(entries) != 1 || entries[0].Function != "f" {
		t.Fatalf("LoadAllowlist = %v, %v", entries, err)
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAllowlist(path); err == nil {
		t.Fatal("malformed allowlist must error, not silently admit nothing")
	}
}

// Positions in synthetic diagnostics must round-trip through the JSON
// projection the -json mode emits.
func TestDiagnosticJSONFields(t *testing.T) {
	d := diag("hotalloc", token.Position{Filename: "f.go", Line: 3, Column: 7}, "msg %d", 1)
	if d.File != "f.go" || d.Line != 3 || d.Col != 7 || d.Message != "msg 1" {
		t.Fatalf("diag projection wrong: %+v", d)
	}
}
