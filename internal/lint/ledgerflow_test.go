package lint

import (
	"strings"
	"testing"
)

// TestLedgerFlowEngineGolden: direct mutations, escaping method values and
// non-conduit literals are violations; ledgered helpers, phase bodies and
// conduit literals are approved.
func TestLedgerFlowEngineGolden(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/engine")
	lf := NewLedgerFlow(DefaultLedgerPolicy())
	diags := lf.Run(pkg)
	wantFuncs(t, pkg, diags,
		"applyRebalance",
		"drainDeparted",
		"forwardVia",
		"sneakyNested",
	)
	if extra := lf.Finish(); len(extra) != 0 {
		t.Fatalf("unexpected stale approvals:\n%s", diagList(extra))
	}
}

// TestLedgerFlowDistGolden: the defining implementation is self-approved,
// runRound is table-approved, and a free function leaking a mutation is
// the violation.
func TestLedgerFlowDistGolden(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/dist")
	lf := NewLedgerFlow(DefaultLedgerPolicy())
	wantFuncs(t, pkg, lf.Run(pkg), "leakDrain")
}

// TestLedgerFlowStaleApproval: a policy row naming a function that no
// longer exists must fail, not silently approve nothing.
func TestLedgerFlowStaleApproval(t *testing.T) {
	policy := DefaultLedgerPolicy()
	policy.Approved["internal/engine"]["ghostPhase"] = true
	lf := NewLedgerFlow(policy)
	lf.Run(fixturePkg(t, "fixture/internal/engine"))
	stale := lf.Finish()
	found := false
	for _, d := range stale {
		if strings.Contains(d.Message, "ghostPhase") {
			found = true
		}
		if strings.Contains(d.Message, "mutateLedgered") {
			t.Errorf("live approval reported stale: %s", d)
		}
	}
	if !found {
		t.Fatalf("stale approval ghostPhase not reported; got:\n%s", diagList(stale))
	}
}

// TestLedgerFlowUnpolicedPackage: a package outside the policy gets no
// free pass — any guarded mutation there is flagged, so a new package
// cannot silently start mutating pools.
func TestLedgerFlowUnpolicedPackage(t *testing.T) {
	policy := DefaultLedgerPolicy()
	delete(policy.Approved, "internal/engine")
	delete(policy.Conduits, "internal/engine")
	lf := NewLedgerFlow(policy)
	pkg := fixturePkg(t, "fixture/internal/engine")
	diags := lf.Run(pkg)
	// With no approved table every guarded touch is flagged, including the
	// ones the production table approves.
	byFunc := make(map[string]int)
	for _, d := range diags {
		byFunc[funcOf(pkg, d)]++
	}
	for _, fn := range []string{"addTasksLedgered", "decideFullNode", "applyRebalance"} {
		if byFunc[fn] == 0 {
			t.Errorf("guarded use in %s not flagged without a policy entry", fn)
		}
	}
	// The conduit admission is policy too: without it the literal passed
	// to mutateLedgered is just another unapproved mutation.
	if byFunc["applyArrival"] == 0 {
		t.Error("conduit literal escaped flagging after the conduit entry was removed")
	}
}
