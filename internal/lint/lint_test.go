package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureDir is the golden-test module: a self-contained `go list`-able
// tree whose package paths end in the deterministic suffixes.
const fixtureDir = "testdata/src"

var (
	fixtureOnce sync.Once
	fixturePkgs []*Package
	fixtureErr  error
)

// loadFixture loads the whole fixture module once per test binary; go list
// dominates the cost, so every golden test shares one load.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	fixtureOnce.Do(func() {
		loader := &Loader{Dir: fixtureDir}
		fixturePkgs, fixtureErr = loader.Load("./...")
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	return fixturePkgs
}

// fixturePkg returns the fixture package with the given import path.
func fixturePkg(t *testing.T, path string) *Package {
	t.Helper()
	for _, pkg := range loadFixture(t) {
		if pkg.Path == path {
			return pkg
		}
	}
	t.Fatalf("fixture package %s not loaded", path)
	return nil
}

// funcOf maps a diagnostic to the enclosing fixture function, so golden
// expectations name functions instead of brittle line numbers. Doc
// comments count as part of the function: stale-directive diagnostics
// point at the directive line.
func funcOf(pkg *Package, d Diagnostic) string {
	for i, f := range pkg.Files {
		if filepath.Clean(pkg.GoFiles[i]) != filepath.Clean(d.File) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := fd.Pos()
			if fd.Doc != nil {
				start = fd.Doc.Pos()
			}
			if d.Line >= pkg.Fset.Position(start).Line && d.Line <= pkg.Fset.Position(fd.End()).Line {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// byAnalyzer filters diagnostics to one analyzer.
func byAnalyzer(diags []Diagnostic, analyzer string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out = append(out, d)
		}
	}
	return out
}

// wantFuncs asserts that the diagnostics hit exactly the named functions,
// one finding per name occurrence.
func wantFuncs(t *testing.T, pkg *Package, diags []Diagnostic, want ...string) {
	t.Helper()
	got := make([]string, 0, len(diags))
	for _, d := range diags {
		got = append(got, funcOf(pkg, d))
	}
	wantCount := make(map[string]int)
	for _, w := range want {
		wantCount[w]++
	}
	gotCount := make(map[string]int)
	for _, g := range got {
		gotCount[g]++
	}
	for w, n := range wantCount {
		if gotCount[w] != n {
			t.Errorf("want %d finding(s) in %s, got %d\nall findings:\n%s", n, w, gotCount[w], diagList(diags))
		}
	}
	for g, n := range gotCount {
		if wantCount[g] == 0 {
			t.Errorf("unexpected %d finding(s) in %q\nall findings:\n%s", n, g, diagList(diags))
		}
	}
}

func diagList(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestIsDeterministic pins the suffix semantics the analyzers rely on.
func TestIsDeterministic(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":    true,
		"fixture/internal/core":  true,
		"internal/core":          true,
		"repro/internal/engine":  true,
		"repro/internal/lint":    false,
		"fixture/baddir":         false,
		"repro/internal/netsim":  false,
		"repro/internal/coreExt": false,
	} {
		if got := IsDeterministic(path); got != want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestRunnerSortsDiagnostics pins the stable output order CI diffs rely on.
func TestRunnerSortsDiagnostics(t *testing.T) {
	pkgs := []*Package{fixturePkg(t, "fixture/internal/core")}
	r := &Runner{Analyzers: []Analyzer{MapOrder{}, NonDet{}}}
	diags := r.Run(pkgs)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics not sorted: %s before %s", a, b)
		}
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from the core fixture")
	}
}
