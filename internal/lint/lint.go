// Package lint is the determinism-invariant analyzer suite behind cmd/lblint.
//
// Every headline result of this reproduction rests on bit-for-bit identity:
// dist.Verify, the gated-vs-ungated state-hash suite and WAL recovery all
// assert that independent executions of Algorithm 1 produce identical
// floats. That only holds if no code path in the deterministic packages
// ever iterates a map in nondeterministic order, reads an ambient clock or
// RNG, or mutates pool weight outside the conservation ledger. This package
// turns those review-time invariants into machine-checked law with four
// domain-specific analyzers:
//
//   - maporder: flags `range` over a map in the deterministic packages
//     unless the loop body is provably order-free or the site carries a
//     justified //lb:orderfree directive.
//   - nondet: forbids ambient clock (time.Now/Since/...), global math/rand,
//     environment and GOMAXPROCS reads in the deterministic packages except
//     through injected-clock/seeded-generator patterns or a justified
//     //lb:statefree directive.
//   - ledgerflow: weight-bearing dist.SendState mutations (AddTasks,
//     RemoveNewestReal, Drain, Take, ...) may only be reached from the
//     ledgered mutation helpers and the approved round phases, computed
//     over the package call graph.
//   - hotalloc: functions annotated //lb:hotpath are checked against the
//     compiler's escape analysis (go build -gcflags=-m); any heap
//     allocation not in the checked-in allowlist fails, and stale allowlist
//     entries fail too.
//
// The suite is zero-dependency by design: packages are loaded via
// `go list -json`, parsed with go/parser and type-checked with go/types
// against the toolchain's export data, so go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Analyzer names the check that produced the finding ("maporder",
	// "nondet", "ledgerflow", "hotalloc", or "lint" for loader and
	// directive errors).
	Analyzer string `json:"analyzer"`
	// Pos is the source position of the finding.
	Pos token.Position `json:"-"`
	// Message states the violation and, where known, the fix.
	Message string `json:"message"`

	// JSON projection of Pos (token.Position marshals awkwardly).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (d Diagnostic) String() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
	return fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
}

// diag builds a Diagnostic with the JSON position fields filled.
func diag(analyzer string, pos token.Position, format string, args ...any) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
	}
}

// Analyzer is one determinism check. Run is called once per loaded package;
// analyzers that need whole-run state (hotalloc's allowlist drift check)
// also implement Finisher.
type Analyzer interface {
	// Name is the analyzer's identifier, used in diagnostics, -explain and
	// directive names.
	Name() string
	// Doc is the one-line summary shown by -explain with no argument.
	Doc() string
	// Explain is the invariant's rationale: which paper-level property the
	// check guards and why a violation breaks it.
	Explain() string
	// Run analyzes one package.
	Run(pkg *Package) []Diagnostic
}

// Finisher is implemented by analyzers that emit whole-run diagnostics
// after every package has been visited (e.g. allowlist drift).
type Finisher interface {
	Finish() []Diagnostic
}

// DeterministicPackages are the import-path suffixes of the packages whose
// executions must be bit-for-bit reproducible: the Algorithm 1 cores, the
// engine, the persistence formats and the seeded schedulers. maporder and
// nondet enforce their invariants only inside this set.
var DeterministicPackages = []string{
	"internal/core",
	"internal/engine",
	"internal/dist",
	"internal/graph",
	"internal/wal",
	"internal/continuous",
	"internal/matching",
	"internal/wire",
}

// IsDeterministic reports whether an import path belongs to the
// deterministic set (suffix match, so it holds under module renames and for
// testdata fixtures that opt in by suffix).
func IsDeterministic(path string) bool {
	for _, suffix := range DeterministicPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Runner drives a set of analyzers over loaded packages and aggregates
// sorted diagnostics.
type Runner struct {
	Analyzers []Analyzer
}

// Run executes every analyzer over every package, appends loader and
// directive diagnostics, runs Finishers, and returns the findings sorted by
// position. Load or type-check failures surface as diagnostics — a package
// that cannot be type-checked is a failure, not silence.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, pkg.loadDiagnostics()...)
		out = append(out, checkDirectives(pkg)...)
		for _, a := range r.Analyzers {
			out = append(out, a.Run(pkg)...)
		}
	}
	for _, pkg := range pkgs {
		out = append(out, staleDirectives(pkg)...)
	}
	for _, a := range r.Analyzers {
		if f, ok := a.(Finisher); ok {
			out = append(out, f.Finish()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
