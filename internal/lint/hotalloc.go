package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// HotAlloc holds functions annotated //lb:hotpath to a zero-new-heap-
// allocation gate: the compiler's escape analysis (go build -gcflags=-m)
// must report no allocation inside the function's line range that is not
// in the checked-in allowlist. The allowlist pins the allocations that are
// known, counted and amortized (slice growth on first fill, the WAL batch
// buffer); anything new fails review instead of slipping into the
// per-round path. Stale allowlist entries — an allocation that no longer
// happens — fail too, so the list tracks reality.
type HotAlloc struct {
	// Escapes is the escape-analysis output to check against; nil disables
	// the analyzer (the runner then reports hotpath directives as unchecked
	// only if asked to). Produced by RunEscapeAnalysis or synthesized in
	// tests.
	Escapes EscapeData
	// Allow is the allocation allowlist; AllowPath names its file for
	// diagnostics.
	Allow     []AllowEntry
	AllowPath string

	usedAllow map[int]bool
}

func (*HotAlloc) Name() string { return "hotalloc" }
func (*HotAlloc) Doc() string {
	return "//lb:hotpath functions must introduce no heap allocation beyond the checked-in allowlist"
}
func (*HotAlloc) Explain() string {
	return `The four round phases, the gate sweep and the WAL append path run per
round over every member; an accidental heap allocation there (a closure
capturing a loop variable, an interface conversion, a slice that escapes)
turns into GC pressure that scales with n·rounds and shows up directly in
the benchmark suite. This check reads the compiler's own escape analysis
(go build -gcflags=-m — replayed from the build cache, so it is cheap on
repeat runs), attributes "escapes to heap"/"moved to heap" messages to the
line ranges of functions whose doc comment carries //lb:hotpath, and fails
on any allocation not pinned in the allowlist file. Known, amortized
allocations (first-fill slice growth, reusable batch buffers) live in the
allowlist with the exact compiler message; entries that stop matching are
reported as stale so the list cannot rot. To fix a finding: hoist the
allocation out of the hot path (preallocate, reuse a buffer, avoid the
escaping closure) — or, if it is genuinely amortized, add it to the
allowlist in the same commit that justifies it.`
}

// AllowEntry pins one accepted allocation: the package, the enclosing
// hotpath function, and the exact compiler message.
type AllowEntry struct {
	Package  string `json:"package"`
	Function string `json:"function"`
	Message  string `json:"message"`
	// Why documents the amortization argument; informational.
	Why string `json:"why,omitempty"`
}

// EscapeDiag is one escape-analysis message at a source position.
type EscapeDiag struct {
	Line    int
	Col     int
	Message string
}

// EscapeData maps cleaned absolute file path -> allocation messages.
type EscapeData map[string][]EscapeDiag

// escapeLine matches one compiler diagnostic: path:line:col: message.
var escapeLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

// isAllocation keeps the messages that mean "this heap-allocates":
// "... escapes to heap" and "moved to heap: x". Negative results ("does
// not escape") and inliner chatter are dropped.
func isAllocation(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// RunEscapeAnalysis compiles the patterns with -gcflags=-m and collects
// allocation messages per file. The build cache replays compiler
// diagnostics, so repeat runs cost a cache probe, not a rebuild. dir is
// the module directory the relative paths in the output resolve against.
func RunEscapeAnalysis(dir string, patterns ...string) (EscapeData, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	data := make(EscapeData)
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if !isAllocation(m[4]) {
			continue
		}
		path := m[1]
		if !filepath.IsAbs(path) {
			path = filepath.Join(absDir, path)
		}
		path = filepath.Clean(path)
		var line, col int
		fmt.Sscanf(m[2], "%d", &line)
		fmt.Sscanf(m[3], "%d", &col)
		data[path] = append(data[path], EscapeDiag{Line: line, Col: col, Message: m[4]})
	}
	return data, nil
}

// LoadAllowlist reads the JSON allocation allowlist. A missing file is an
// empty list — the gate then admits nothing.
func LoadAllowlist(path string) ([]AllowEntry, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []AllowEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return entries, nil
}

func (ha *HotAlloc) Run(pkg *Package) []Diagnostic {
	if ha.Escapes == nil {
		return nil
	}
	if ha.usedAllow == nil {
		ha.usedAllow = make(map[int]bool)
	}
	var out []Diagnostic
	for _, d := range pkg.Directives {
		if d.Name != "hotpath" || d.FuncDoc == nil {
			continue
		}
		d.used = true
		fd := d.FuncDoc
		start := pkg.Fset.Position(fd.Pos())
		end := pkg.Fset.Position(fd.End())
		file := filepath.Clean(start.Filename)
		for _, esc := range ha.Escapes[file] {
			if esc.Line < start.Line || esc.Line > end.Line {
				continue
			}
			if ha.allowed(pkg.Path, fd.Name.Name, esc.Message) {
				continue
			}
			pos := token.Position{Filename: file, Line: esc.Line, Column: esc.Col}
			out = append(out, diag(ha.Name(), pos,
				"heap allocation in //lb:hotpath %s: %q; hoist it out of the hot path or add it to %s with an amortization argument",
				funcDisplayName(fd), esc.Message, ha.allowName()))
		}
	}
	return out
}

// Finish reports allowlist entries that matched nothing — a pinned
// allocation that no longer happens is drift, and drift fails loudly.
func (ha *HotAlloc) Finish() []Diagnostic {
	if ha.Escapes == nil {
		return nil
	}
	var out []Diagnostic
	for i, e := range ha.Allow {
		if ha.usedAllow[i] {
			continue
		}
		out = append(out, diag(ha.Name(), token.Position{Filename: ha.allowName()},
			"stale allowlist entry: %s.%s no longer allocates %q; remove it", e.Package, e.Function, e.Message))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Message < out[j].Message })
	return out
}

// allowed reports whether the allocation is pinned in the allowlist and
// marks the matching entry used.
func (ha *HotAlloc) allowed(pkgPath, funcName, msg string) bool {
	ok := false
	for i, e := range ha.Allow {
		if e.Package == pkgPath && e.Function == funcName && e.Message == msg {
			ha.usedAllow[i] = true
			ok = true
		}
	}
	return ok
}

func (ha *HotAlloc) allowName() string {
	if ha.AllowPath != "" {
		return ha.AllowPath
	}
	return "the hotalloc allowlist"
}

// hotpathFuncs returns the functions in pkg marked //lb:hotpath, for
// callers (like -explain output or tests) that want the annotated set.
func hotpathFuncs(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range pkg.Directives {
		if d.Name == "hotpath" && d.FuncDoc != nil {
			out = append(out, d.FuncDoc)
		}
	}
	return out
}
