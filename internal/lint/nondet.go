package lint

import (
	"go/ast"
	"go/types"
)

// NonDet forbids ambient nondeterminism sources — wall clocks, the global
// math/rand source, environment reads and GOMAXPROCS/NumCPU — inside the
// deterministic packages. Randomness is fine when it flows through a
// seeded, injected *rand.Rand (the generator pattern the scenario registry
// and graph generators use); time is fine when it comes from an injected
// clock (the workload.TokenBucket pattern). An ambient read that provably
// never feeds balancing state (metrics-only timing, a worker count the
// result is invariant to) is justified site-by-site or function-wide with
// //lb:statefree <reason>.
type NonDet struct{}

func (NonDet) Name() string { return "nondet" }
func (NonDet) Doc() string {
	return "forbids ambient clock/global-rand/env/GOMAXPROCS reads in deterministic packages unless //lb:statefree-justified"
}
func (NonDet) Explain() string {
	return `Bit-identity across the four Algorithm 1 executions — and across a WAL
crash/replay boundary — requires that every input to balancing state be
part of the event stream or the seed. An ambient read smuggles in a hidden
input: time.Now feeding a decision makes replay diverge from the original
run; the global math/rand source is process-wide shared state whose
sequence depends on unrelated callers; os.Getenv and runtime.GOMAXPROCS
make results machine-dependent. Inject instead: pass a seeded *rand.Rand
(rand.New(rand.NewSource(seed))), accept a clock function like
workload.TokenBucket does, and thread configuration through Config structs.
Reads that provably never reach state (stage-timing histograms, a worker
count the engine is deterministic across) carry //lb:statefree <reason>.`
}

// forbiddenFuncs maps package path -> function name -> true for the
// ambient-nondeterminism entry points.
var forbiddenFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "After": true,
		"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
		"Sleep": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
	"runtime": {
		"GOMAXPROCS": true, "NumCPU": true,
	},
	// For math/rand and math/rand/v2 every package-level draw hits the
	// global source; only the constructors of seeded generators are allowed.
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// allowedRandFuncs are the math/rand package-level functions that build
// seeded generators instead of consuming the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (nd NonDet) Run(pkg *Package) []Diagnostic {
	if !IsDeterministic(pkg.Path) || pkg.Info == nil {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			funcs, forbiddenPkg := forbiddenFuncs[path]
			if !forbiddenPkg {
				return true
			}
			name := sel.Sel.Name
			switch {
			case funcs != nil && !funcs[name]:
				return true
			case funcs == nil && allowedRandFuncs[name]:
				return true
			case funcs == nil && !isFunc(pkg, sel.Sel):
				// rand.Source, rand.Rand, ... — type references are fine.
				return true
			}
			pos := pkg.Fset.Position(sel.Pos())
			if d := pkg.directiveAt("statefree", pos, true); d != nil {
				return true
			}
			out = append(out, diag(nd.Name(), pos,
				"ambient nondeterminism: %s.%s in a deterministic package; inject a seeded generator/clock or justify with //lb:statefree <reason>",
				path, name))
			return true
		})
	}
	return out
}

// isFunc reports whether the selected package member is a function (as
// opposed to a type or variable reference).
func isFunc(pkg *Package, sel *ast.Ident) bool {
	obj := pkg.Info.Uses[sel]
	_, ok := obj.(*types.Func)
	return ok
}
