package lint

import (
	"strings"
	"testing"
)

// TestNonDetGolden: ambient reads are flagged, the seeded-generator and
// injected-clock patterns pass, justified sites pass.
func TestNonDetGolden(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/core")
	diags := (NonDet{}).Run(pkg)
	wantFuncs(t, pkg, diags,
		"wallClockDecision",
		"globalRandDraw",
		"envRead",
		"coreCount",
	)
}

// TestNonDetMessagesNameTheSource: each finding names the forbidden
// package.function so the fix is obvious from the CI log alone.
func TestNonDetMessagesNameTheSource(t *testing.T) {
	pkg := fixturePkg(t, "fixture/internal/core")
	want := map[string]string{
		"wallClockDecision": "time.Now",
		"globalRandDraw":    "math/rand.Intn",
		"envRead":           "os.Getenv",
		"coreCount":         "runtime.GOMAXPROCS",
	}
	for _, d := range (NonDet{}).Run(pkg) {
		fn := funcOf(pkg, d)
		if sub, ok := want[fn]; ok && !strings.Contains(d.Message, sub) {
			t.Errorf("finding in %s should mention %q: %s", fn, sub, d.Message)
		}
	}
}

// TestNonDetSkipsNonDeterministicPackages.
func TestNonDetSkipsNonDeterministicPackages(t *testing.T) {
	pkg := fixturePkg(t, "fixture/baddir")
	if diags := (NonDet{}).Run(pkg); len(diags) != 0 {
		t.Fatalf("nondet fired outside the deterministic set:\n%s", diagList(diags))
	}
}
