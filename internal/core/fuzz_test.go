package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// FuzzFlowImitationInvariants drives Algorithm 1 on fuzz-derived small
// instances and checks the paper's invariants: Observation 4, conservation
// with dummies, and non-negative task pools.
func FuzzFlowImitationInvariants(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(50), uint8(3))
	f.Add(int64(7), uint8(12), uint8(0), uint8(1))
	f.Add(int64(42), uint8(5), uint8(200), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, loadRaw, wmaxRaw uint8) {
		n := 3 + int(nRaw)%12
		wmax := 1 + int64(wmaxRaw)%5
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(n, 0.4, rng)
		if err != nil {
			t.Skip()
		}
		s := make(load.Speeds, n)
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		dist := make(load.TaskDist, n)
		var total int64
		for k := 0; k < int(loadRaw); k++ {
			i := rng.Intn(n)
			w := 1 + rng.Int63n(wmax)
			dist[i] = append(dist[i], load.Task{Weight: w})
			total += w
		}
		alpha, err := continuous.DefaultAlphas(g, s)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := NewFlowImitation(g, s, dist, continuous.FOSFactory(g, s, alpha), PolicyLIFO)
		if err != nil {
			t.Fatal(err)
		}
		wmaxActual := float64(fi.Wmax())
		for round := 0; round < 25; round++ {
			fi.Step()
			for e := 0; e < g.M(); e++ {
				if math.Abs(fi.FlowError(e)) >= wmaxActual+1e-6 {
					t.Fatalf("round %d edge %d: |e| = %v >= wmax %v",
						round, e, math.Abs(fi.FlowError(e)), wmaxActual)
				}
			}
			if fi.Load().Total() != total+fi.DummiesCreated() {
				t.Fatalf("round %d: conservation violated", round)
			}
			for i, v := range fi.Load() {
				if v < 0 {
					t.Fatalf("round %d: node %d negative (%d)", round, i, v)
				}
			}
		}
	})
}
