package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// RandomizedFlowImitation is Algorithm 2: the randomized discretization of a
// continuous process for identical (unit-weight) tokens. Each round, for
// every edge whose residual Ŷ_e(t) = f^A_e(t) − F^D_e(t−1) is positive in
// some direction, the sender forwards floor(Ŷ) tokens plus one more with
// probability equal to the fractional part {Ŷ}, drawing from the infinite
// source if it runs short.
type RandomizedFlowImitation struct {
	g    *graph.Graph
	s    load.Speeds
	cont continuous.Process
	rng  *rand.Rand

	tokens load.Vector
	fA     []float64
	fD     []int64

	// Scratch buffers reused across rounds.
	avail []int64
	delta []int64

	dummies int64
	t       int
}

// NewRandomizedFlowImitation builds Algorithm 2 on graph g with speeds s,
// initial token counts x0, the continuous process produced by factory from
// the matching load vector, and the given deterministic randomness source.
func NewRandomizedFlowImitation(g *graph.Graph, s load.Speeds, x0 load.Vector, factory continuous.Factory, rng *rand.Rand) (*RandomizedFlowImitation, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("core: speeds length %d != n %d", len(s), g.N())
	}
	if len(x0) != g.N() {
		return nil, fmt.Errorf("core: token vector length %d != n %d", len(x0), g.N())
	}
	for i, c := range x0 {
		if c < 0 {
			return nil, fmt.Errorf("core: node %d has negative token count %d", i, c)
		}
	}
	cont, err := factory(x0.Float())
	if err != nil {
		return nil, fmt.Errorf("core: build continuous process: %w", err)
	}
	return &RandomizedFlowImitation{
		g:      g,
		s:      s.Clone(),
		cont:   cont,
		rng:    rng,
		tokens: x0.Clone(),
		fA:     make([]float64, g.M()),
		fD:     make([]int64, g.M()),
		avail:  make([]int64, g.N()),
		delta:  make([]int64, g.N()),
	}, nil
}

// Name identifies the process, e.g. "alg2(fos)".
func (ri *RandomizedFlowImitation) Name() string { return "alg2(" + ri.cont.Name() + ")" }

// Graph returns the network.
func (ri *RandomizedFlowImitation) Graph() *graph.Graph { return ri.g }

// Speeds returns the node speeds.
func (ri *RandomizedFlowImitation) Speeds() load.Speeds { return ri.s }

// Round returns the index of the next round to execute.
func (ri *RandomizedFlowImitation) Round() int { return ri.t }

// Continuous exposes the embedded continuous process.
func (ri *RandomizedFlowImitation) Continuous() continuous.Process { return ri.cont }

// DummiesCreated returns the number of tokens drawn from the infinite
// source. Theorem 8(2)'s initial-load condition keeps this at zero w.h.p.
func (ri *RandomizedFlowImitation) DummiesCreated() int64 { return ri.dummies }

// WentNegative always reports false: the infinite source prevents negative
// load by construction.
func (ri *RandomizedFlowImitation) WentNegative() bool { return false }

// Load returns the per-node token counts (dummy tokens included — once
// created they are indistinguishable from real ones, as in the paper).
func (ri *RandomizedFlowImitation) Load() load.Vector { return ri.tokens.Clone() }

// FlowError returns E_e(t) = f^A_e(t) − F^D_e(t). Observation 9(3) shows it
// always lies in ({Ŷ}−1, {Ŷ}] ⊂ (−1, 1).
func (ri *RandomizedFlowImitation) FlowError(e int) float64 { return ri.fA[e] - float64(ri.fD[e]) }

// Step executes one synchronous round of D(A) under randomized rounding.
func (ri *RandomizedFlowImitation) Step() {
	fl := ri.cont.Step()
	for e := range ri.fA {
		ri.fA[e] += fl.Net(e)
	}
	for i := range ri.avail {
		ri.avail[i] = ri.tokens[i]
		ri.delta[i] = 0
	}
	for e := 0; e < ri.g.M(); e++ {
		gap := ri.fA[e] - float64(ri.fD[e])
		u, v := ri.g.EdgeEndpoints(e)
		sender, recv, sign := u, v, int64(1)
		if gap < 0 {
			sender, recv, sign = v, u, -1
			gap = -gap
		}
		if gap <= 0 {
			continue
		}
		whole := math.Floor(gap + RoundingEps)
		frac := gap - whole
		if frac < 0 {
			frac = 0
		}
		amount := int64(whole)
		if frac > 0 && ri.rng.Float64() < frac {
			amount++
		}
		if amount == 0 {
			continue
		}
		if short := amount - ri.avail[sender]; short > 0 {
			// The infinite source materializes the missing tokens at the
			// sender just before they leave.
			ri.dummies += short
			ri.delta[sender] += short
			ri.avail[sender] = 0
		} else {
			ri.avail[sender] -= amount
		}
		ri.delta[sender] -= amount
		ri.delta[recv] += amount
		ri.fD[e] += sign * amount
	}
	for i := range ri.tokens {
		ri.tokens[i] += ri.delta[i]
	}
	ri.t++
}
