package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// TestLemma10NodeErrorSums statistically verifies Lemma 10(1): for
// Algorithm 2, the per-node sum of incident flow errors |Σ_{j∈N(i)} E_{i,j}|
// stays below c·sqrt(d·log n) for a small constant c, at every node and
// round. This is the Hoeffding-bound machinery (Lemma 12) behind Theorem 8.
func TestLemma10NodeErrorSums(t *testing.T) {
	g, err := graph.Hypercube(6) // d = 6, n = 64
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0 := workload.UniformRandom(g.N(), 64*int64(g.N()), rand.New(rand.NewSource(1)))
	d := float64(g.MaxDegree())
	limit := 3 * math.Sqrt(d*math.Log(float64(g.N())))
	for seed := int64(0); seed < 4; seed++ {
		ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s),
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 100; round++ {
			ri.Step()
			for i := 0; i < g.N(); i++ {
				sum := 0.0
				for _, arc := range g.Neighbors(i) {
					e := ri.FlowError(arc.Edge)
					if arc.Out < 0 {
						e = -e
					}
					sum += e
				}
				if math.Abs(sum) > limit {
					t.Fatalf("seed %d round %d node %d: |ΣE| = %v > %v",
						seed, round, i, math.Abs(sum), limit)
				}
			}
		}
	}
}

// TestLemma10ErrorSumsMeanZero: the per-edge errors have (conditional) mean
// zero per Observation 9(3); over a long run the empirical mean of each
// node's error sum should be near zero relative to its range.
func TestLemma10ErrorSumsMeanZero(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0 := workload.UniformRandom(g.N(), 2000, rand.New(rand.NewSource(7)))
	ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s),
		rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 600
	sums := make([]float64, g.N())
	for round := 0; round < rounds; round++ {
		ri.Step()
		for i := 0; i < g.N(); i++ {
			for _, arc := range g.Neighbors(i) {
				e := ri.FlowError(arc.Edge)
				if arc.Out < 0 {
					e = -e
				}
				sums[i] += e
			}
		}
	}
	for i, sum := range sums {
		mean := sum / rounds
		// Each round's |ΣE| is at most d = 4; a drifting mean beyond 1.0
		// would indicate biased rounding.
		if math.Abs(mean) > 1.0 {
			t.Errorf("node %d: mean error sum %v drifts from 0", i, mean)
		}
	}
}
