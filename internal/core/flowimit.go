package core

import (
	"errors"
	"fmt"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// RoundingEps absorbs floating-point noise in the residual-flow comparison
// against wmax, so that exact-arithmetic floor semantics are preserved: with
// unit tokens Algorithm 1 sends exactly floor(f^A_e(t) − f^D_e(t−1)) tasks.
// It is exported because the distributed executions (dist, netsim) must use
// the very same epsilon to make bit-identical send decisions.
const RoundingEps = 1e-9

// TaskPolicy selects which of a node's unallocated tasks Algorithm 1 picks
// next. The paper allows an arbitrary choice; the discrepancy bounds hold
// for every policy, which the ablation benchmarks confirm.
type TaskPolicy int

const (
	// PolicyLIFO pops the most recently stored task (the default;
	// corresponds to the paper's "arbitrary task").
	PolicyLIFO TaskPolicy = iota + 1
	// PolicyFIFO pops the oldest stored task, keeping tasks close to their
	// arrival order.
	PolicyFIFO
	// PolicyLargestFirst pops a maximum-weight task, which greedily
	// minimizes the number of transfers. It scans the available pool and is
	// therefore intended for moderate task counts.
	PolicyLargestFirst
)

// String implements fmt.Stringer.
func (p TaskPolicy) String() string {
	switch p {
	case PolicyLIFO:
		return "lifo"
	case PolicyFIFO:
		return "fifo"
	case PolicyLargestFirst:
		return "largest-first"
	default:
		return fmt.Sprintf("TaskPolicy(%d)", int(p))
	}
}

// FlowImitation is Algorithm 1: the deterministic discretization D(A) of a
// continuous process A for arbitrarily weighted tasks and node speeds.
type FlowImitation struct {
	g    *graph.Graph
	s    load.Speeds
	cont continuous.Process
	wmax int64

	// tasks[i] holds node i's tasks. During a round, only the avail[i]
	// prefix (the tasks held at round start, minus those already allocated)
	// may be forwarded; arrivals are appended after all edges are decided.
	tasks    load.TaskDist
	avail    []int
	incoming [][]load.Task

	// fA is the cumulative signed net flow of the continuous process per
	// edge; fD is its discrete counterpart in total task weight.
	fA []float64
	fD []int64

	dummies int64
	t       int
	policy  TaskPolicy
}

// NewFlowImitation builds Algorithm 1 on graph g with speeds s, initial task
// distribution dist, and the continuous process produced by factory from the
// matching initial load vector. wmax is taken from dist (dummy tokens have
// weight 1 and never raise it).
func NewFlowImitation(g *graph.Graph, s load.Speeds, dist load.TaskDist, factory continuous.Factory, policy TaskPolicy) (*FlowImitation, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("core: speeds length %d != n %d", len(s), g.N())
	}
	if len(dist) != g.N() {
		return nil, fmt.Errorf("core: task distribution length %d != n %d", len(dist), g.N())
	}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	switch policy {
	case PolicyLIFO, PolicyFIFO, PolicyLargestFirst:
	default:
		return nil, fmt.Errorf("core: unknown task policy %v", policy)
	}
	cont, err := factory(dist.Loads().Float())
	if err != nil {
		return nil, fmt.Errorf("core: build continuous process: %w", err)
	}
	fi := &FlowImitation{
		g:        g,
		s:        s.Clone(),
		cont:     cont,
		wmax:     dist.MaxWeight(),
		tasks:    dist.Clone(),
		avail:    make([]int, g.N()),
		incoming: make([][]load.Task, g.N()),
		fA:       make([]float64, g.M()),
		fD:       make([]int64, g.M()),
		policy:   policy,
	}
	return fi, nil
}

// Name identifies the process, e.g. "alg1(fos)".
func (fi *FlowImitation) Name() string { return "alg1(" + fi.cont.Name() + ")" }

// Graph returns the network.
func (fi *FlowImitation) Graph() *graph.Graph { return fi.g }

// Speeds returns the node speeds.
func (fi *FlowImitation) Speeds() load.Speeds { return fi.s }

// Round returns the index of the next round to execute.
func (fi *FlowImitation) Round() int { return fi.t }

// Wmax returns the maximum task weight the transformation was built with.
func (fi *FlowImitation) Wmax() int64 { return fi.wmax }

// Continuous exposes the embedded continuous process (read-only use: its
// rounds are advanced exclusively by Step).
func (fi *FlowImitation) Continuous() continuous.Process { return fi.cont }

// DummiesCreated returns the total weight drawn from the infinite source so
// far. Theorem 3(2)'s initial-load condition guarantees this stays zero.
func (fi *FlowImitation) DummiesCreated() int64 { return fi.dummies }

// WentNegative always reports false: the infinite source prevents negative
// load by construction.
func (fi *FlowImitation) WentNegative() bool { return false }

// Load returns the per-node total task weight, including dummy tokens.
func (fi *FlowImitation) Load() load.Vector { return fi.tasks.Loads() }

// LoadExcludingDummies returns the per-node real load after the paper's
// end-of-process dummy elimination.
func (fi *FlowImitation) LoadExcludingDummies() load.Vector {
	return fi.tasks.LoadsExcludingDummies()
}

// Tasks returns a deep copy of the current task distribution.
func (fi *FlowImitation) Tasks() load.TaskDist { return fi.tasks.Clone() }

// FlowError returns e_e(t) = f^A_e(t) − f^D_e(t), the signed flow deviation
// on edge e. Observation 4 guarantees |FlowError(e)| < wmax at all times.
func (fi *FlowImitation) FlowError(e int) float64 { return fi.fA[e] - float64(fi.fD[e]) }

// Step executes one synchronous round of D(A): it advances the continuous
// process, then forwards tasks over every edge until each edge's residual
// drops below wmax, creating dummy tokens on demand.
func (fi *FlowImitation) Step() {
	fl := fi.cont.Step()
	for e := range fi.fA {
		fi.fA[e] += fl.Net(e)
	}
	for i := range fi.avail {
		fi.avail[i] = len(fi.tasks[i])
		fi.incoming[i] = fi.incoming[i][:0]
	}
	var sender, recv int
	take := func() load.Task { return fi.takeTask(sender) }
	emit := func(q load.Task) { fi.incoming[recv] = append(fi.incoming[recv], q) }
	for e := 0; e < fi.g.M(); e++ {
		gap := fi.fA[e] - float64(fi.fD[e])
		u, v := fi.g.EdgeEndpoints(e)
		var sign int64
		sender, recv, sign = u, v, 1
		if gap < 0 {
			sender, recv, sign = v, u, -1
			gap = -gap
		}
		fi.fD[e] += sign * Forward(gap, fi.wmax, take, emit)
	}
	for i := range fi.tasks {
		fi.tasks[i] = append(fi.tasks[i][:fi.avail[i]], fi.incoming[i]...)
	}
	fi.t++
}

// takeTask removes one unallocated task from node i according to the policy,
// or draws a unit-weight dummy token from the infinite source when i has no
// unallocated tasks left.
func (fi *FlowImitation) takeTask(i int) load.Task {
	if fi.avail[i] == 0 {
		fi.dummies++
		return load.Task{Weight: 1, Dummy: true}
	}
	pool := fi.tasks[i]
	last := fi.avail[i] - 1
	if fi.policy == PolicyFIFO {
		// Pop the oldest task, preserving arrival order in the pool.
		q := pool[0]
		fi.tasks[i] = pool[1:]
		fi.avail[i]--
		return q
	}
	pick := last
	if fi.policy == PolicyLargestFirst {
		for k := 0; k < fi.avail[i]; k++ {
			if pool[k].Weight > pool[pick].Weight {
				pick = k
			}
		}
	}
	q := pool[pick]
	// Swap the picked task out of the available prefix; arrivals are only
	// appended after the round, so the prefix is the whole slice here.
	pool[pick] = pool[last]
	fi.tasks[i] = pool[:last]
	fi.avail[i]--
	return q
}
