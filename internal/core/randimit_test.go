package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/workload"
)

func TestNewRandomizedFlowImitationValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	f := fosFactory(t, g, s)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandomizedFlowImitation(nil, s, load.Vector{1, 1}, f, rng); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := NewRandomizedFlowImitation(g, s, load.Vector{1, 1}, f, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := NewRandomizedFlowImitation(g, s, load.Vector{1}, f, rng); err == nil {
		t.Error("short tokens should error")
	}
	if _, err := NewRandomizedFlowImitation(g, s, load.Vector{-1, 1}, f, rng); err == nil {
		t.Error("negative tokens should error")
	}
	if _, err := NewRandomizedFlowImitation(g, load.Speeds{0, 1}, load.Vector{1, 1}, f, rng); err == nil {
		t.Error("invalid speeds should error")
	}
	ri, err := NewRandomizedFlowImitation(g, s, load.Vector{4, 0}, f, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Name() != "alg2(fos)" {
		t.Errorf("Name = %q", ri.Name())
	}
	if ri.WentNegative() {
		t.Error("Alg 2 can never go negative")
	}
}

// TestObservation9ErrorRange: the per-edge flow error of Algorithm 2 always
// lies strictly within (−1, 1) — the realization of Observation 9(3) that
// E ∈ {{Ŷ}−1, {Ŷ}}.
func TestObservation9ErrorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x0 := workload.UniformRandom(g.N(), 3000, rng)
	ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s), rng)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 150; round++ {
		ri.Step()
		for e := 0; e < g.M(); e++ {
			if v := math.Abs(ri.FlowError(e)); v >= 1+1e-6 {
				t.Fatalf("round %d edge %d: |E| = %v >= 1", round, e, v)
			}
		}
	}
}

// TestAlg2Conservation: total tokens equal initial plus dummies, every
// round, and token counts never go negative.
func TestAlg2Conservation(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 800, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s), rng)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		ri.Step()
		x := ri.Load()
		if x.HasNegative() {
			t.Fatalf("round %d: negative token count: %v", round, x)
		}
		if x.Total() != 800+ri.DummiesCreated() {
			t.Fatalf("round %d: total %d != 800 + dummies %d", round, x.Total(), ri.DummiesCreated())
		}
	}
}

// TestAlg2DeterministicPerSeed: identical seeds give identical trajectories;
// different seeds eventually diverge.
func TestAlg2DeterministicPerSeed(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) load.Vector {
		ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s),
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 40; round++ {
			ri.Step()
		}
		return ri.Load()
	}
	a, b, c := run(7), run(7), run(8)
	sameAB, sameAC := true, true
	for i := range a {
		if a[i] != b[i] {
			sameAB = false
		}
		if a[i] != c[i] {
			sameAC = false
		}
	}
	if !sameAB {
		t.Error("same seed must reproduce the trajectory")
	}
	if sameAC {
		t.Error("different seeds should diverge on this instance")
	}
}

// TestTheorem8Shape: at the balancing time the max-avg discrepancy is within
// the Theorem 8 shape d/4 + c·sqrt(d·ln n) for a small constant c, across
// seeds.
func TestTheorem8Shape(t *testing.T) {
	g, err := graph.Hypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	factory := fosFactory(t, g, s)
	probe, err := factory(x0.Float())
	if err != nil {
		t.Fatal(err)
	}
	bt, err := continuous.BalancingTime(probe, 200000)
	if err != nil {
		t.Fatal(err)
	}
	d := float64(g.MaxDegree())
	bound := d/4 + 3*math.Sqrt(d*math.Log(float64(g.N())))
	for seed := int64(0); seed < 6; seed++ {
		ri, err := NewRandomizedFlowImitation(g, s, x0, factory, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < bt; round++ {
			ri.Step()
		}
		maxAvg, err := load.MaxAvgDiscrepancy(ri.Load(), s, x0.Total())
		if err != nil {
			t.Fatal(err)
		}
		if maxAvg > bound {
			t.Errorf("seed %d: max-avg %v > generous Theorem 8 bound %v", seed, maxAvg, bound)
		}
	}
}

// TestLemma11NoDummiesWithFloor: with the Theorem 8(2) initial floor,
// Algorithm 2 never touches the infinite source (w.h.p.; checked across
// seeds).
func TestLemma11NoDummiesWithFloor(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	base, err := workload.PointMass(g.N(), 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := float64(g.MaxDegree())
	ell := int64(math.Ceil(d/4 + 2*math.Sqrt(d*math.Log(float64(g.N())))))
	x0, err := workload.AddFloor(base, s, ell)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		ri, err := NewRandomizedFlowImitation(g, s, x0, fosFactory(t, g, s),
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 400; round++ {
			ri.Step()
		}
		if ri.DummiesCreated() != 0 {
			t.Errorf("seed %d: created %d dummies despite the floor", seed, ri.DummiesCreated())
		}
	}
}

// TestAlg2OverMatching: Algorithm 2 over the random-matching process keeps
// its invariants.
func TestAlg2OverMatching(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	sched := matching.NewRandom(g, 9)
	factory := continuous.MatchingFactory(g, s, sched)
	x0, err := workload.PointMass(g.N(), 1600, 0)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := NewRandomizedFlowImitation(g, s, x0, factory, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 200; round++ {
		ri.Step()
		for e := 0; e < g.M(); e++ {
			if math.Abs(ri.FlowError(e)) >= 1+1e-6 {
				t.Fatalf("round %d: |E| >= 1", round)
			}
		}
	}
	if ri.Load().Total() != 1600+ri.DummiesCreated() {
		t.Error("conservation with dummies violated")
	}
	if ri.Continuous().Round() != 200 {
		t.Errorf("embedded process round = %d, want 200", ri.Continuous().Round())
	}
}

// TestAlg2InvariantsProperty is the quick-check bundle over random graphs,
// speeds and loads.
func TestAlg2InvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(12, 0.3, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		x0 := workload.UniformRandom(g.N(), 300, rng)
		alpha, err := continuous.DefaultAlphas(g, s)
		if err != nil {
			return false
		}
		ri, err := NewRandomizedFlowImitation(g, s, x0, continuous.FOSFactory(g, s, alpha), rng)
		if err != nil {
			return false
		}
		for round := 0; round < 40; round++ {
			ri.Step()
			x := ri.Load()
			if x.HasNegative() {
				return false
			}
			if x.Total() != 300+ri.DummiesCreated() {
				return false
			}
			for e := 0; e < g.M(); e++ {
				if math.Abs(ri.FlowError(e)) >= 1+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
