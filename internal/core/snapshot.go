package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/continuous"
	"repro/internal/load"
)

// ErrNotSnapshottable is returned when the embedded continuous process does
// not implement continuous.Snapshotter.
var ErrNotSnapshottable = errors.New("core: embedded continuous process does not support snapshots")

// flowImitationState is the gob shape of a FlowImitation checkpoint.
type flowImitationState struct {
	Tasks   load.TaskDist
	FA      []float64
	FD      []int64
	Dummies int64
	Round   int
	Wmax    int64
	Policy  TaskPolicy
	Cont    []byte
}

// Snapshot captures the full dynamic state of Algorithm 1, including its
// embedded continuous replica, so a long run can be checkpointed and resumed
// later on an identically configured instance (same graph, speeds, factory
// parameters).
func (fi *FlowImitation) Snapshot() ([]byte, error) {
	snap, ok := fi.cont.(continuous.Snapshotter)
	if !ok {
		return nil, ErrNotSnapshottable
	}
	contState, err := snap.SnapshotState()
	if err != nil {
		return nil, err
	}
	st := flowImitationState{
		Tasks:   fi.tasks.Clone(),
		FA:      append([]float64(nil), fi.fA...),
		FD:      append([]int64(nil), fi.fD...),
		Dummies: fi.dummies,
		Round:   fi.t,
		Wmax:    fi.wmax,
		Policy:  fi.policy,
		Cont:    contState,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the dynamic state with a snapshot previously produced by
// Snapshot on an identically configured FlowImitation.
func (fi *FlowImitation) Restore(data []byte) error {
	snap, ok := fi.cont.(continuous.Snapshotter)
	if !ok {
		return ErrNotSnapshottable
	}
	var st flowImitationState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if len(st.Tasks) != fi.g.N() || len(st.FA) != fi.g.M() || len(st.FD) != fi.g.M() {
		return fmt.Errorf("core: snapshot shape (%d,%d,%d) does not match graph (%d,%d)",
			len(st.Tasks), len(st.FA), len(st.FD), fi.g.N(), fi.g.M())
	}
	if err := snap.RestoreState(st.Cont); err != nil {
		return err
	}
	fi.tasks = st.Tasks.Clone()
	copy(fi.fA, st.FA)
	copy(fi.fD, st.FD)
	fi.dummies = st.Dummies
	fi.t = st.Round
	fi.wmax = st.Wmax
	fi.policy = st.Policy
	return nil
}
