package core
