package core

import "repro/internal/load"

// Forward is the per-edge core of Algorithm 1's round: given the residual
// signed flow gap of an edge (already oriented so that positive means "this
// side sends"), it keeps forwarding tasks while the remaining gap is at
// least wmax, drawing each task from take and handing it to emit. It
// returns the total weight sent, which the caller credits to the edge's
// discrete flow.
//
// Every execution of Algorithm 1 in this repository funnels through this
// function — the centralized FlowImitation, the channel-based cluster in
// package dist, the wire-based cluster in package netsim, and the online
// runtime in package engine — which is what keeps their send decisions
// bit-for-bit identical.
func Forward(gap float64, wmax int64, take func() load.Task, emit func(load.Task)) int64 {
	w := float64(wmax)
	var sent int64
	for gap-float64(sent) >= w-RoundingEps {
		q := take()
		emit(q)
		sent += q.Weight
	}
	return sent
}
