package core

import (
	"math/rand"
	"testing"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/workload"
)

// TestSnapshotRestoreResumesExactly: checkpoint mid-run, restore into a
// fresh instance, continue — final state must equal the uninterrupted run,
// for every snapshottable driver.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := workload.RandomWeightedTasks(g.N(), 300, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]continuous.Factory{
		"fos":          continuous.FOSFactory(g, s, alpha),
		"sos":          continuous.SOSFactory(g, s, alpha, 1.5),
		"match-random": continuous.MatchingFactory(g, s, matching.NewRandom(g, 3)),
	}
	const (
		half  = 40
		total = 90
	)
	for name, factory := range factories {
		// Uninterrupted reference run.
		ref, err := NewFlowImitation(g, s, dist, factory, PolicyLIFO)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < total; round++ {
			ref.Step()
		}

		// Checkpointed run.
		first, err := NewFlowImitation(g, s, dist, factory, PolicyLIFO)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < half; round++ {
			first.Step()
		}
		blob, err := first.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		resumed, err := NewFlowImitation(g, s, dist, factory, PolicyLIFO)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.Restore(blob); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if resumed.Round() != half {
			t.Fatalf("%s: restored round = %d, want %d", name, resumed.Round(), half)
		}
		for round := half; round < total; round++ {
			resumed.Step()
		}

		refLoad, gotLoad := ref.Load(), resumed.Load()
		for i := range refLoad {
			if refLoad[i] != gotLoad[i] {
				t.Fatalf("%s: node %d: resumed %d != reference %d", name, i, gotLoad[i], refLoad[i])
			}
		}
		if ref.DummiesCreated() != resumed.DummiesCreated() {
			t.Errorf("%s: dummies %d != %d", name, resumed.DummiesCreated(), ref.DummiesCreated())
		}
		for e := 0; e < g.M(); e++ {
			if ref.FlowError(e) != resumed.FlowError(e) {
				t.Fatalf("%s: edge %d flow error mismatch", name, e)
			}
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	dist := mustTokens(t, load.Vector{4, 0})
	fi, err := NewFlowImitation(g, s, dist, fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := fi.Restore([]byte("garbage")); err == nil {
		t.Error("garbage snapshot should error")
	}
	// Snapshot from a different graph shape must be rejected.
	g3 := graph.MustNew(3, [][2]int{{0, 1}, {1, 2}})
	s3 := load.UniformSpeeds(3)
	alpha3, err := continuous.DefaultAlphas(g3, s3)
	if err != nil {
		t.Fatal(err)
	}
	fi3, err := NewFlowImitation(g3, s3, mustTokens(t, load.Vector{4, 0, 0}),
		continuous.FOSFactory(g3, s3, alpha3), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := fi3.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := fi.Restore(blob); err == nil {
		t.Error("snapshot from a different graph should be rejected")
	}
}

func TestContinuousSnapshotRoundTrip(t *testing.T) {
	g, err := graph.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, g.N())
	x0[0] = 256
	builders := map[string]func() (continuous.Process, error){
		"fos": func() (continuous.Process, error) { return continuous.NewFOS(g, s, alpha, x0) },
		"sos": func() (continuous.Process, error) { return continuous.NewSOS(g, s, alpha, 1.5, x0) },
	}
	for name, build := range builders {
		ref, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			ref.Step()
		}
		blob, err := ref.(continuous.Snapshotter).SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.(continuous.Snapshotter).RestoreState(blob); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			ref.Step()
			fresh.Step()
		}
		a, b := ref.Load(), fresh.Load()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: restored run diverged at node %d", name, i)
			}
		}
	}
}
