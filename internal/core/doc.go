// Package core implements the paper's primary contribution: the two
// transformations that turn any additive, terminating continuous
// neighbourhood load balancing process A into a discrete process D(A) that
// imitates A's cumulative flow on every edge.
//
//   - FlowImitation is Algorithm 1 (deterministic flow imitation). Each
//     round, over every edge, it forwards whole tasks until the residual
//     deficit f^A_e(t) − f^D_e(t) falls below wmax, drawing unit-weight
//     dummy tokens from an "infinite source" when a node's own tasks run
//     out. Theorem 3 bounds the resulting max-avg discrepancy by
//     2·d·wmax + 2 at the continuous balancing time.
//
//   - RandomizedFlowImitation is Algorithm 2 (randomized flow imitation,
//     unit tokens): the residual is rounded up with probability equal to
//     its fractional part and down otherwise. Theorem 8 bounds the max-avg
//     discrepancy by d/4 + O(sqrt(d·log n)) w.h.p.
//
// Both types drive an embedded continuous.Process started from the same
// initial load vector, which realizes the paper's observation that every
// node can simulate the continuous process locally to learn f^A_e(t).
package core
