package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/workload"
)

func fosFactory(t *testing.T, g *graph.Graph, s load.Speeds) continuous.Factory {
	t.Helper()
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	return continuous.FOSFactory(g, s, a)
}

func mustTokens(t *testing.T, x load.Vector) load.TaskDist {
	t.Helper()
	d, err := load.NewTokens(x)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewFlowImitationValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	f := fosFactory(t, g, s)
	dist := mustTokens(t, load.Vector{4, 0})
	if _, err := NewFlowImitation(nil, s, dist, f, PolicyLIFO); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := NewFlowImitation(g, load.Speeds{1}, dist, f, PolicyLIFO); err == nil {
		t.Error("short speeds should error")
	}
	if _, err := NewFlowImitation(g, s, load.TaskDist{{}}, f, PolicyLIFO); err == nil {
		t.Error("short dist should error")
	}
	if _, err := NewFlowImitation(g, s, dist, f, TaskPolicy(99)); err == nil {
		t.Error("unknown policy should error")
	}
	bad := load.TaskDist{{{Weight: 0}}, {}}
	if _, err := NewFlowImitation(g, s, bad, f, PolicyLIFO); err == nil {
		t.Error("invalid tasks should error")
	}
	fi, err := NewFlowImitation(g, s, dist, f, PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name() != "alg1(fos)" {
		t.Errorf("Name = %q", fi.Name())
	}
	if fi.Wmax() != 1 {
		t.Errorf("Wmax = %d", fi.Wmax())
	}
	if fi.WentNegative() {
		t.Error("Alg 1 can never go negative")
	}
}

// TestObservation4 verifies |f^A_e(t) − f^D_e(t)| < wmax on every edge after
// every round, for unit tokens and weighted tasks, over FOS and matching
// drivers.
func TestObservation4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]continuous.Factory{
		"fos":   continuous.FOSFactory(g, s, alpha),
		"match": continuous.MatchingFactory(g, s, periodic),
	}
	dists := map[string]load.TaskDist{}
	dists["tokens"] = mustTokens(t, workload.UniformRandom(g.N(), 2000, rng))
	weighted, err := workload.RandomWeightedTasks(g.N(), 700, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	dists["weighted"] = weighted
	for fname, factory := range factories {
		for dname, dist := range dists {
			fi, err := NewFlowImitation(g, s, dist, factory, PolicyLIFO)
			if err != nil {
				t.Fatal(err)
			}
			wmax := float64(fi.Wmax())
			for round := 0; round < 120; round++ {
				fi.Step()
				for e := 0; e < g.M(); e++ {
					if errVal := math.Abs(fi.FlowError(e)); errVal >= wmax+1e-6 {
						t.Fatalf("%s/%s round %d edge %d: |e| = %v >= wmax %v",
							fname, dname, round, e, errVal, wmax)
					}
				}
			}
		}
	}
}

// TestLemma6Identity verifies x^D_i(t) = x^A_i(t) + Σ_{j∈N(i)} e_{i,j}(t−1)
// and the derived bound |x^D − x^A| < d·wmax, as long as no dummy tokens
// have been created.
func TestLemma6Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	// Plenty of load everywhere so no dummies appear.
	x0 := workload.UniformRandom(g.N(), 6400, rng)
	shifted, err := workload.AddFloor(x0, s, int64(g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFlowImitation(g, s, mustTokens(t, shifted), fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	dwmax := float64(g.MaxDegree()) * float64(fi.Wmax())
	for round := 0; round < 80; round++ {
		fi.Step()
		if fi.DummiesCreated() != 0 {
			t.Fatalf("round %d: unexpected dummy tokens", round)
		}
		xd := fi.Load()
		xa := fi.Continuous().Load()
		for i := 0; i < g.N(); i++ {
			sumErr := 0.0
			for _, arc := range g.Neighbors(i) {
				e := fi.FlowError(arc.Edge)
				// e_{i,j} is the deviation seen from i: flip the sign when
				// i is the V-endpoint.
				if arc.Out < 0 {
					e = -e
				}
				sumErr += e
			}
			if math.Abs(float64(xd[i])-(xa[i]+sumErr)) > 1e-6 {
				t.Fatalf("round %d node %d: x^D=%d, x^A+Σe=%v", round, i, xd[i], xa[i]+sumErr)
			}
			if math.Abs(float64(xd[i])-xa[i]) >= dwmax+1e-6 {
				t.Fatalf("round %d node %d: |x^D - x^A| = %v >= d·wmax = %v",
					round, i, math.Abs(float64(xd[i])-xa[i]), dwmax)
			}
		}
	}
}

// TestLemma7NoDummiesWithFloor verifies Theorem 3(2)'s precondition
// machinery: with initial load x' + d·wmax·s the infinite source is never
// used.
func TestLemma7NoDummiesWithFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	base, err := workload.PointMass(g.N(), 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	const wmax = 1
	floor := int64(g.MaxDegree()) * wmax
	shifted, err := workload.AddFloor(base, s, floor)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFlowImitation(g, s, mustTokens(t, shifted), fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 400; round++ {
		fi.Step()
	}
	if fi.DummiesCreated() != 0 {
		t.Errorf("with the d·wmax floor, %d dummies were created", fi.DummiesCreated())
	}
}

// TestConservationWithDummies: total discrete load always equals initial
// total plus created dummy weight.
func TestConservationWithDummies(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	// Bare point mass: empty nodes will need dummies to satisfy demand.
	x0, err := workload.PointMass(g.N(), 1600, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFlowImitation(g, s, mustTokens(t, x0), fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		fi.Step()
		total := fi.Load().Total()
		if total != 1600+fi.DummiesCreated() {
			t.Fatalf("round %d: total %d != initial 1600 + dummies %d",
				round, total, fi.DummiesCreated())
		}
		real := fi.LoadExcludingDummies().Total()
		if real != 1600 {
			t.Fatalf("round %d: real load %d != 1600", round, real)
		}
	}
}

// TestUnitTokenFloorSemantics: with unit tokens, Algorithm 1 sends exactly
// floor(f^A_e(t) − f^D_e(t−1)) tokens per edge, so the flow error stays in
// [0, 1) seen from the deficit direction.
func TestUnitTokenFloorSemantics(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	fi, err := NewFlowImitation(g, s, mustTokens(t, load.Vector{11, 0}), fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	// FOS with α = 1/(max degree+1) = 1/2: y_{0,1}(0) = 11/2 = 5.5, so
	// exactly floor(5.5) = 5 tokens move.
	fi.Step()
	x := fi.Load()
	if x[0] != 6 || x[1] != 5 {
		t.Errorf("after round 1: x = %v, want [6 5]", x)
	}
	if e := fi.FlowError(0); e < 0 || e >= 1 {
		t.Errorf("flow error %v outside [0,1)", e)
	}
}

// TestTheorem3Bound: at the continuous balancing time, max-avg discrepancy
// (excluding dummies) is at most 2·d·wmax + 2 across graphs, drivers and
// policies.
func TestTheorem3Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	graphs := map[string]*graph.Graph{}
	if g, err := graph.Hypercube(5); err == nil {
		graphs["hypercube"] = g
	}
	if g, err := graph.Torus(6, 6); err == nil {
		graphs["torus"] = g
	}
	if g, err := graph.ErdosRenyi(48, 0.15, rng); err == nil {
		graphs["er"] = g
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		s := load.UniformSpeeds(g.N())
		x0, err := workload.PointMass(g.N(), 48*int64(g.N()), 0)
		if err != nil {
			t.Fatal(err)
		}
		factory := fosFactory(t, g, s)
		probe, err := factory(x0.Float())
		if err != nil {
			t.Fatal(err)
		}
		bt, err := continuous.BalancingTime(probe, 200000)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []TaskPolicy{PolicyLIFO, PolicyFIFO, PolicyLargestFirst} {
			fi, err := NewFlowImitation(g, s, mustTokens(t, x0), factory, policy)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < bt; round++ {
				fi.Step()
			}
			maxAvg, err := load.MaxAvgDiscrepancy(fi.LoadExcludingDummies(), s, x0.Total())
			if err != nil {
				t.Fatal(err)
			}
			bound := float64(2*g.MaxDegree()) + 2
			if maxAvg > bound {
				t.Errorf("%s/%v: max-avg %v > Theorem 3 bound %v (T=%d)",
					name, policy, maxAvg, bound, bt)
			}
		}
	}
}

// TestTheorem3MaxMinWithFloor: with the d·wmax floor, the max-min
// discrepancy of the full load is at most 2·d·wmax + 2 at time T.
func TestTheorem3MaxMinWithFloor(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	base, err := workload.PointMass(g.N(), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.AddFloor(base, s, int64(g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	factory := fosFactory(t, g, s)
	probe, err := factory(x0.Float())
	if err != nil {
		t.Fatal(err)
	}
	bt, err := continuous.BalancingTime(probe, 200000)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFlowImitation(g, s, mustTokens(t, x0), factory, PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < bt; round++ {
		fi.Step()
	}
	if fi.DummiesCreated() != 0 {
		t.Fatalf("unexpected dummies: %d", fi.DummiesCreated())
	}
	maxMin, err := load.MaxMinDiscrepancy(fi.Load(), s)
	if err != nil {
		t.Fatal(err)
	}
	if bound := float64(2*g.MaxDegree()) + 2; maxMin > bound {
		t.Errorf("max-min %v > bound %v", maxMin, bound)
	}
}

// TestTheorem3Part1DummyPreload realizes the proof device of Theorem 3
// part (1): pre-load d·wmax·s_i dummy tokens per node, run to T, ignore the
// dummies. The preload satisfies Lemma 7, so the infinite source is never
// touched, and the real-load max-avg discrepancy obeys the bound.
func TestTheorem3Part1DummyPreload(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	base, err := workload.PointMass(g.N(), 1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist := mustTokens(t, base)
	preloaded, err := workload.DummyFloorTasks(dist, s, int64(g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	factory := fosFactory(t, g, s)
	probe, err := factory(preloaded.Loads().Float())
	if err != nil {
		t.Fatal(err)
	}
	bt, err := continuous.BalancingTime(probe, 200000)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFlowImitation(g, s, preloaded, factory, PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < bt; round++ {
		fi.Step()
	}
	if fi.DummiesCreated() != 0 {
		t.Errorf("preload satisfies Lemma 7, yet %d extra dummies were created", fi.DummiesCreated())
	}
	maxAvg, err := load.MaxAvgDiscrepancy(fi.LoadExcludingDummies(), s, base.Total())
	if err != nil {
		t.Fatal(err)
	}
	if bound := float64(2*g.MaxDegree() + 2); maxAvg > bound {
		t.Errorf("real-load max-avg %v > Theorem 3 bound %v", maxAvg, bound)
	}
}

// TestWeightedTasksStayWhole: tasks are moved whole — the multiset of
// non-dummy task weights is invariant.
func TestWeightedTasksStayWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	dist, err := workload.RandomWeightedTasks(g.N(), 300, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	countWeights := func(d load.TaskDist) map[int64]int {
		m := map[int64]int{}
		for _, tasks := range d {
			for _, task := range tasks {
				if !task.Dummy {
					m[task.Weight]++
				}
			}
		}
		return m
	}
	before := countWeights(dist)
	fi, err := NewFlowImitation(g, s, dist, fosFactory(t, g, s), PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		fi.Step()
	}
	after := countWeights(fi.Tasks())
	if len(before) != len(after) {
		t.Fatalf("weight multiset changed: %v -> %v", before, after)
	}
	for w, c := range before {
		if after[w] != c {
			t.Errorf("weight %d: count %d -> %d", w, c, after[w])
		}
	}
}

// TestAlg1OverSOSAndMatching: the transformation accepts any additive
// terminating process and keeps Observation 4 under SOS and random
// matchings too.
func TestAlg1OverSOSAndMatching(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 3200, 0)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]continuous.Factory{
		"sos":   continuous.SOSFactory(g, s, alpha, 1.4),
		"match": continuous.MatchingFactory(g, s, matching.NewRandom(g, 17)),
	}
	for name, factory := range factories {
		fi, err := NewFlowImitation(g, s, mustTokens(t, x0), factory, PolicyLIFO)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 150; round++ {
			fi.Step()
			for e := 0; e < g.M(); e++ {
				if math.Abs(fi.FlowError(e)) >= 1+1e-6 {
					t.Fatalf("%s round %d: |e| = %v >= 1", name, round, fi.FlowError(e))
				}
			}
		}
		if fi.Load().Total() != x0.Total()+fi.DummiesCreated() {
			t.Errorf("%s: conservation with dummies violated", name)
		}
	}
}

// TestFlowErrorInvariantProperty is the quick-check version of
// Observation 4 over random graphs, speeds and loads.
func TestFlowErrorInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(12, 0.3, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		dist, err := workload.RandomWeightedTasks(g.N(), 80, 4, rng)
		if err != nil {
			return false
		}
		alpha, err := continuous.DefaultAlphas(g, s)
		if err != nil {
			return false
		}
		fi, err := NewFlowImitation(g, s, dist, continuous.FOSFactory(g, s, alpha), PolicyLIFO)
		if err != nil {
			return false
		}
		wmax := float64(fi.Wmax())
		for round := 0; round < 40; round++ {
			fi.Step()
			for e := 0; e < g.M(); e++ {
				if math.Abs(fi.FlowError(e)) >= wmax+1e-6 {
					return false
				}
			}
			if fi.Load().Total() != dist.Loads().Total()+fi.DummiesCreated() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTaskPolicyString(t *testing.T) {
	if PolicyLIFO.String() != "lifo" || PolicyFIFO.String() != "fifo" ||
		PolicyLargestFirst.String() != "largest-first" {
		t.Error("policy String() values wrong")
	}
	if TaskPolicy(42).String() != "TaskPolicy(42)" {
		t.Error("unknown policy String() wrong")
	}
}
