// Package spectral estimates the spectral quantities the paper's convergence
// statements depend on: the second-largest absolute eigenvalue λ of a
// (reversible) diffusion matrix P, the second-smallest eigenvalue γ of the
// graph Laplacian, and the optimal second-order-schedule parameter
// β* = 2/(1+sqrt(1-λ²)) from Muthukrishnan et al. and Elsässer et al.
//
// All estimates use deflated power iteration on sparse operators expressed as
// mat-vec closures, which is accurate to a few digits within a few hundred
// iterations — plenty for choosing β and for reporting how balancing time
// scales, and it avoids any dense O(n³) eigensolver.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// MatVec applies a linear operator: dst = A*src. dst and src never alias.
type MatVec func(dst, src []float64)

// PowerDeflated estimates the largest |eigenvalue| of the symmetric operator
// given by matvec restricted to the orthogonal complement of the unit vector
// q (the known top eigenvector). rng seeds the start vector; iters power
// steps are performed.
func PowerDeflated(n int, matvec MatVec, q []float64, iters int, rng *rand.Rand) (float64, error) {
	if n <= 0 {
		return 0, errors.New("spectral: operator dimension must be positive")
	}
	if len(q) != n {
		return 0, fmt.Errorf("spectral: deflation vector length %d != n %d", len(q), n)
	}
	if n == 1 {
		return 0, nil
	}
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	deflate(v, q)
	if norm(v) == 0 {
		// Degenerate start vector; use a deterministic fallback.
		for i := range v {
			v[i] = float64(i%7) - 3
		}
		deflate(v, q)
	}
	normalize(v)
	lambda := 0.0
	for k := 0; k < iters; k++ {
		matvec(w, v)
		deflate(w, q)
		lambda = norm(w)
		if lambda == 0 {
			return 0, nil
		}
		for i := range v {
			v[i] = w[i] / lambda
		}
	}
	return lambda, nil
}

func deflate(v, q []float64) {
	dot := 0.0
	for i := range v {
		dot += v[i] * q[i]
	}
	for i := range v {
		v[i] -= dot * q[i]
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	nm := norm(v)
	if nm == 0 {
		return
	}
	for i := range v {
		v[i] /= nm
	}
}

// SecondEigenvalueReversible estimates |λ2| of a row-stochastic matrix P that
// is reversible with respect to the stationary distribution pi (that is,
// pi_i*P_{i,j} = pi_j*P_{j,i}). The matrix is supplied through applyP. The
// symmetrized operator S = D^{1/2} P D^{-1/2}, with D = diag(pi), shares P's
// spectrum and has top eigenvector sqrt(pi), which is deflated.
func SecondEigenvalueReversible(n int, applyP MatVec, pi []float64, iters int, rng *rand.Rand) (float64, error) {
	if len(pi) != n {
		return 0, fmt.Errorf("spectral: stationary distribution length %d != n %d", len(pi), n)
	}
	sqrtPi := make([]float64, n)
	total := 0.0
	for i, p := range pi {
		if p <= 0 {
			return 0, fmt.Errorf("spectral: stationary distribution entry %d is %v, must be positive", i, p)
		}
		total += p
	}
	for i, p := range pi {
		sqrtPi[i] = math.Sqrt(p / total)
	}
	tmp := make([]float64, n)
	applyS := func(dst, src []float64) {
		// S*src = D^{1/2} P (D^{-1/2} src).
		for i := range tmp {
			tmp[i] = src[i] / sqrtPi[i]
		}
		applyP(dst, tmp)
		for i := range dst {
			dst[i] *= sqrtPi[i]
		}
	}
	return PowerDeflated(n, applyS, sqrtPi, iters, rng)
}

// LaplacianSecondSmallest estimates γ, the second-smallest eigenvalue of the
// Laplacian L = D - A of g (the algebraic connectivity). It power-iterates
// the shifted operator c*I - L with c = 2*maxdeg, whose top eigenvector is
// the all-ones vector (deflated), so its second-largest eigenvalue is c - γ.
func LaplacianSecondSmallest(g *graph.Graph, iters int, rng *rand.Rand) (float64, error) {
	n := g.N()
	if n == 1 {
		return 0, nil
	}
	c := 2 * float64(g.MaxDegree())
	applyB := func(dst, src []float64) {
		for i := 0; i < n; i++ {
			acc := (c - float64(g.Degree(i))) * src[i]
			for _, a := range g.Neighbors(i) {
				acc += src[a.To]
			}
			dst[i] = acc
		}
	}
	ones := make([]float64, n)
	inv := 1 / math.Sqrt(float64(n))
	for i := range ones {
		ones[i] = inv
	}
	b2, err := PowerDeflated(n, applyB, ones, iters, rng)
	if err != nil {
		return 0, err
	}
	gamma := c - b2
	if gamma < 0 {
		gamma = 0
	}
	return gamma, nil
}

// OptimalSOSBeta returns the optimal second-order-schedule relaxation
// parameter β* = 2/(1+sqrt(1-λ²)) for a diffusion matrix with second
// eigenvalue magnitude lambda in [0,1).
func OptimalSOSBeta(lambda float64) (float64, error) {
	if lambda < 0 || lambda >= 1 {
		return 0, fmt.Errorf("spectral: lambda %v out of [0,1)", lambda)
	}
	return 2 / (1 + math.Sqrt(1-lambda*lambda)), nil
}
