package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

const tol = 1e-3

func TestPowerDeflatedDiagonal(t *testing.T) {
	// Operator diag(3, 2, 1); top eigenvector e0 deflated => expect 2.
	matvec := func(dst, src []float64) {
		dst[0] = 3 * src[0]
		dst[1] = 2 * src[1]
		dst[2] = 1 * src[2]
	}
	q := []float64{1, 0, 0}
	got, err := PowerDeflated(3, matvec, q, 500, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > tol {
		t.Errorf("second eigenvalue = %v, want 2", got)
	}
}

func TestPowerDeflatedNegativeEigenvalue(t *testing.T) {
	// diag(1, -0.9, 0.2) with e0 deflated: largest |λ| among the rest is 0.9.
	matvec := func(dst, src []float64) {
		dst[0] = src[0]
		dst[1] = -0.9 * src[1]
		dst[2] = 0.2 * src[2]
	}
	q := []float64{1, 0, 0}
	got, err := PowerDeflated(3, matvec, q, 800, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > tol {
		t.Errorf("|λ2| = %v, want 0.9", got)
	}
}

func TestPowerDeflatedErrors(t *testing.T) {
	matvec := func(dst, src []float64) { copy(dst, src) }
	if _, err := PowerDeflated(0, matvec, nil, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := PowerDeflated(2, matvec, []float64{1}, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("mismatched deflation vector should error")
	}
	got, err := PowerDeflated(1, matvec, []float64{1}, 10, rand.New(rand.NewSource(1)))
	if err != nil || got != 0 {
		t.Errorf("n=1 should return 0, got (%v, %v)", got, err)
	}
}

// cycleDiffusionLambda is the exact second eigenvalue of the cycle's
// diffusion matrix with uniform alpha = 1/3 (degree 2, so α = 1/(d+1)):
// eigenvalues are 1/3 + (2/3)cos(2πk/n).
func cycleDiffusionLambda(n int) float64 {
	return 1.0/3 + 2.0/3*math.Cos(2*math.Pi/float64(n))
}

func TestSecondEigenvalueReversibleCycle(t *testing.T) {
	const n = 16
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	applyP := func(dst, src []float64) {
		for i := 0; i < n; i++ {
			acc := src[i] / 3
			for _, a := range g.Neighbors(i) {
				acc += src[a.To] / 3
			}
			dst[i] = acc
		}
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1
	}
	got, err := SecondEigenvalueReversible(n, applyP, pi, 3000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want := cycleDiffusionLambda(n)
	if math.Abs(got-want) > tol {
		t.Errorf("λ2 = %v, want %v", got, want)
	}
}

func TestSecondEigenvalueReversibleBadPi(t *testing.T) {
	applyP := func(dst, src []float64) { copy(dst, src) }
	if _, err := SecondEigenvalueReversible(2, applyP, []float64{1, 0}, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("non-positive pi entry should error")
	}
	if _, err := SecondEigenvalueReversible(2, applyP, []float64{1}, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("short pi should error")
	}
}

func TestLaplacianSecondSmallest(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*graph.Graph, error)
		want  float64
	}{
		{"K8", func() (*graph.Graph, error) { return graph.Complete(8) }, 8},
		{"hypercube-4", func() (*graph.Graph, error) { return graph.Hypercube(4) }, 2},
		{"cycle-12", func() (*graph.Graph, error) { return graph.Cycle(12) },
			2 - 2*math.Cos(2*math.Pi/12)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := LaplacianSecondSmallest(g, 4000, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 5e-3 {
				t.Errorf("γ = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLaplacianSingleNode(t *testing.T) {
	g := graph.MustNew(1, nil)
	got, err := LaplacianSecondSmallest(g, 10, rand.New(rand.NewSource(1)))
	if err != nil || got != 0 {
		t.Errorf("single node γ = (%v, %v), want (0, nil)", got, err)
	}
}

func TestOptimalSOSBeta(t *testing.T) {
	got, err := OptimalSOSBeta(0)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("β*(0) = (%v, %v), want 1", got, err)
	}
	got, err = OptimalSOSBeta(0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / (1 + math.Sqrt(1-0.64))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("β*(0.8) = %v, want %v", got, want)
	}
	if _, err := OptimalSOSBeta(1); err == nil {
		t.Error("λ = 1 should error")
	}
	if _, err := OptimalSOSBeta(-0.1); err == nil {
		t.Error("λ < 0 should error")
	}
	// β* is increasing in λ and stays in (1, 2).
	prev := 1.0
	for _, lam := range []float64{0.1, 0.5, 0.9, 0.99, 0.9999} {
		b, err := OptimalSOSBeta(lam)
		if err != nil {
			t.Fatal(err)
		}
		if b <= prev || b >= 2 {
			t.Errorf("β*(%v) = %v not increasing within (1,2)", lam, b)
		}
		prev = b
	}
}
