package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wire"
)

// sampleEvents covers every kind and field shape the codec must carry.
func sampleEvents() []wire.Event {
	return []wire.Event{
		{Kind: "arrival", At: 3, Node: 7, Tokens: 4, Weight: 2},
		{Kind: "arrival", Node: 0, Tokens: 3, Weights: []int64{5, 1, 9}},
		{Kind: "arrival", At: -2, Node: 1, Tokens: 1, Weight: 1},
		{Kind: "completion", At: 10, Node: 2, Count: 6},
		{Kind: "join", Speed: 3, Peers: []int{0, 4, 2}},
		{Kind: "join", At: 1, Speed: 1},
		{Kind: "leave", Node: 5},
		{Kind: "edge-change", Add: [][2]int{{0, 1}, {2, 3}}, Remove: [][2]int{{1, 2}}},
		{Kind: "edge-change", Remove: [][2]int{{0, 3}}},
		{Kind: "edge-change"},
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents() {
		p, err := EncodeEvent(nil, &ev)
		if err != nil {
			t.Fatalf("encode %+v: %v", ev, err)
		}
		got, err := DecodeEvent(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", ev, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
		}
	}
	if _, err := EncodeEvent(nil, &wire.Event{Kind: "warp"}); err == nil {
		t.Fatalf("unknown kind must not encode")
	}
}

func TestRoundMarkRoundTrip(t *testing.T) {
	m := RoundMark{Round: 41, Real: 9000, Total: 9100, Created: 100, Wmax: 7}
	got, err := DecodeRoundMark(EncodeRoundMark(nil, m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != m {
		t.Fatalf("got %+v want %+v", got, m)
	}
	if _, err := DecodeRoundMark(EncodeRoundMark(nil, RoundMark{Round: -1})); err == nil {
		t.Fatalf("negative round must not decode")
	}
}

func TestRecordFraming(t *testing.T) {
	payload := []byte("hello")
	rec := AppendRecord(nil, RecordEvent, payload)
	typ, got, size, err := DecodeRecord(rec)
	if err != nil || typ != RecordEvent || !bytes.Equal(got, payload) || size != len(rec) {
		t.Fatalf("decode: typ=%d payload=%q size=%d err=%v", typ, got, size, err)
	}
	// Every strict prefix is a short (torn) record, never ErrCorrupt.
	for i := 0; i < len(rec); i++ {
		if _, _, _, err := DecodeRecord(rec[:i]); !errors.Is(err, errShort) {
			t.Fatalf("prefix %d: want errShort, got %v", i, err)
		}
	}
	// Any single flipped bit in the stored CRC fails loudly.
	bad := append([]byte(nil), rec...)
	bad[len(bad)-1] ^= 0x40
	if _, _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped crc: want ErrCorrupt, got %v", err)
	}
	// A hostile length prefix must not drive an allocation.
	huge := AppendRecord(nil, RecordEvent, payload)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, _, err := DecodeRecord(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: want ErrCorrupt, got %v", err)
	}
	unknown := AppendRecord(nil, 9, payload)
	if _, _, _, err := DecodeRecord(unknown); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown type: want ErrCorrupt, got %v", err)
	}
}

// appendRounds writes n committed batches, each carrying the sample events,
// returning the marks written.
func appendRounds(t *testing.T, w *Writer, startRound int64, n int) []RoundMark {
	t.Helper()
	var marks []RoundMark
	for r := 0; r < n; r++ {
		for _, ev := range sampleEvents() {
			if err := w.AppendEvent(&ev); err != nil {
				t.Fatalf("append event: %v", err)
			}
		}
		m := RoundMark{Round: startRound + int64(r) + 1, Real: 100 + int64(r), Total: 110, Created: 10, Wmax: 9}
		if err := w.AppendRound(m); err != nil {
			t.Fatalf("append round: %v", err)
		}
		marks = append(marks, m)
	}
	return marks
}

func checkBatches(t *testing.T, rec *Recovery, marks []RoundMark) {
	t.Helper()
	if len(rec.Batches) != len(marks) {
		t.Fatalf("recovered %d batches, want %d", len(rec.Batches), len(marks))
	}
	want := sampleEvents()
	for i, b := range rec.Batches {
		if b.Mark != marks[i] {
			t.Fatalf("batch %d mark %+v want %+v", i, b.Mark, marks[i])
		}
		if !reflect.DeepEqual(b.Events, want) {
			t.Fatalf("batch %d events mismatch:\n got %+v\nwant %+v", i, b.Events, want)
		}
	}
}

func TestWriterRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec.HasState() || len(rec.Batches) != 0 || rec.LastLSN != 0 {
		t.Fatalf("fresh dir recovered non-empty: %+v", rec)
	}
	state := []byte("genesis-state")
	if err := w.WriteSnapshot(0, state); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	marks := appendRounds(t, w, 0, 5)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !got.HasState() || !bytes.Equal(got.Snapshot, state) || got.SnapshotRound != 0 {
		t.Fatalf("snapshot not recovered: %+v", got)
	}
	checkBatches(t, got, marks)
	if got.LastRound != marks[len(marks)-1].Round {
		t.Fatalf("last round %d want %d", got.LastRound, marks[len(marks)-1].Round)
	}
	if got.TailEvents != 0 || got.Corruption != nil || got.TruncatedBytes != 0 {
		t.Fatalf("clean log reported tail damage: %+v", got)
	}

	// Reopen and continue: the chain extends, nothing is lost.
	w2, rec2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	checkBatches(t, rec2, marks)
	marks = append(marks, appendRounds(t, w2, 5, 2)...)
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err = Recover(dir)
	if err != nil {
		t.Fatalf("recover after reopen: %v", err)
	}
	checkBatches(t, got, marks)
}

func TestCreateRefusesExistingLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	appendRounds(t, w, 0, 1)
	w.Close()
	if _, err := Create(Options{Dir: dir}); err == nil {
		t.Fatalf("create over an existing log must fail")
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	_, segs, err := listFiles(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listFiles: %v (%d segs)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestSegmentRotationAndChain(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every batch.
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 256, Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	marks := appendRounds(t, w, 0, 8)
	w.Close()
	_, segs, err := listFiles(dir)
	if err != nil {
		t.Fatalf("listFiles: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	checkBatches(t, rec, marks)

	// Deleting a middle segment breaks the chain loudly.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("gap in chain: got %v", err)
	}
}

func TestTornTailTruncatedToDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	marks := appendRounds(t, w, 0, 3)
	w.Close()
	seg := lastSegment(t, dir)
	durable, _ := os.ReadFile(seg)

	// Crash simulation: one committed-looking event record that never got
	// its round marker, then a record torn mid-write.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	evPayload, _ := EncodeEvent(nil, &wire.Event{Kind: "leave", Node: 1})
	f.Write(AppendRecord(nil, RecordEvent, evPayload))
	torn := AppendRecord(nil, RecordRound, EncodeRoundMark(nil, RoundMark{Round: 4}))
	f.Write(torn[:len(torn)-3])
	f.Close()

	w2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery must succeed to the durable prefix: %v", err)
	}
	if rec.TailEvents != 1 {
		t.Fatalf("TailEvents = %d, want 1 discarded uncommitted event", rec.TailEvents)
	}
	if rec.Corruption == nil || !strings.Contains(rec.Corruption.Reason, "torn") {
		t.Fatalf("torn tail not reported: %+v", rec.Corruption)
	}
	checkBatches(t, rec, marks)
	// Physically cut back: the file is byte-identical to the durable prefix.
	now, _ := os.ReadFile(seg)
	if !bytes.Equal(now, durable) {
		t.Fatalf("segment not truncated to durable prefix: %d bytes vs %d", len(now), len(durable))
	}
	// And the writer continues the chain cleanly.
	marks = append(marks, appendRounds(t, w2, 3, 1)...)
	w2.Close()
	rec2, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover after continue: %v", err)
	}
	checkBatches(t, rec2, marks)
}

func TestFlippedCRCByteInLastSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir, Sync: SyncAlways})
	marks := appendRounds(t, w, 0, 4)
	w.Close()
	seg := lastSegment(t, dir)
	raw, _ := os.ReadFile(seg)

	// Flip one byte three quarters into the file: recovery falls back to
	// the durable prefix before it and says where.
	off := len(raw) * 3 / 4
	raw[off] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("corruption in last segment must recover to prefix: %v", err)
	}
	if rec.Corruption == nil || rec.Corruption.File != seg || rec.Corruption.Offset == 0 {
		t.Fatalf("corruption not located: %+v", rec.Corruption)
	}
	if len(rec.Batches) >= len(marks) || rec.TruncatedBytes == 0 {
		t.Fatalf("prefix not shortened: %d batches of %d, truncated %d", len(rec.Batches), len(marks), rec.TruncatedBytes)
	}
	checkBatches(t, rec, marks[:len(rec.Batches)])
}

func TestFlippedCRCByteInMiddleSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir, SegmentBytes: 256, Sync: SyncNever})
	appendRounds(t, w, 0, 8)
	w.Close()
	_, segs, _ := listFiles(dir)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	victim := segs[1].path
	raw, _ := os.ReadFile(victim)
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(dir)
	if err == nil {
		t.Fatalf("mid-log corruption must refuse recovery")
	}
	if !strings.Contains(err.Error(), filepath.Base(victim)) || !strings.Contains(err.Error(), "byte") {
		t.Fatalf("error must name file and offset, got: %v", err)
	}
	// Open must refuse identically — never truncate mid-log.
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatalf("Open must refuse mid-log corruption")
	}
}

func TestZeroLengthSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir, SegmentBytes: 256, Sync: SyncNever})
	marks := appendRounds(t, w, 0, 6)
	w.Close()
	_, segs, _ := listFiles(dir)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}

	// Zero-length LAST segment (crash during rotation): dropped, recovery
	// succeeds to the durable prefix.
	last := segs[len(segs)-1].path
	lastRaw, _ := os.ReadFile(last)
	if err := os.Truncate(last, 0); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("zero-length tail segment must recover: %v", err)
	}
	if rec.Corruption == nil || rec.Corruption.File != last {
		t.Fatalf("dropped tail segment not reported: %+v", rec.Corruption)
	}
	checkBatches(t, rec, marks[:len(rec.Batches)])
	if err := os.WriteFile(last, lastRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Zero-length MIDDLE segment: hard error naming the file.
	victim := segs[1].path
	if err := os.Truncate(victim, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), filepath.Base(victim)) {
		t.Fatalf("zero-length middle segment: got %v", err)
	}
}

func TestUncommittedCleanTailDiscarded(t *testing.T) {
	// Events flushed to disk but no round marker (crash between flush and
	// commit): the events are discarded even though every byte is valid.
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir, Sync: SyncAlways})
	marks := appendRounds(t, w, 0, 2)
	for _, ev := range sampleEvents()[:3] {
		if err := w.AppendEvent(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w2.Close()
	if rec.TailEvents != 3 {
		t.Fatalf("TailEvents = %d, want 3", rec.TailEvents)
	}
	checkBatches(t, rec, marks)
	if rec.LastRound != marks[len(marks)-1].Round {
		t.Fatalf("LastRound = %d, want %d", rec.LastRound, marks[len(marks)-1].Round)
	}
}

func TestSnapshotRetentionAndPruning(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 256, Sync: SyncNever, RetainSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	var allMarks []RoundMark
	for i := 0; i < 4; i++ {
		allMarks = append(allMarks, appendRounds(t, w, int64(2*i), 2)...)
		if err := w.WriteSnapshot(int64(2*i+2), []byte{byte('a' + i)}); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	w.Close()

	snaps, segs, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(snaps))
	}
	// Segments wholly covered by the oldest retained snapshot are gone,
	// so the oldest snapshot must still have a contiguous tail after it.
	if segs[0].lsn > snaps[0].lsn+1 {
		t.Fatalf("pruning cut past the oldest retained snapshot: first seg LSN %d, snap LSN %d", segs[0].lsn, snaps[0].lsn)
	}

	newest, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover newest: %v", err)
	}
	if !bytes.Equal(newest.Snapshot, []byte{'d'}) || newest.SnapshotRound != 8 {
		t.Fatalf("newest snapshot wrong: %q round %d", newest.Snapshot, newest.SnapshotRound)
	}
	if len(newest.Batches) != 0 {
		t.Fatalf("nothing to replay after the final snapshot, got %d batches", len(newest.Batches))
	}

	oldest, err := RecoverOldest(dir)
	if err != nil {
		t.Fatalf("recover oldest: %v", err)
	}
	if !bytes.Equal(oldest.Snapshot, []byte{'c'}) || oldest.SnapshotRound != 6 {
		t.Fatalf("oldest snapshot wrong: %q round %d", oldest.Snapshot, oldest.SnapshotRound)
	}
	checkBatches(t, oldest, allMarks[6:])
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir, RetainSnapshots: 4, Sync: SyncAlways})
	if err := w.WriteSnapshot(0, []byte("good-old")); err != nil {
		t.Fatal(err)
	}
	marks := appendRounds(t, w, 0, 2)
	if err := w.WriteSnapshot(2, []byte("bad-new")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	snaps, _, _ := listFiles(dir)
	raw, _ := os.ReadFile(snaps[len(snaps)-1].path)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snaps[len(snaps)-1].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !bytes.Equal(rec.Snapshot, []byte("good-old")) {
		t.Fatalf("did not fall back to older snapshot: %q", rec.Snapshot)
	}
	if len(rec.SkippedSnapshots) != 1 {
		t.Fatalf("skipped snapshots not reported: %v", rec.SkippedSnapshots)
	}
	checkBatches(t, rec, marks)
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := Open(Options{Dir: dir})
	appendRounds(t, w, 0, 1)
	state := bytes.Repeat([]byte{0xab, 0x00, 0x7f}, 100)
	if err := w.WriteSnapshot(1, state); err != nil {
		t.Fatal(err)
	}
	w.Close()
	snaps, _, _ := listFiles(dir)
	lsn, round, got, err := readSnapshot(snaps[len(snaps)-1].path)
	if err != nil {
		t.Fatalf("readSnapshot: %v", err)
	}
	if round != 1 || lsn != snaps[len(snaps)-1].lsn || !bytes.Equal(got, state) {
		t.Fatalf("snapshot mismatch: lsn=%d round=%d len=%d", lsn, round, len(got))
	}
}
