// Package wal implements the durable event log of the online engine: an
// append-only sequence of length-prefixed, CRC-checked records — applied
// runtime events (internal/wire form) and round markers — split across
// rotating segment files, with periodic full-state snapshots that bound
// replay and allow the log prefix they cover to be truncated.
//
// Durability contract: a round marker is the commit record of the batch of
// event records since the previous marker. Recovery replays only committed
// batches; trailing event records without a closing marker (a crash
// mid-step) are discarded and reported. The fsync policy (Options.Sync)
// decides when appended records become durable: SyncAlways fsyncs at every
// round marker, SyncInterval (the default) at most once per SyncEvery, and
// SyncNever leaves flushing to the OS — the classic
// throughput/durability-window trade.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/wire"
)

// Record types. Snapshots live in separate snap-*.snap files, not in the
// record stream.
const (
	// RecordEvent is one applied runtime event, payload = EncodeEvent.
	RecordEvent byte = 1
	// RecordRound is a round marker, payload = EncodeRoundMark. It commits
	// the event records appended since the previous marker.
	RecordRound byte = 2
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the engine targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordPayload bounds one record's payload so a corrupt length prefix
// cannot ask the reader to allocate gigabytes.
const maxRecordPayload = 16 << 20

// ErrCorrupt marks framing-level corruption: a bad length prefix, an
// unknown record type, or a CRC mismatch. Callers distinguish a torn tail
// (truncate to the durable prefix) from mid-log corruption (fail loudly)
// by where the corrupt record sits.
var ErrCorrupt = errors.New("wal: corrupt record")

// RoundMark is the payload of a RecordRound: the post-round ledger
// checkpoint the engine writes after every balancing round. Replay
// re-derives the same quantities and refuses to continue on a mismatch, so
// a divergent replay is caught at the first round boundary after the
// divergence, named by round.
type RoundMark struct {
	// Round is the engine's round counter after the round completed.
	Round int64
	// Real is the conserved non-dummy task weight W (expectedReal).
	Real int64
	// Total is the ledger's aggregate pool weight, dummies included.
	Total int64
	// Created is the cumulative dummy weight ever drawn.
	Created int64
	// Wmax is the maximum task weight seen so far.
	Wmax int64
}

// AppendRecord appends one framed record to dst and returns the extended
// slice. Frame layout:
//
//	uint32-LE payload length | type byte | payload | uint32-LE CRC32C
//
// where the CRC covers the type byte and the payload.
func AppendRecord(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	body := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.Update(0, crcTable, dst[body:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeRecord parses one framed record from the front of b. It returns
// the record type, its payload (aliasing b), and the total number of bytes
// the record occupies. A short buffer returns (0, nil, 0, errShort); any
// other failure wraps ErrCorrupt.
func DecodeRecord(b []byte) (typ byte, payload []byte, size int, err error) {
	if len(b) < 4 {
		return 0, nil, 0, errShort
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecordPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrCorrupt, n, maxRecordPayload)
	}
	size = 4 + 1 + int(n) + 4
	if len(b) < size {
		return 0, nil, 0, errShort
	}
	typ = b[4]
	if typ != RecordEvent && typ != RecordRound {
		return 0, nil, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
	payload = b[5 : 5+int(n)]
	want := binary.LittleEndian.Uint32(b[5+int(n):])
	crc := crc32.Update(0, crcTable, b[4:5+int(n)])
	if crc != want {
		return 0, nil, 0, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, want, crc)
	}
	return typ, payload, size, nil
}

// errShort reports that a buffer ends mid-record — at the tail of the last
// segment this is a torn write, anywhere else it is corruption.
var errShort = errors.New("wal: short record")

// Event kind bytes of the binary event encoding, mapping wire.Event.Kind.
const (
	kindArrival    byte = 1
	kindCompletion byte = 2
	kindJoin       byte = 3
	kindLeave      byte = 4
	kindEdgeChange byte = 5
)

func kindByte(kind string) (byte, error) {
	switch kind {
	case "arrival":
		return kindArrival, nil
	case "completion":
		return kindCompletion, nil
	case "join":
		return kindJoin, nil
	case "leave":
		return kindLeave, nil
	case "edge-change":
		return kindEdgeChange, nil
	default:
		return 0, fmt.Errorf("wal: unencodable event kind %q", kind)
	}
}

func kindString(b byte) (string, error) {
	switch b {
	case kindArrival:
		return "arrival", nil
	case kindCompletion:
		return "completion", nil
	case kindJoin:
		return "join", nil
	case kindLeave:
		return "leave", nil
	case kindEdgeChange:
		return "edge-change", nil
	default:
		return "", fmt.Errorf("%w: unknown event kind byte %d", ErrCorrupt, b)
	}
}

// EncodeEvent appends the binary form of one wire event to dst. The
// encoding is kind byte + varints, field order fixed per kind; it is the
// payload of a RecordEvent. Only the fields the kind uses are encoded, so
// DecodeEvent(EncodeEvent(ev)) == ev holds exactly for events that are
// canonical for their kind (zero-valued unused fields), which every event
// the engine logs is.
func EncodeEvent(dst []byte, ev *wire.Event) ([]byte, error) {
	kb, err := kindByte(ev.Kind)
	if err != nil {
		return dst, err
	}
	dst = append(dst, kb)
	dst = binary.AppendVarint(dst, ev.At)
	switch kb {
	case kindArrival:
		dst = binary.AppendVarint(dst, int64(ev.Node))
		dst = binary.AppendUvarint(dst, uint64(ev.Tokens))
		dst = binary.AppendVarint(dst, ev.Weight)
		dst = binary.AppendUvarint(dst, uint64(len(ev.Weights)))
		for _, w := range ev.Weights {
			dst = binary.AppendVarint(dst, w)
		}
	case kindCompletion:
		dst = binary.AppendVarint(dst, int64(ev.Node))
		dst = binary.AppendUvarint(dst, uint64(ev.Count))
	case kindJoin:
		dst = binary.AppendVarint(dst, ev.Speed)
		dst = binary.AppendUvarint(dst, uint64(len(ev.Peers)))
		for _, p := range ev.Peers {
			dst = binary.AppendVarint(dst, int64(p))
		}
	case kindLeave:
		dst = binary.AppendVarint(dst, int64(ev.Node))
	case kindEdgeChange:
		dst = appendPairs(dst, ev.Add)
		dst = appendPairs(dst, ev.Remove)
	}
	return dst, nil
}

func appendPairs(dst []byte, pairs [][2]int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for _, uv := range pairs {
		dst = binary.AppendVarint(dst, int64(uv[0]))
		dst = binary.AppendVarint(dst, int64(uv[1]))
	}
	return dst
}

// decoder reads varints off a payload with saturating error state.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated varint", ErrCorrupt)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated uvarint", ErrCorrupt)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count validates a decoded collection length against both the remaining
// payload (each element costs at least one byte) and an absolute cap, so a
// corrupt length cannot drive a huge allocation.
func (d *decoder) count(v uint64) int {
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)) || v > maxRecordPayload {
		d.err = fmt.Errorf("%w: collection length %d exceeds remaining payload %d", ErrCorrupt, v, len(d.b))
		return 0
	}
	return int(v)
}

func (d *decoder) pairs() [][2]int {
	n := d.count(d.uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][2]int, n)
	for i := range out {
		out[i][0] = int(d.varint())
		out[i][1] = int(d.varint())
	}
	return out
}

// DecodeEvent parses the payload of a RecordEvent back into a wire event.
func DecodeEvent(payload []byte) (wire.Event, error) {
	if len(payload) == 0 {
		return wire.Event{}, fmt.Errorf("%w: empty event payload", ErrCorrupt)
	}
	kind, err := kindString(payload[0])
	if err != nil {
		return wire.Event{}, err
	}
	d := &decoder{b: payload[1:]}
	ev := wire.Event{Kind: kind, At: d.varint()}
	switch payload[0] {
	case kindArrival:
		ev.Node = int(d.varint())
		ev.Tokens = int(d.uvarint())
		ev.Weight = d.varint()
		if n := d.count(d.uvarint()); n > 0 {
			ev.Weights = make([]int64, n)
			for i := range ev.Weights {
				ev.Weights[i] = d.varint()
			}
		}
	case kindCompletion:
		ev.Node = int(d.varint())
		ev.Count = int(d.uvarint())
	case kindJoin:
		ev.Speed = d.varint()
		if n := d.count(d.uvarint()); n > 0 {
			ev.Peers = make([]int, n)
			for i := range ev.Peers {
				ev.Peers[i] = int(d.varint())
			}
		}
	case kindLeave:
		ev.Node = int(d.varint())
	case kindEdgeChange:
		ev.Add = d.pairs()
		ev.Remove = d.pairs()
	}
	if d.err != nil {
		return wire.Event{}, d.err
	}
	if len(d.b) != 0 {
		return wire.Event{}, fmt.Errorf("%w: %d trailing bytes after event", ErrCorrupt, len(d.b))
	}
	if ev.Tokens < 0 || ev.Count < 0 {
		return wire.Event{}, fmt.Errorf("%w: negative count field", ErrCorrupt)
	}
	return ev, nil
}

// EncodeRoundMark appends the binary form of a round marker to dst — the
// payload of a RecordRound.
func EncodeRoundMark(dst []byte, m RoundMark) []byte {
	dst = binary.AppendVarint(dst, m.Round)
	dst = binary.AppendVarint(dst, m.Real)
	dst = binary.AppendVarint(dst, m.Total)
	dst = binary.AppendVarint(dst, m.Created)
	dst = binary.AppendVarint(dst, m.Wmax)
	return dst
}

// DecodeRoundMark parses the payload of a RecordRound.
func DecodeRoundMark(payload []byte) (RoundMark, error) {
	d := &decoder{b: payload}
	m := RoundMark{
		Round:   d.varint(),
		Real:    d.varint(),
		Total:   d.varint(),
		Created: d.varint(),
		Wmax:    d.varint(),
	}
	if d.err != nil {
		return RoundMark{}, d.err
	}
	if len(d.b) != 0 {
		return RoundMark{}, fmt.Errorf("%w: %d trailing bytes after round mark", ErrCorrupt, len(d.b))
	}
	if m.Round < 0 {
		return RoundMark{}, fmt.Errorf("%w: negative round %d", ErrCorrupt, m.Round)
	}
	return m, nil
}
