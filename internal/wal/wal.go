package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs at a round marker when at least SyncEvery has
	// elapsed since the last sync — the default: bounded data-loss window,
	// near-zero amortized cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs at every round marker: no committed round is ever
	// lost, at one fsync per round.
	SyncAlways
	// SyncNever leaves durability to the OS page cache; records are still
	// flushed to the file at every round marker. A machine crash may lose
	// recent rounds, a process crash loses nothing.
	SyncNever
)

// ParseSyncPolicy maps the lbserve flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (interval|always|never)", s)
	}
}

// SyncPolicyNames lists the accepted -wal-sync values.
func SyncPolicyNames() []string { return []string{"interval", "always", "never"} }

// Options configures a Writer.
type Options struct {
	// Dir is the log directory (required); created if missing.
	Dir string
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size; 0 means 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period; 0 means 100ms.
	SyncEvery time.Duration
	// RetainSnapshots keeps that many most recent snapshot files; segments
	// wholly covered by the oldest retained snapshot are deleted after each
	// new snapshot becomes durable. 0 means 2.
	RetainSnapshots int
	// Registry receives the writer's instruments (appends, fsync timing,
	// rotations, snapshot sizes); nil disables them.
	Registry *obs.Registry
}

func (o Options) normalize() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("wal: empty directory")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.RetainSnapshots <= 0 {
		o.RetainSnapshots = 2
	}
	return o, nil
}

// File naming and headers. Segment files are wal-<firstLSN>.seg and start
// with a header carrying the magic, version and first record LSN; snapshot
// files are snap-<lsn>.snap (see writeSnapshotFile). The LSN is the global
// record index: record k of the whole log has LSN k+1, and a snapshot's
// LSN says how many records it covers.
const (
	segMagic  = "LBWSEG01"
	snapMagic = "LBWSNAP1"
	segVer    = 1
	snapVer   = 1
)

func segName(firstLSN int64) string { return fmt.Sprintf("wal-%016x.seg", firstLSN) }
func snapName(lsn int64) string     { return fmt.Sprintf("snap-%016x.snap", lsn) }

type walInstruments struct {
	records   *obs.Counter
	marks     *obs.Counter
	bytes     *obs.Counter
	syncs     *obs.Counter
	syncTime  *obs.Histogram
	rotations *obs.Counter
	snapshots *obs.Counter
	snapBytes *obs.Gauge
}

func newWALInstruments(reg *obs.Registry) *walInstruments {
	if reg == nil {
		return nil
	}
	return &walInstruments{
		records:   reg.Counter("wal_event_records_total", "Event records appended to the write-ahead log."),
		marks:     reg.Counter("wal_round_marks_total", "Round markers (batch commit records) appended to the log."),
		bytes:     reg.Counter("wal_bytes_total", "Bytes appended to log segments."),
		syncs:     reg.Counter("wal_syncs_total", "fsync calls on log segments."),
		syncTime:  reg.Histogram("wal_sync_seconds", "Wall time of log segment fsyncs.", nil),
		rotations: reg.Counter("wal_segment_rotations_total", "Segment files opened after the first."),
		snapshots: reg.Counter("wal_snapshots_total", "Durable snapshots written."),
		snapBytes: reg.Gauge("wal_snapshot_bytes", "Size of the most recent snapshot payload."),
	}
}

// Writer appends records to the segmented log. It is not safe for
// concurrent use; the engine's serialization domain covers it.
type Writer struct {
	opts Options
	dir  *os.File // for directory fsyncs

	f *os.File

	segStart int64 // LSN of the current segment's first record
	segSize  int64
	lsn      int64 // LSN of the last appended record
	lastSync time.Time

	// snapLSN is the LSN of the newest durable snapshot.
	snapLSN int64

	// out accumulates framed records not yet written to the segment file.
	// Records are encoded directly into it — no per-record staging copy —
	// and it drains to the file once it passes flushThreshold, at round
	// markers per the sync policy, and on rotation/close.
	out    []byte
	instr  *walInstruments
	closed bool
}

// flushThreshold bounds how many buffered bytes accumulate before the
// writer drains out to the segment file (without fsync).
const flushThreshold = 256 << 10

// Create opens a fresh log in an empty (or new) directory. Use Open to
// recover and continue an existing one.
func Create(opts Options) (*Writer, error) {
	w, rec, err := Open(opts)
	if err != nil {
		return nil, err
	}
	if rec.SnapshotLSN != 0 || len(rec.Batches) > 0 || rec.LastLSN != 0 {
		w.Close()
		return nil, fmt.Errorf("wal: directory %s already holds a log (use Open)", opts.Dir)
	}
	return w, nil
}

// Open recovers the log in dir (scanning segments and snapshots, physically
// truncating a torn tail) and returns a Writer positioned to append after
// the durable prefix, together with the Recovery describing what survived.
// A fresh or empty directory yields an empty Recovery and a writer starting
// at LSN 0.
func Open(opts Options) (*Writer, *Recovery, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, err := scan(opts.Dir, true, false)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.Open(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		opts:     opts,
		dir:      dir,
		lsn:      rec.LastLSN,
		snapLSN:  rec.SnapshotLSN,
		lastSync: time.Now(), //lb:statefree fsync pacing baseline; sync schedule never changes logged bytes
		instr:    newWALInstruments(opts.Registry),
	}
	if rec.tailSegment != "" {
		// Continue appending to the recovered tail segment.
		f, err := os.OpenFile(rec.tailSegment, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			w.dir.Close()
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			w.dir.Close()
			return nil, nil, err
		}
		w.f = f
		w.segStart = rec.tailFirstLSN
		w.segSize = st.Size()
	} else if err := w.rotate(); err != nil {
		w.dir.Close()
		return nil, nil, err
	}
	return w, rec, nil
}

// rotate closes the current segment (if any) and starts a fresh one whose
// first record will be LSN lsn+1.
func (w *Writer) rotate() error {
	if w.f != nil {
		if err := w.flushAndSync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		if w.instr != nil {
			w.instr.rotations.Inc()
		}
	}
	first := w.lsn + 1
	path := filepath.Join(w.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(segMagic), segVer)
	hdr = binary.AppendVarint(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	// Make the new segment's directory entry durable so recovery after a
	// crash sees a contiguous segment chain.
	if err := w.syncDir(); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segStart = first
	w.segSize = int64(len(hdr))
	return nil
}

func (w *Writer) syncDir() error {
	if err := w.dir.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// beginRecord reserves the length prefix and type byte of a new frame at
// the end of out and returns the frame's starting offset. The caller
// appends the payload directly to out, then calls endRecord.
func (w *Writer) beginRecord(typ byte) int {
	start := len(w.out)
	w.out = append(w.out, 0, 0, 0, 0, typ)
	return start
}

// endRecord backfills the length prefix, appends the CRC (covering type
// byte and payload), accounts the record, and drains the buffer to the
// segment file once it passes flushThreshold.
func (w *Writer) endRecord(start int) error {
	binary.LittleEndian.PutUint32(w.out[start:], uint32(len(w.out)-start-5))
	crc := crc32.Update(0, crcTable, w.out[start+4:])
	w.out = binary.LittleEndian.AppendUint32(w.out, crc)
	n := int64(len(w.out) - start)
	w.lsn++
	w.segSize += n
	if w.instr != nil {
		w.instr.bytes.Add(n)
	}
	if len(w.out) >= flushThreshold {
		return w.flush()
	}
	return nil
}

// flush drains buffered frames to the segment file without fsyncing.
func (w *Writer) flush() error {
	if len(w.out) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.out); err != nil {
		return err
	}
	w.out = w.out[:0]
	return nil
}

// AppendEvent logs one applied runtime event. It buffers; durability comes
// from the next round marker per the sync policy.
//
//lb:hotpath
func (w *Writer) AppendEvent(ev *wire.Event) error {
	if w.closed {
		return fmt.Errorf("wal: writer closed")
	}
	start := w.beginRecord(RecordEvent)
	p, err := EncodeEvent(w.out, ev)
	if err != nil {
		w.out = w.out[:start]
		return err
	}
	w.out = p
	if err := w.endRecord(start); err != nil {
		return err
	}
	if w.instr != nil {
		w.instr.records.Inc()
	}
	return nil
}

// AppendRound logs a round marker — the commit record of the events since
// the previous marker — applies the sync policy, and rotates the segment
// once it exceeds SegmentBytes.
//
//lb:hotpath
func (w *Writer) AppendRound(m RoundMark) error {
	if w.closed {
		return fmt.Errorf("wal: writer closed")
	}
	start := w.beginRecord(RecordRound)
	w.out = EncodeRoundMark(w.out, m)
	if err := w.endRecord(start); err != nil {
		return err
	}
	if w.instr != nil {
		w.instr.marks.Inc()
	}
	switch w.opts.Sync {
	case SyncAlways:
		if err := w.flushAndSync(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.SyncEvery { //lb:statefree fsync interval pacing; decides when to sync, never what is written
			if err := w.flushAndSync(); err != nil {
				return err
			}
		}
	case SyncNever:
		if err := w.flush(); err != nil {
			return err
		}
	}
	if w.segSize >= w.opts.SegmentBytes {
		return w.rotate()
	}
	return nil
}

func (w *Writer) flushAndSync() error {
	if err := w.flush(); err != nil {
		return err
	}
	t0 := time.Now() //lb:statefree sync-latency metric start; feeds a histogram only
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.lastSync = time.Now() //lb:statefree fsync pacing baseline; sync schedule never changes logged bytes
	if w.instr != nil {
		w.instr.syncs.Inc()
		w.instr.syncTime.ObserveDuration(w.lastSync.Sub(t0))
	}
	return nil
}

// Sync flushes and fsyncs the current segment regardless of policy.
func (w *Writer) Sync() error {
	if w.closed {
		return fmt.Errorf("wal: writer closed")
	}
	return w.flushAndSync()
}

// LSN returns the log sequence number of the last appended record.
func (w *Writer) LSN() int64 { return w.lsn }

// WriteSnapshot makes a full-state snapshot durable: it syncs the log up
// to the current LSN, writes the snapshot to a temp file, fsyncs and
// renames it into place, then prunes snapshots beyond RetainSnapshots and
// every segment wholly covered by the oldest retained snapshot. state is
// the engine's opaque canonical encoding; round is recorded for reporting.
func (w *Writer) WriteSnapshot(round int64, state []byte) error {
	if w.closed {
		return fmt.Errorf("wal: writer closed")
	}
	// The log must be durable up to the snapshot's LSN: replay starts
	// *after* it, so everything before must survive a crash too.
	if err := w.flushAndSync(); err != nil {
		return err
	}
	lsn := w.lsn
	body := append([]byte(snapMagic), snapVer)
	body = binary.AppendVarint(body, lsn)
	body = binary.AppendVarint(body, round)
	body = binary.AppendUvarint(body, uint64(len(state)))
	body = append(body, state...)
	crc := crc32.Checksum(body[len(snapMagic):], crcTable)
	body = binary.LittleEndian.AppendUint32(body, crc)

	path := filepath.Join(w.opts.Dir, snapName(lsn))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := w.syncDir(); err != nil {
		return err
	}
	w.snapLSN = lsn
	if w.instr != nil {
		w.instr.snapshots.Inc()
		w.instr.snapBytes.SetInt(int64(len(state)))
	}
	return w.prune()
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// prune deletes snapshots beyond RetainSnapshots (newest kept) and every
// segment whose records are all covered by the oldest retained snapshot.
// The active segment is never deleted.
func (w *Writer) prune() error {
	snaps, segs, err := listFiles(w.opts.Dir)
	if err != nil {
		return err
	}
	if len(snaps) > w.opts.RetainSnapshots {
		for _, s := range snaps[:len(snaps)-w.opts.RetainSnapshots] {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
		snaps = snaps[len(snaps)-w.opts.RetainSnapshots:]
	}
	if len(snaps) == 0 {
		return nil
	}
	cover := snaps[0].lsn
	// A segment is removable when the *next* segment starts at or below
	// cover+1, i.e. every record in it has LSN <= cover.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].path == filepath.Join(w.opts.Dir, segName(w.segStart)) {
			break
		}
		if segs[i+1].lsn <= cover+1 {
			if err := os.Remove(segs[i].path); err != nil {
				return err
			}
		} else {
			break
		}
	}
	return w.syncDir()
}

// Close flushes, fsyncs and closes the log.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if w.f != nil {
		if err := w.flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := w.dir.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
