package wal

import (
	"os"
	"reflect"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the record framing and the
// payload codecs — the exact path recovery walks over a possibly-corrupt
// segment. Invariants: no panics, no over-read past the reported record
// size, and anything that decodes re-encodes to a value that decodes
// identically (decode∘encode is the identity on decoded values, even when
// the input used a non-canonical varint spelling).
func FuzzWALDecode(f *testing.F) {
	// Seed with every valid record shape plus classic corruptions.
	for _, ev := range sampleEvents() {
		p, err := EncodeEvent(nil, &ev)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(AppendRecord(nil, RecordEvent, p))
	}
	mark := EncodeRoundMark(nil, RoundMark{Round: 12, Real: 900, Total: 910, Created: 10, Wmax: 5})
	rec := AppendRecord(nil, RecordRound, mark)
	f.Add(rec)
	f.Add(rec[:len(rec)-2]) // torn tail
	flipped := append([]byte(nil), rec...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped) // bad CRC
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})  // hostile length prefix
	f.Add(AppendRecord(nil, 7, []byte{1})) // unknown record type

	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, size, err := DecodeRecord(b)
		if err != nil {
			return
		}
		// 4-byte length + type byte + 4-byte CRC is the minimum frame.
		if size < 9 || size > len(b) {
			t.Fatalf("record size %d out of range (input %d)", size, len(b))
		}
		switch typ {
		case RecordEvent:
			ev, err := DecodeEvent(payload)
			if err != nil {
				return
			}
			enc, err := EncodeEvent(nil, &ev)
			if err != nil {
				t.Fatalf("decoded event does not re-encode: %+v: %v", ev, err)
			}
			ev2, err := DecodeEvent(enc)
			if err != nil {
				t.Fatalf("re-encoded event does not decode: %v", err)
			}
			if !reflect.DeepEqual(ev, ev2) {
				t.Fatalf("decode(encode(x)) != x:\n x  %+v\n x' %+v", ev, ev2)
			}
		case RecordRound:
			m, err := DecodeRoundMark(payload)
			if err != nil {
				return
			}
			m2, err := DecodeRoundMark(EncodeRoundMark(nil, m))
			if err != nil || m2 != m {
				t.Fatalf("round mark round trip: %+v vs %+v (%v)", m, m2, err)
			}
		}
	})
}

// FuzzWALScan drives the full multi-record segment scanner over mutated
// segment files: recovery must either succeed (possibly truncating to a
// durable prefix) or fail with an error — never panic, and never report
// batches beyond what a round marker committed.
func FuzzWALScan(f *testing.F) {
	var buf []byte
	for _, ev := range sampleEvents() {
		p, _ := EncodeEvent(nil, &ev)
		buf = AppendRecord(buf, RecordEvent, p)
	}
	buf = AppendRecord(buf, RecordRound, EncodeRoundMark(nil, RoundMark{Round: 1, Real: 3, Total: 3, Wmax: 2}))
	f.Add(buf)
	f.Add(buf[:len(buf)/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		// A real header followed by arbitrary bytes.
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, segs, err := listFiles(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("listFiles: %v (%d)", err, len(segs))
		}
		fh, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(body)
		fh.Close()

		rec, err := Recover(dir)
		if err != nil {
			return
		}
		for i := range rec.Batches {
			if rec.Batches[i].Mark.Round < 0 {
				t.Fatalf("recovered batch with negative round: %+v", rec.Batches[i].Mark)
			}
		}
	})
}
