package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// Batch is one committed step of the log: the events applied between two
// round markers (possibly none) and the marker that committed them.
type Batch struct {
	Events []wire.Event
	Mark   RoundMark
}

// Corruption describes a CRC or framing failure at the tail of the log
// that recovery resolved by falling back to the durable prefix. It is
// reported, never silent.
type Corruption struct {
	File   string
	Offset int64
	Reason string
}

func (c *Corruption) String() string {
	return fmt.Sprintf("%s@%d: %s", c.File, c.Offset, c.Reason)
}

// Recovery is the result of scanning a log directory: the newest valid
// snapshot and the committed batches after it. Trailing event records
// without a closing round marker (a crash mid-step) are not replayed;
// TailEvents counts them.
type Recovery struct {
	// SnapshotLSN / SnapshotRound / Snapshot describe the chosen snapshot;
	// Snapshot is nil when the directory holds no log yet.
	SnapshotLSN   int64
	SnapshotRound int64
	Snapshot      []byte

	// Batches are the committed steps after the snapshot, in order.
	Batches []Batch

	// LastLSN is the LSN of the last committed record; LastRound the round
	// of the last committed marker (SnapshotRound when no batch follows).
	LastLSN   int64
	LastRound int64

	// TailEvents counts uncommitted trailing event records discarded;
	// TruncatedBytes how many tail bytes were (or, read-only, would be)
	// dropped; Corruption is non-nil when the tail ended in a CRC/framing
	// failure rather than a clean cut.
	TailEvents     int
	TruncatedBytes int64
	Corruption     *Corruption

	// SkippedSnapshots names snapshot files that failed validation and
	// were ignored in favor of an older one.
	SkippedSnapshots []string

	tailSegment  string
	tailFirstLSN int64
}

// HasState reports whether the directory holds a recoverable log.
func (r *Recovery) HasState() bool { return r.Snapshot != nil }

// Recover scans dir read-only: nothing is truncated or deleted, so it is
// safe against a live writer's directory only if that writer is paused.
// Use Open to recover and continue appending.
func Recover(dir string) (*Recovery, error) {
	return scan(dir, false, false)
}

// RecoverOldest is Recover but replays from the oldest retained snapshot
// instead of the newest — the longest reproducible trace the directory
// still holds (cmd/lbreplay's default).
func RecoverOldest(dir string) (*Recovery, error) {
	return scan(dir, false, true)
}

type fileEntry struct {
	path string
	lsn  int64
}

func listFiles(dir string) (snaps, segs []fileEntry, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			lsn, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("wal: malformed segment name %s", name)
			}
			segs = append(segs, fileEntry{path: filepath.Join(dir, name), lsn: lsn})
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			lsn, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("wal: malformed snapshot name %s", name)
			}
			snaps = append(snaps, fileEntry{path: filepath.Join(dir, name), lsn: lsn})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	sort.Slice(segs, func(i, j int) bool { return segs[i].lsn < segs[j].lsn })
	return snaps, segs, nil
}

// readSnapshot validates and decodes one snapshot file.
func readSnapshot(path string) (lsn, round int64, state []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(raw) < len(snapMagic)+1+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("%w: %s: bad snapshot magic", ErrCorrupt, path)
	}
	body, crcB := raw[len(snapMagic):len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(crcB) {
		return 0, 0, nil, fmt.Errorf("%w: %s: snapshot crc mismatch", ErrCorrupt, path)
	}
	if body[0] != snapVer {
		return 0, 0, nil, fmt.Errorf("%w: %s: unsupported snapshot version %d", ErrCorrupt, path, body[0])
	}
	d := &decoder{b: body[1:]}
	lsn = d.varint()
	round = d.varint()
	n := d.count(d.uvarint())
	if d.err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, d.err)
	}
	if len(d.b) != n {
		return 0, 0, nil, fmt.Errorf("%w: %s: snapshot state length %d != declared %d", ErrCorrupt, path, len(d.b), n)
	}
	return lsn, round, d.b, nil
}

// segHeader parses a segment file header, returning the first record LSN
// and the header length.
func segHeader(raw []byte) (firstLSN int64, hdrLen int, err error) {
	if len(raw) < len(segMagic)+1 || string(raw[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if raw[len(segMagic)] != segVer {
		return 0, 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, raw[len(segMagic)])
	}
	v, n := binary.Varint(raw[len(segMagic)+1:])
	if n <= 0 || v < 1 {
		return 0, 0, fmt.Errorf("%w: bad segment header LSN", ErrCorrupt)
	}
	return v, len(segMagic) + 1 + n, nil
}

// errTipBehindSnapshot reports that the durable tip of the segment chain
// ends before the chosen snapshot's LSN — the log was cut (externally)
// behind a snapshot that claims to cover more. Recovery retries with the
// next older snapshot.
var errTipBehindSnapshot = errors.New("log ends before snapshot LSN")

// scan walks the directory: it picks a snapshot (newest valid, or oldest
// when preferOldest), verifies the segment chain is contiguous and covers
// everything after the snapshot, decodes committed batches, and resolves
// the tail. With truncate set, the torn/uncommitted tail is physically cut
// back to the last committed record so a writer can continue appending.
//
// A snapshot that fails validation — or whose LSN the durable chain no
// longer reaches — is skipped in favor of the next older one (reported via
// SkippedSnapshots), so a damaged newest snapshot never takes down a
// recovery an older baseline can still carry.
//
// Corruption at the tail of the LAST segment falls back to the durable
// prefix (reported via Recovery.Corruption); corruption anywhere else is a
// hard error naming the file and byte offset — recovery never silently
// diverges.
func scan(dir string, truncate, preferOldest bool) (*Recovery, error) {
	snaps, segs, err := listFiles(dir)
	if err != nil {
		return nil, err
	}

	order := make([]fileEntry, len(snaps))
	copy(order, snaps)
	if !preferOldest {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	var skipped []string
	idx := 0
	for {
		rec := &Recovery{}
		for ; idx < len(order); idx++ {
			s := order[idx]
			lsn, round, state, serr := readSnapshot(s.path)
			if serr != nil {
				skipped = append(skipped, serr.Error())
				continue
			}
			if lsn != s.lsn {
				skipped = append(skipped,
					fmt.Sprintf("%s: embedded LSN %d != filename LSN %d", s.path, lsn, s.lsn))
				continue
			}
			rec.SnapshotLSN, rec.SnapshotRound, rec.Snapshot = lsn, round, state
			idx++
			break
		}
		rec.SkippedSnapshots = skipped

		if len(segs) == 0 {
			if rec.HasState() || len(snaps) > 0 {
				return nil, fmt.Errorf("wal: %s holds snapshots but no segments", dir)
			}
			return rec, nil
		}
		if len(snaps) > 0 && !rec.HasState() {
			return nil, fmt.Errorf("wal: %s: no valid snapshot (%s)", dir, strings.Join(skipped, "; "))
		}

		err := scanSegments(rec, truncate, segs)
		if errors.Is(err, errTipBehindSnapshot) && idx < len(order) {
			// Truncation side effects (tail cut, headerless-tail removal)
			// are snapshot-independent, so retrying after them is safe.
			skipped = append(skipped, fmt.Sprintf("snap-%016x.snap: %v", rec.SnapshotLSN, err))
			continue
		}
		if err != nil {
			return nil, err
		}
		return rec, nil
	}
}

// scanSegments decodes the segment chain into rec, whose snapshot fields
// must already be set.
func scanSegments(rec *Recovery, truncate bool, segs []fileEntry) error {
	rec.LastLSN = rec.SnapshotLSN
	rec.LastRound = rec.SnapshotRound

	// Drop segments wholly covered by the snapshot (their batches are
	// baked into the state already); the remaining chain must start at or
	// before SnapshotLSN+1 and be contiguous.
	start := 0
	for start+1 < len(segs) && segs[start+1].lsn <= rec.SnapshotLSN+1 {
		start++
	}
	segs = segs[start:]
	if segs[0].lsn > rec.SnapshotLSN+1 {
		return fmt.Errorf("wal: gap between snapshot LSN %d and first segment %s (first LSN %d)",
			rec.SnapshotLSN, segs[0].path, segs[0].lsn)
	}

	lsn := segs[0].lsn - 1
	var pending []wire.Event
	for si, seg := range segs {
		last := si == len(segs)-1
		raw, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			return rerr
		}
		// commitEnd/commitLSN track the byte/LSN position after the last
		// committed (round-marker) record in this segment, the truncation
		// target when the tail must be cut.
		tail := func(off int64, reason string, hard bool) error {
			if hard || !last {
				return fmt.Errorf("wal: %s at byte %d: %s", seg.path, off, reason)
			}
			if reason != "clean end of log" {
				rec.Corruption = &Corruption{File: seg.path, Offset: off, Reason: reason}
			}
			return nil
		}
		firstLSN, hdrLen, herr := segHeader(raw)
		if herr != nil {
			if !last {
				return fmt.Errorf("wal: %s at byte 0: %v (zero-length or headerless non-tail segment)", seg.path, herr)
			}
			// A tail segment that never got a full header (crash during
			// rotation) holds no records; drop it entirely.
			rec.Corruption = &Corruption{File: seg.path, Offset: 0, Reason: herr.Error()}
			rec.TruncatedBytes += int64(len(raw))
			if truncate {
				if err := os.Remove(seg.path); err != nil {
					return err
				}
			}
			break
		}
		if firstLSN != seg.lsn || firstLSN != lsn+1 {
			return fmt.Errorf("wal: %s: segment header LSN %d breaks chain (want %d)", seg.path, firstLSN, lsn+1)
		}
		commitEnd := int64(hdrLen)
		commitLSN := lsn
		off := int64(hdrLen)
		for off < int64(len(raw)) {
			typ, payload, size, derr := DecodeRecord(raw[off:])
			if derr != nil {
				reason := derr.Error()
				if errors.Is(derr, errShort) {
					reason = fmt.Sprintf("torn record (%d trailing bytes)", int64(len(raw))-off)
				}
				if terr := tail(off, reason, false); terr != nil {
					return terr
				}
				break
			}
			lsn++
			switch typ {
			case RecordEvent:
				if lsn > rec.SnapshotLSN {
					ev, eerr := DecodeEvent(payload)
					if eerr != nil {
						lsn--
						if terr := tail(off, eerr.Error(), false); terr != nil {
							return terr
						}
						off = int64(len(raw)) // stop this segment
						continue
					}
					pending = append(pending, ev)
				}
			case RecordRound:
				m, merr := DecodeRoundMark(payload)
				if merr != nil {
					lsn--
					if terr := tail(off, merr.Error(), false); terr != nil {
						return terr
					}
					off = int64(len(raw))
					continue
				}
				if lsn > rec.SnapshotLSN {
					rec.Batches = append(rec.Batches, Batch{Events: pending, Mark: m})
					pending = nil
					rec.LastRound = m.Round
				}
				commitEnd = off + int64(size)
				commitLSN = lsn
			}
			if off != int64(len(raw)) {
				off += int64(size)
			}
		}
		if rec.Corruption != nil || off > int64(len(raw)) || commitLSN < lsn || off < int64(len(raw)) {
			// The segment did not end cleanly at a committed record: cut
			// back to the last commit point. Uncommitted events (pending)
			// are discarded.
			rec.TailEvents = len(pending)
			pending = nil
			rec.TruncatedBytes += int64(len(raw)) - commitEnd
			lsn = commitLSN
			if truncate && int64(len(raw)) > commitEnd {
				if err := os.Truncate(seg.path, commitEnd); err != nil {
					return err
				}
			}
			rec.tailSegment = seg.path
			rec.tailFirstLSN = firstLSN
			if !last {
				return fmt.Errorf("wal: %s ended mid-batch but later segments exist", seg.path)
			}
			break
		}
		rec.tailSegment = seg.path
		rec.tailFirstLSN = firstLSN
	}
	rec.LastLSN = lsn
	if rec.LastLSN < rec.SnapshotLSN {
		return fmt.Errorf("wal: %w: durable tip LSN %d, snapshot LSN %d", errTipBehindSnapshot, rec.LastLSN, rec.SnapshotLSN)
	}
	return nil
}
