package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/workload"
)

func setup(t *testing.T, n int) (*graph.Graph, load.Speeds, continuous.Alphas, load.Vector) {
	t.Helper()
	g, err := graph.Torus(n, n)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, a, x0
}

func TestNewBaseValidation(t *testing.T) {
	g, s, a, x0 := setup(t, 4)
	if _, err := NewRoundDownDiffusion(nil, s, a, x0); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := NewRoundDownDiffusion(g, load.Speeds{1}, a, x0); err == nil {
		t.Error("short speeds should error")
	}
	if _, err := NewRoundDownDiffusion(g, s, a, load.Vector{1}); err == nil {
		t.Error("short load should error")
	}
	if _, err := NewRoundDownDiffusion(g, s, a[:1], x0); err == nil {
		t.Error("short alphas should error")
	}
	neg := x0.Clone()
	neg[1] = -1
	if _, err := NewRoundDownDiffusion(g, s, a, neg); err == nil {
		t.Error("negative initial load should error")
	}
}

func TestRoundDownDiffusionBehaviour(t *testing.T) {
	g, s, a, x0 := setup(t, 5)
	p, err := NewRoundDownDiffusion(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "round-down(fos)" {
		t.Errorf("Name = %q", p.Name())
	}
	total := x0.Total()
	for round := 0; round < 200; round++ {
		p.Step()
		x := p.Load()
		if x.Total() != total {
			t.Fatalf("round %d: load not conserved", round)
		}
		if x.HasNegative() {
			t.Fatalf("round %d: round-down produced negative load", round)
		}
	}
	if p.WentNegative() {
		t.Error("WentNegative should be false for round-down")
	}
	if p.DummiesCreated() != 0 {
		t.Error("baselines have no dummy source")
	}
	if p.Round() != 200 {
		t.Errorf("Round = %d", p.Round())
	}
	// Round-down reduces the point-mass discrepancy substantially.
	mm, err := load.MaxMinDiscrepancy(p.Load(), s)
	if err != nil {
		t.Fatal(err)
	}
	if mm > 100 {
		t.Errorf("round-down barely balanced: max-min %v", mm)
	}
}

func TestDeterministicAccumBoundedError(t *testing.T) {
	g, s, a, x0 := setup(t, 5)
	p, err := NewDeterministicAccum(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	total := x0.Total()
	for round := 0; round < 300; round++ {
		p.Step()
		if p.Load().Total() != total {
			t.Fatalf("round %d: load not conserved", round)
		}
	}
	// The scheme's defining property: accumulated per-edge error stays
	// bounded by a constant (1 is the tight bound for this rule).
	if maxErr := p.MaxAccumError(); maxErr > 1+1e-9 {
		t.Errorf("max accumulated error %v > 1", maxErr)
	}
	if p.Name() != "deterministic-accum(fos)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestRandomizedRoundingConserves(t *testing.T) {
	g, s, a, x0 := setup(t, 5)
	p, err := NewRandomizedRounding(g, s, a, x0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	total := x0.Total()
	for round := 0; round < 200; round++ {
		p.Step()
		if p.Load().Total() != total {
			t.Fatalf("round %d: load not conserved", round)
		}
	}
	if p.Name() != "randomized-rounding(fos)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestExcessTokenNeverNegative(t *testing.T) {
	g, s, a, x0 := setup(t, 5)
	p, err := NewExcessToken(g, s, a, x0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	total := x0.Total()
	for round := 0; round < 300; round++ {
		p.Step()
		x := p.Load()
		if x.Total() != total {
			t.Fatalf("round %d: load not conserved (%d != %d)", round, x.Total(), total)
		}
		if x.HasNegative() {
			t.Fatalf("round %d: excess-token produced negative load", round)
		}
	}
	if p.WentNegative() {
		t.Error("excess-token should never set WentNegative")
	}
	mm, err := load.MaxMinDiscrepancy(p.Load(), s)
	if err != nil {
		t.Fatal(err)
	}
	if mm > 50 {
		t.Errorf("excess-token barely balanced: max-min %v", mm)
	}
}

func TestExcessTokenDeterministicPerSeed(t *testing.T) {
	g, s, a, x0 := setup(t, 4)
	run := func(seed int64) load.Vector {
		p, err := NewExcessToken(g, s, a, x0, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 50; round++ {
			p.Step()
		}
		return p.Load()
	}
	a1, a2 := run(3), run(3)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must reproduce excess-token run")
		}
	}
}

func TestMatchingBaselines(t *testing.T) {
	g, err := graph.Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 32*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	random := matching.NewRandom(g, 4)
	rng := rand.New(rand.NewSource(5))

	builds := map[string]func(matching.Schedule) (interface {
		Step()
		Load() load.Vector
		Name() string
	}, error){
		"round-down": func(sc matching.Schedule) (interface {
			Step()
			Load() load.Vector
			Name() string
		}, error) {
			return NewRoundDownMatching(g, s, sc, x0)
		},
		"randomized": func(sc matching.Schedule) (interface {
			Step()
			Load() load.Vector
			Name() string
		}, error) {
			return NewRandomizedMatching(g, s, sc, x0, rng)
		},
	}
	for bname, build := range builds {
		for sname, sc := range map[string]matching.Schedule{"periodic": periodic, "random": random} {
			p, err := build(sc)
			if err != nil {
				t.Fatal(err)
			}
			total := x0.Total()
			for round := 0; round < 400; round++ {
				p.Step()
				x := p.Load()
				if x.Total() != total {
					t.Fatalf("%s/%s round %d: load not conserved", bname, sname, round)
				}
				if x.HasNegative() {
					t.Fatalf("%s/%s round %d: negative load", bname, sname, round)
				}
			}
			mm, err := load.MaxMinDiscrepancy(p.Load(), s)
			if err != nil {
				t.Fatal(err)
			}
			if mm > 100 {
				t.Errorf("%s/%s barely balanced: max-min %v", bname, sname, mm)
			}
		}
	}
}

func TestMatchingBaselineValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRoundDownMatching(g, s, nil, load.Vector{1, 1}); err == nil {
		t.Error("nil schedule should error")
	}
	if _, err := NewRoundDownMatching(g, s, sched, load.Vector{1}); err == nil {
		t.Error("short load should error")
	}
	if _, err := NewRandomizedMatching(g, s, sched, load.Vector{1, 1}, nil); err == nil {
		t.Error("nil rng should error")
	}
	if _, err := NewRoundDownMatching(g, s, sched, load.Vector{-1, 1}); err == nil {
		t.Error("negative load should error")
	}
}

func TestMatchingEqualizesIntegerPair(t *testing.T) {
	// Uniform speeds, matched pair (10, 4): z = 3, round-down sends 3.
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewRoundDownMatching(g, s, sched, load.Vector{10, 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	x := p.Load()
	if x[0] != 7 || x[1] != 7 {
		t.Errorf("after exchange: %v, want [7 7]", x)
	}
}

// TestBaselinesConservationProperty: every baseline conserves total load on
// random instances and round-down/excess/matching stay non-negative.
func TestBaselinesConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(12, 0.3, rng)
		if err != nil || g.M() == 0 {
			return err == nil
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		a, err := continuous.DefaultAlphas(g, s)
		if err != nil {
			return false
		}
		x0 := workload.UniformRandom(g.N(), 400, rng)
		total := x0.Total()
		sched := matching.NewRandom(g, seed)

		rd, err := NewRoundDownDiffusion(g, s, a, x0)
		if err != nil {
			return false
		}
		da, err := NewDeterministicAccum(g, s, a, x0)
		if err != nil {
			return false
		}
		rr, err := NewRandomizedRounding(g, s, a, x0, rng)
		if err != nil {
			return false
		}
		ex, err := NewExcessToken(g, s, a, x0, rng)
		if err != nil {
			return false
		}
		mrd, err := NewRoundDownMatching(g, s, sched, x0)
		if err != nil {
			return false
		}
		mrr, err := NewRandomizedMatching(g, s, sched, x0, rng)
		if err != nil {
			return false
		}
		steppers := []interface {
			Step()
			Load() load.Vector
		}{rd, da, rr, ex, mrd, mrr}
		for round := 0; round < 25; round++ {
			for _, p := range steppers {
				p.Step()
				if p.Load().Total() != total {
					return false
				}
			}
			if rd.Load().HasNegative() || ex.Load().HasNegative() ||
				mrd.Load().HasNegative() || mrr.Load().HasNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
