package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/load"
)

func TestRotorExcessConservesAndStaysNonNegative(t *testing.T) {
	g, s, a, x0 := setup(t, 5)
	p, err := NewRotorExcess(g, s, a, x0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "rotor-excess(fos)" {
		t.Errorf("Name = %q", p.Name())
	}
	total := x0.Total()
	for round := 0; round < 300; round++ {
		p.Step()
		x := p.Load()
		if x.Total() != total {
			t.Fatalf("round %d: load not conserved", round)
		}
		if x.HasNegative() {
			t.Fatalf("round %d: negative load", round)
		}
	}
	mm, err := load.MaxMinDiscrepancy(p.Load(), s)
	if err != nil {
		t.Fatal(err)
	}
	if mm > 50 {
		t.Errorf("rotor-excess barely balanced: max-min %v", mm)
	}
}

func TestRotorExcessIsDeterministicGivenRotors(t *testing.T) {
	g, s, a, x0 := setup(t, 4)
	run := func() load.Vector {
		p, err := NewRotorExcess(g, s, a, x0, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 60; round++ {
			p.Step()
		}
		return p.Load()
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same rotor seed must reproduce the run exactly")
		}
	}
}

func TestRotorAdvances(t *testing.T) {
	g, s, a, x0 := setup(t, 4)
	p, err := NewRotorExcess(g, s, a, x0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	before := p.Rotors()
	for round := 0; round < 10; round++ {
		p.Step()
	}
	after := p.Rotors()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("rotors should advance when excess tokens are distributed")
	}
}
