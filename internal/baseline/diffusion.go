package baseline

import (
	"math"
	"math/rand"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// netFlow returns the signed continuous FOS net flow over edge e in the
// canonical U->V direction: α_e·(x_u/s_u − x_v/s_v). This is the y_e that
// the Rabani–Sinclair–Wanka framework rounds: in FOS the two gross streams
// cancel to this net amount, and it is the quantity whose round-down carries
// the Ω(d·diam) lower bound.
func (b *base) netFlow(e int) (u, v int, z float64) {
	u, v = b.g.EdgeEndpoints(e)
	z = b.alpha[e] * (float64(b.x[u])/float64(b.s[u]) - float64(b.x[v])/float64(b.s[v]))
	return u, v, z
}

// RoundDownDiffusion is the classic round-down discrete FOS of Rabani et
// al.: every round each edge computes the continuous net flow from the
// current discrete load and transfers the floor of its magnitude toward the
// less-loaded endpoint. The scheme never creates negative load, and its
// final discrepancy is Ω(d·diam(G)) in the worst case (gradient fixed
// points with per-edge makespan difference just below 1/α survive).
type RoundDownDiffusion struct {
	*base
}

// NewRoundDownDiffusion builds the round-down FOS baseline.
func NewRoundDownDiffusion(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector) (*RoundDownDiffusion, error) {
	b, err := newBase(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	return &RoundDownDiffusion{base: b}, nil
}

// Name identifies the scheme.
func (p *RoundDownDiffusion) Name() string { return "round-down(fos)" }

// Step executes one synchronous round.
func (p *RoundDownDiffusion) Step() {
	for e := 0; e < p.g.M(); e++ {
		u, v, z := p.netFlow(e)
		var amt int64
		if z >= 0 {
			amt = int64(z)
		} else {
			amt = -int64(-z)
		}
		p.delta[u] -= amt
		p.delta[v] += amt
	}
	p.applyDelta()
}

// DeterministicAccum is the deterministic bounded-error rounding scheme of
// Friedrich, Gairing and Sauerwald: each edge accumulates the rounding error
// of its net flow and each round sends the integer (floor or ceil of the
// continuous net flow) that keeps the accumulated error smallest in absolute
// value. The scheme may create negative load.
type DeterministicAccum struct {
	*base
	// accum[e] is the accumulated error of edge e in the canonical
	// direction.
	accum []float64
}

// NewDeterministicAccum builds the deterministic accumulated-error baseline.
func NewDeterministicAccum(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector) (*DeterministicAccum, error) {
	b, err := newBase(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	return &DeterministicAccum{base: b, accum: make([]float64, g.M())}, nil
}

// Name identifies the scheme.
func (p *DeterministicAccum) Name() string { return "deterministic-accum(fos)" }

// MaxAccumError returns the largest |accumulated rounding error| over all
// edges — the quantity the bounded-error property of [26] bounds by a
// constant.
func (p *DeterministicAccum) MaxAccumError() float64 {
	max := 0.0
	for _, a := range p.accum {
		if v := math.Abs(a); v > max {
			max = v
		}
	}
	return max
}

// Step executes one synchronous round.
func (p *DeterministicAccum) Step() {
	for e := 0; e < p.g.M(); e++ {
		u, v, z := p.netFlow(e)
		lo := math.Floor(z)
		hi := math.Ceil(z)
		k := lo
		if math.Abs(p.accum[e]+z-hi) < math.Abs(p.accum[e]+z-lo) {
			k = hi
		}
		amt := int64(k)
		p.accum[e] += z - k
		p.delta[u] -= amt
		p.delta[v] += amt
	}
	p.applyDelta()
}

// RandomizedRounding is the per-edge randomized rounding FOS of [26] (first
// suggested in [39]): the continuous net flow z is sent as ceil(z) with
// probability equal to its fractional part and floor(z) otherwise, so the
// expected transfer is exactly z. The scheme may create negative load.
type RandomizedRounding struct {
	*base
	rng *rand.Rand
}

// NewRandomizedRounding builds the randomized rounding FOS baseline.
func NewRandomizedRounding(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector, rng *rand.Rand) (*RandomizedRounding, error) {
	b, err := newBase(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	return &RandomizedRounding{base: b, rng: rng}, nil
}

// Name identifies the scheme.
func (p *RandomizedRounding) Name() string { return "randomized-rounding(fos)" }

// Step executes one synchronous round.
func (p *RandomizedRounding) Step() {
	for e := 0; e < p.g.M(); e++ {
		u, v, z := p.netFlow(e)
		lo := math.Floor(z)
		amt := int64(lo)
		if frac := z - lo; frac > 0 && p.rng.Float64() < frac {
			amt++
		}
		p.delta[u] -= amt
		p.delta[v] += amt
	}
	p.applyDelta()
}

// ExcessToken is the randomized diffusion of Berenbrink et al. [9]: node i
// sends floor(y_{i,j}) of its own gross stream y_{i,j} = (α_e/s_i)·x_i over
// every edge and then forwards its excess tokens — the integer
// Σ_{j∈N(i)∪{i}} (y_{i,j} − floor(y_{i,j})) — to distinct neighbours chosen
// uniformly at random without replacement. Because the total sent never
// exceeds x_i, the scheme cannot create negative load (the distinguishing
// feature of [9] among the randomized schemes).
type ExcessToken struct {
	*base
	rng  *rand.Rand
	perm []int
}

// NewExcessToken builds the excess-token randomized diffusion baseline.
func NewExcessToken(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector, rng *rand.Rand) (*ExcessToken, error) {
	b, err := newBase(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	return &ExcessToken{base: b, rng: rng, perm: make([]int, g.MaxDegree())}, nil
}

// Name identifies the scheme.
func (p *ExcessToken) Name() string { return "excess-token(fos)" }

// Step executes one synchronous round.
func (p *ExcessToken) Step() {
	for i := 0; i < p.g.N(); i++ {
		if p.x[i] <= 0 {
			continue
		}
		neigh := p.g.Neighbors(i)
		var floorSum int64
		ySum := 0.0
		for _, a := range neigh {
			y := p.rate(a.Edge, i) * float64(p.x[i])
			amt := int64(y)
			floorSum += amt
			ySum += y
			p.delta[i] -= amt
			p.delta[a.To] += amt
		}
		selfY := float64(p.x[i]) - ySum
		// excess = Σ fractional parts over N(i) ∪ {i}; an exact integer in
		// exact arithmetic, so round the float64 expression.
		excess := p.x[i] - floorSum - int64(math.Floor(selfY+1e-9))
		if excess <= 0 {
			continue
		}
		if int(excess) > len(neigh) {
			excess = int64(len(neigh))
		}
		perm := p.perm[:len(neigh)]
		for k := range perm {
			perm[k] = k
		}
		p.rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for k := int64(0); k < excess; k++ {
			to := neigh[perm[k]].To
			p.delta[i]--
			p.delta[to]++
		}
	}
	p.applyDelta()
}
