package baseline

import (
	"math"
	"math/rand"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// RotorExcess is the deterministic round-robin variant of the excess-token
// diffusion noted in the paper (Akbari and Berenbrink, "Parallel rotor
// walks..."): like ExcessToken, node i sends floor(y_{i,j}) over every edge,
// but the excess tokens are forwarded to neighbours in round-robin order
// starting from a per-node rotor pointer whose initial position is random.
// The rotor advances past every neighbour served, so consecutive rounds
// continue where the previous one stopped — the "parallel rotor walk"
// derandomization of [9]. Never creates negative load.
type RotorExcess struct {
	*base
	rotor []int
}

// NewRotorExcess builds the rotor (round-robin) excess-token baseline; rng
// only chooses the initial rotor positions.
func NewRotorExcess(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector, rng *rand.Rand) (*RotorExcess, error) {
	b, err := newBase(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	rotor := make([]int, g.N())
	for i := range rotor {
		if d := g.Degree(i); d > 0 {
			rotor[i] = rng.Intn(d)
		}
	}
	return &RotorExcess{base: b, rotor: rotor}, nil
}

// Name identifies the scheme.
func (p *RotorExcess) Name() string { return "rotor-excess(fos)" }

// Rotors returns a copy of the current rotor positions (for tests).
func (p *RotorExcess) Rotors() []int {
	out := make([]int, len(p.rotor))
	copy(out, p.rotor)
	return out
}

// Step executes one synchronous round.
func (p *RotorExcess) Step() {
	for i := 0; i < p.g.N(); i++ {
		if p.x[i] <= 0 {
			continue
		}
		neigh := p.g.Neighbors(i)
		if len(neigh) == 0 {
			continue
		}
		var floorSum int64
		ySum := 0.0
		for _, a := range neigh {
			y := p.rate(a.Edge, i) * float64(p.x[i])
			amt := int64(y)
			floorSum += amt
			ySum += y
			p.delta[i] -= amt
			p.delta[a.To] += amt
		}
		selfY := float64(p.x[i]) - ySum
		excess := p.x[i] - floorSum - int64(math.Floor(selfY+1e-9))
		if excess <= 0 {
			continue
		}
		if int(excess) > len(neigh) {
			excess = int64(len(neigh))
		}
		for k := int64(0); k < excess; k++ {
			to := neigh[p.rotor[i]].To
			p.rotor[i] = (p.rotor[i] + 1) % len(neigh)
			p.delta[i]--
			p.delta[to]++
		}
	}
	p.applyDelta()
}
