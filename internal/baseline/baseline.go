// Package baseline implements the prior discrete load balancing schemes the
// paper compares against in Tables 1 and 2. Unlike the paper's Algorithms 1
// and 2 (package core), these schemes do not imitate a separately simulated
// continuous run: every round they compute the continuous flow from their
// own current (integer) load and round it, following the framework of Rabani,
// Sinclair and Wanka.
//
//   - RoundDownDiffusion: y_{i,j} = floor((α_e/s_i)·x_i), the classic
//     round-down FOS of [37]/[34]. Final discrepancy grows with d·diam(G).
//   - DeterministicAccum: the bounded-error deterministic rounding of
//     Friedrich, Gairing and Sauerwald [26]; each directed edge tracks its
//     accumulated rounding error and picks floor or ceil to minimize it.
//   - RandomizedRounding: the per-edge randomized rounding FOS of [26]
//     (also [39]); rounds up with probability equal to the fractional part.
//   - ExcessToken: the randomized diffusion of Berenbrink, Cooper,
//     Friedetzky, Friedrich and Sauerwald [9]: floor everything, then send
//     the excess tokens to distinct random neighbours — never creates
//     negative load.
//   - RoundDownMatching / RandomizedMatching: the matching-model analogues
//     ([37] and Friedrich–Sauerwald [24]).
//
// DeterministicAccum and RandomizedRounding may drive nodes negative (the
// literature's "negative load"); this is tracked, and flow out of a
// non-positive node is suppressed, matching the usual simulation convention.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// base carries the state shared by the diffusion-model baselines.
type base struct {
	g     *graph.Graph
	s     load.Speeds
	alpha continuous.Alphas
	x     load.Vector
	delta []int64
	t     int
	neg   bool
}

func newBase(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector) (*base, error) {
	if g == nil {
		return nil, errors.New("baseline: nil graph")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("baseline: speeds length %d != n %d", len(s), g.N())
	}
	if err := continuous.ValidateAlphas(g, s, alpha); err != nil {
		return nil, err
	}
	if len(x0) != g.N() {
		return nil, fmt.Errorf("baseline: load length %d != n %d", len(x0), g.N())
	}
	for i, c := range x0 {
		if c < 0 {
			return nil, fmt.Errorf("baseline: node %d has negative load %d", i, c)
		}
	}
	return &base{
		g:     g,
		s:     s.Clone(),
		alpha: append(continuous.Alphas(nil), alpha...),
		x:     x0.Clone(),
		delta: make([]int64, g.N()),
	}, nil
}

// Graph returns the network.
func (b *base) Graph() *graph.Graph { return b.g }

// Speeds returns the node speeds.
func (b *base) Speeds() load.Speeds { return b.s }

// Round returns the index of the next round to execute.
func (b *base) Round() int { return b.t }

// Load returns a copy of the current load vector.
func (b *base) Load() load.Vector { return b.x.Clone() }

// DummiesCreated always reports 0: baselines have no infinite source.
func (b *base) DummiesCreated() int64 { return 0 }

// WentNegative reports whether any node ever held negative load.
func (b *base) WentNegative() bool { return b.neg }

// applyDelta commits one round's transfers and updates the negative-load
// flag.
func (b *base) applyDelta() {
	for i := range b.x {
		b.x[i] += b.delta[i]
		b.delta[i] = 0
		if b.x[i] < 0 {
			b.neg = true
		}
	}
	b.t++
}

// rate returns α_e/s_i, the continuous per-round sending rate of node i over
// edge e.
func (b *base) rate(e, i int) float64 { return b.alpha[e] / float64(b.s[i]) }
