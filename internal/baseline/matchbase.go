package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
)

// matchBase carries state shared by the matching-model baselines. Every
// round the matched pair (u,v) computes the continuous equalizing transfer
//
//	z = (s_v·x_u − s_u·x_v)/(s_u+s_v)
//
// from the node with the larger makespan, and rounds it. Since z < x_sender,
// neither rounding variant can create negative load.
type matchBase struct {
	g     *graph.Graph
	s     load.Speeds
	sched matching.Schedule
	x     load.Vector
	t     int
}

func newMatchBase(g *graph.Graph, s load.Speeds, sched matching.Schedule, x0 load.Vector) (*matchBase, error) {
	if g == nil {
		return nil, errors.New("baseline: nil graph")
	}
	if sched == nil {
		return nil, errors.New("baseline: nil matching schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("baseline: speeds length %d != n %d", len(s), g.N())
	}
	if len(x0) != g.N() {
		return nil, fmt.Errorf("baseline: load length %d != n %d", len(x0), g.N())
	}
	for i, c := range x0 {
		if c < 0 {
			return nil, fmt.Errorf("baseline: node %d has negative load %d", i, c)
		}
	}
	return &matchBase{g: g, s: s.Clone(), sched: sched, x: x0.Clone()}, nil
}

// Graph returns the network.
func (b *matchBase) Graph() *graph.Graph { return b.g }

// Speeds returns the node speeds.
func (b *matchBase) Speeds() load.Speeds { return b.s }

// Round returns the index of the next round to execute.
func (b *matchBase) Round() int { return b.t }

// Load returns a copy of the current load vector.
func (b *matchBase) Load() load.Vector { return b.x.Clone() }

// DummiesCreated always reports 0.
func (b *matchBase) DummiesCreated() int64 { return 0 }

// WentNegative always reports false: matching-model rounding cannot
// overdraw a node.
func (b *matchBase) WentNegative() bool { return false }

// equalizingFlow returns (sender, receiver, z) for matched edge e, where z
// is the continuous transfer that equalizes the pair's makespans. z may be
// zero.
func (b *matchBase) equalizingFlow(e int) (from, to int, z float64) {
	u, v := b.g.EdgeEndpoints(e)
	su, sv := float64(b.s[u]), float64(b.s[v])
	z = (sv*float64(b.x[u]) - su*float64(b.x[v])) / (su + sv)
	if z >= 0 {
		return u, v, z
	}
	return v, u, -z
}

// RoundDownMatching sends floor(z) over every matched edge.
type RoundDownMatching struct {
	*matchBase
}

// NewRoundDownMatching builds the round-down matching-model baseline.
func NewRoundDownMatching(g *graph.Graph, s load.Speeds, sched matching.Schedule, x0 load.Vector) (*RoundDownMatching, error) {
	b, err := newMatchBase(g, s, sched, x0)
	if err != nil {
		return nil, err
	}
	return &RoundDownMatching{matchBase: b}, nil
}

// Name identifies the scheme.
func (p *RoundDownMatching) Name() string {
	return "round-down(matching/" + p.sched.Name() + ")"
}

// Step executes one synchronous round.
func (p *RoundDownMatching) Step() {
	for _, e := range p.sched.MatchingAt(p.t) {
		from, to, z := p.equalizingFlow(e)
		amt := int64(z)
		p.x[from] -= amt
		p.x[to] += amt
	}
	p.t++
}

// RandomizedMatching is the randomized rounding dimension exchange of
// Friedrich and Sauerwald: send ceil(z) with probability equal to the
// fractional part of z, floor(z) otherwise.
type RandomizedMatching struct {
	*matchBase
	rng *rand.Rand
}

// NewRandomizedMatching builds the randomized-rounding matching baseline.
func NewRandomizedMatching(g *graph.Graph, s load.Speeds, sched matching.Schedule, x0 load.Vector, rng *rand.Rand) (*RandomizedMatching, error) {
	b, err := newMatchBase(g, s, sched, x0)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("baseline: nil rng")
	}
	return &RandomizedMatching{matchBase: b, rng: rng}, nil
}

// Name identifies the scheme.
func (p *RandomizedMatching) Name() string {
	return "randomized-rounding(matching/" + p.sched.Name() + ")"
}

// Step executes one synchronous round.
func (p *RandomizedMatching) Step() {
	for _, e := range p.sched.MatchingAt(p.t) {
		from, to, z := p.equalizingFlow(e)
		amt := int64(math.Floor(z))
		if frac := z - math.Floor(z); frac > 0 && p.rng.Float64() < frac {
			amt++
		}
		// Rounding up can at most reach x[from] since z < x[from].
		p.x[from] -= amt
		p.x[to] += amt
	}
	p.t++
}
