package cli

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/workload"
)

func TestParseGraph(t *testing.T) {
	tests := []struct {
		spec    string
		wantN   int
		wantErr bool
	}{
		{"hypercube:4", 16, false},
		{"torus:5", 25, false},
		{"cycle:9", 9, false},
		{"grid:3", 9, false},
		{"regular:16:3", 16, false},
		{"er:30", 30, false},
		{"complete:6", 6, false},
		{"star:7", 7, false},
		{"lollipop:4:3", 7, false},
		{"hypercube", 0, true},
		{"hypercube:x", 0, true},
		{"regular:16", 0, true},
		{"nope:3", 0, true},
		{"er:1", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			g, err := ParseGraph(tt.spec, 1)
			if tt.wantErr {
				if err == nil {
					t.Errorf("ParseGraph(%q) should error", tt.spec)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseGraph(%q): %v", tt.spec, err)
			}
			if g.N() != tt.wantN {
				t.Errorf("ParseGraph(%q).N() = %d, want %d", tt.spec, g.N(), tt.wantN)
			}
		})
	}
}

func TestBuildFactoryDrivers(t *testing.T) {
	g, err := ParseGraph("torus:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	for _, driver := range DriverNames() {
		factory, sched, err := BuildFactory(driver, g, s, 1)
		if err != nil {
			t.Fatalf("driver %q: %v", driver, err)
		}
		if factory == nil {
			t.Fatalf("driver %q: nil factory", driver)
		}
		isMatching := driver == "match-periodic" || driver == "match-random"
		if isMatching != (sched != nil) {
			t.Errorf("driver %q: schedule presence = %v", driver, sched != nil)
		}
		p, err := factory(make([]float64, g.N()))
		if err != nil {
			t.Fatalf("driver %q: factory failed: %v", driver, err)
		}
		p.Step()
	}
	if _, _, err := BuildFactory("nope", g, s, 1); err == nil {
		t.Error("unknown driver should error")
	}
}

func TestBuildSchemeAllNames(t *testing.T) {
	g, err := ParseGraph("torus:4", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 160, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames() {
		driver := "fos"
		if name == "match-round-down" || name == "match-rand-round" ||
			name == "match-alg1" || name == "match-alg2" {
			driver = "match-periodic"
		}
		factory, sched, err := BuildFactory(driver, g, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildScheme(name, g, s, sched, factory, x0, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("scheme %q: %v", name, err)
		}
		for round := 0; round < 5; round++ {
			p.Step()
		}
		if p.Load().Total() != 160+p.DummiesCreated() {
			t.Errorf("scheme %q: conservation violated", name)
		}
	}
	if _, err := BuildScheme("nope", g, s, nil, nil, x0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown scheme should error")
	}
	// Matching schemes without a schedule must error.
	factory, _, err := BuildFactory("fos", g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"match-round-down", "match-rand-round", "match-alg1", "match-alg2"} {
		if _, err := BuildScheme(name, g, s, nil, factory, x0, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("scheme %q without schedule should error", name)
		}
	}
}

func TestValidateChoice(t *testing.T) {
	tests := []struct {
		flag    string
		value   string
		allowed []string
		wantErr bool
	}{
		{"table", "1", TableNames(), false},
		{"table", "2", TableNames(), false},
		{"table", "3", TableNames(), false},
		{"table", "all", TableNames(), false},
		{"table", "4", TableNames(), true},
		{"table", "", TableNames(), true},
		{"table", "one", TableNames(), true},
		{"exp", "all", ExpNames(), false},
		{"exp", "f1", ExpNames(), false},
		{"exp", "f11", ExpNames(), false},
		{"exp", "f12", ExpNames(), true},
		{"exp", "F1", ExpNames(), true},
		{"exp", "bogus", ExpNames(), true},
	}
	for _, tt := range tests {
		t.Run(tt.flag+"="+tt.value, func(t *testing.T) {
			err := ValidateChoice(tt.flag, tt.value, tt.allowed)
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateChoice(%q, %q) error = %v, wantErr %v", tt.flag, tt.value, err, tt.wantErr)
			}
		})
	}
}

func TestValidateNumericFlags(t *testing.T) {
	tests := []struct {
		name     string
		value    int64
		positive bool
		wantErr  bool
	}{
		{"n", 256, true, false},
		{"n", 1, true, false},
		{"n", 0, true, true},
		{"n", -5, true, true},
		{"tokens", 0, false, false},
		{"tokens", 64, false, false},
		{"tokens", -1, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var err error
			if tt.positive {
				err = ValidatePositive(tt.name, tt.value)
			} else {
				err = ValidateNonNegative(tt.name, tt.value)
			}
			if (err != nil) != tt.wantErr {
				t.Errorf("validate %s=%d error = %v, wantErr %v", tt.name, tt.value, err, tt.wantErr)
			}
		})
	}
}

func TestValidateFloatFlags(t *testing.T) {
	if err := ValidatePositiveFloat("rate", 0.5); err != nil {
		t.Errorf("ValidatePositiveFloat(0.5) = %v", err)
	}
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := ValidatePositiveFloat("rate", v); err == nil {
			t.Errorf("ValidatePositiveFloat(%v) accepted", v)
		}
	}
	for _, v := range []float64{0, 0.5, 1e9} {
		if err := ValidateNonNegativeFloat("rate", v); err != nil {
			t.Errorf("ValidateNonNegativeFloat(%v) = %v", v, err)
		}
	}
	for _, v := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if err := ValidateNonNegativeFloat("rate", v); err == nil {
			t.Errorf("ValidateNonNegativeFloat(%v) accepted", v)
		}
	}
}

func TestValidatePositiveDuration(t *testing.T) {
	if err := ValidatePositiveDuration("period", time.Second); err != nil {
		t.Errorf("ValidatePositiveDuration(1s) = %v", err)
	}
	for _, v := range []time.Duration{0, -time.Second} {
		if err := ValidatePositiveDuration("period", v); err == nil {
			t.Errorf("ValidatePositiveDuration(%v) accepted", v)
		}
	}
}
