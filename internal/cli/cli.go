// Package cli holds the specification parsers shared by the command-line
// tools: graph specs such as "hypercube:8" or "regular:256:4", continuous
// drivers ("fos", "sos", "match-periodic", "match-random"), and discrete
// scheme names. Keeping them out of package main makes them testable.
package cli

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/sim"
	"repro/internal/spectral"
)

// ParseGraph builds a graph from a colon-separated spec:
// hypercube:<dim>, torus:<side>, cycle:<n>, grid:<side>, regular:<n>:<d>,
// er:<n>, complete:<n>, star:<n>, lollipop:<clique>:<path>.
func ParseGraph(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	arg := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("cli: graph spec %q needs argument %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("cli: graph spec %q argument %d: %w", spec, i, err)
		}
		return v, nil
	}
	switch kind {
	case "hypercube":
		d, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Hypercube(d)
	case "torus":
		side, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Torus(side, side)
	case "cycle":
		n, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Cycle(n)
	case "grid":
		side, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Grid2D(side, side)
	case "regular":
		n, err := arg(1)
		if err != nil {
			return nil, err
		}
		d, err := arg(2)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
	case "er":
		n, err := arg(1)
		if err != nil {
			return nil, err
		}
		if n < 2 {
			return nil, fmt.Errorf("cli: er graph needs n >= 2, got %d", n)
		}
		return graph.ErdosRenyi(n, 8/float64(n-1), rand.New(rand.NewSource(seed)))
	case "complete":
		n, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n)
	case "star":
		n, err := arg(1)
		if err != nil {
			return nil, err
		}
		return graph.Star(n)
	case "lollipop":
		clique, err := arg(1)
		if err != nil {
			return nil, err
		}
		path, err := arg(2)
		if err != nil {
			return nil, err
		}
		return graph.Lollipop(clique, path)
	default:
		return nil, fmt.Errorf("cli: unknown graph kind %q", kind)
	}
}

// BuildFactory returns the continuous factory named by driver, plus the
// matching schedule when the driver is matching-based (nil otherwise).
func BuildFactory(driver string, g *graph.Graph, s load.Speeds, seed int64) (continuous.Factory, matching.Schedule, error) {
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, nil, err
	}
	switch driver {
	case "fos":
		return continuous.FOSFactory(g, s, alpha), nil, nil
	case "sos":
		lambda, err := continuous.DiffusionLambda(g, s, alpha, 2000, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, nil, err
		}
		if lambda > 0.9999999 {
			lambda = 0.9999999
		}
		beta, err := spectral.OptimalSOSBeta(lambda)
		if err != nil {
			return nil, nil, err
		}
		return continuous.SOSFactory(g, s, alpha, beta), nil, nil
	case "match-periodic":
		sched, err := matching.NewPeriodicFromColoring(g)
		if err != nil {
			return nil, nil, err
		}
		return continuous.MatchingFactory(g, s, sched), sched, nil
	case "match-random":
		sched := matching.NewRandom(g, seed)
		return continuous.MatchingFactory(g, s, sched), sched, nil
	default:
		return nil, nil, fmt.Errorf("cli: unknown continuous driver %q", driver)
	}
}

// BuildScheme instantiates the named discrete scheme. sched may be nil for
// diffusion schemes; rng seeds randomized schemes.
func BuildScheme(name string, g *graph.Graph, s load.Speeds, sched matching.Schedule, factory continuous.Factory, x0 load.Vector, rng *rand.Rand) (sim.Discrete, error) {
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	needSched := func() (matching.Schedule, error) {
		if sched == nil {
			return nil, errors.New("cli: matching scheme needs a matching continuous driver")
		}
		return sched, nil
	}
	switch name {
	case "alg1":
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		return core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
	case "alg2":
		return core.NewRandomizedFlowImitation(g, s, x0, factory, rng)
	case "round-down":
		return baseline.NewRoundDownDiffusion(g, s, alpha, x0)
	case "det-accum":
		return baseline.NewDeterministicAccum(g, s, alpha, x0)
	case "rand-round":
		return baseline.NewRandomizedRounding(g, s, alpha, x0, rng)
	case "excess":
		return baseline.NewExcessToken(g, s, alpha, x0, rng)
	case "rotor":
		return baseline.NewRotorExcess(g, s, alpha, x0, rng)
	case "match-round-down":
		sc, err := needSched()
		if err != nil {
			return nil, err
		}
		return baseline.NewRoundDownMatching(g, s, sc, x0)
	case "match-rand-round":
		sc, err := needSched()
		if err != nil {
			return nil, err
		}
		return baseline.NewRandomizedMatching(g, s, sc, x0, rng)
	case "match-alg1":
		if _, err := needSched(); err != nil {
			return nil, err
		}
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		return core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
	case "match-alg2":
		if _, err := needSched(); err != nil {
			return nil, err
		}
		return core.NewRandomizedFlowImitation(g, s, x0, factory, rng)
	default:
		return nil, fmt.Errorf("cli: unknown scheme %q", name)
	}
}

// ValidateChoice rejects values outside the allowed set, with a helpful
// message naming the flag and the options.
func ValidateChoice(flagName, v string, allowed []string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("cli: -%s=%q is not one of %s", flagName, v, strings.Join(allowed, "|"))
}

// ValidatePositive rejects values below 1.
func ValidatePositive(flagName string, v int64) error {
	if v < 1 {
		return fmt.Errorf("cli: -%s=%d must be >= 1", flagName, v)
	}
	return nil
}

// ValidateNonNegative rejects negative values.
func ValidateNonNegative(flagName string, v int64) error {
	if v < 0 {
		return fmt.Errorf("cli: -%s=%d must be >= 0", flagName, v)
	}
	return nil
}

// ValidatePositiveFloat rejects non-finite or non-positive values.
func ValidatePositiveFloat(flagName string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("cli: -%s=%v must be a positive finite number", flagName, v)
	}
	return nil
}

// ValidateNonNegativeFloat rejects non-finite or negative values.
func ValidateNonNegativeFloat(flagName string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("cli: -%s=%v must be a non-negative finite number", flagName, v)
	}
	return nil
}

// ValidatePositiveDuration rejects non-positive durations.
func ValidatePositiveDuration(flagName string, v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("cli: -%s=%v must be a positive duration", flagName, v)
	}
	return nil
}

// LogFormats lists the -log-format choices of the daemons/drivers.
func LogFormats() []string { return []string{"text", "json"} }

// NewLogger builds a structured slog logger writing to w: "json" emits
// one JSON object per line for log shippers, anything else the human
// text handler.
func NewLogger(format string, w io.Writer) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// TableNames lists the values lbtable's -table flag accepts.
func TableNames() []string { return []string{"1", "2", "3", "all"} }

// ExpNames lists the values lbsweep's -exp flag accepts.
func ExpNames() []string {
	return []string{"all", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11"}
}

// SchemeNames lists the scheme identifiers BuildScheme accepts.
func SchemeNames() []string {
	return []string{
		"alg1", "alg2", "round-down", "det-accum", "rand-round", "excess", "rotor",
		"match-round-down", "match-rand-round", "match-alg1", "match-alg2",
	}
}

// DriverNames lists the continuous driver identifiers BuildFactory accepts.
func DriverNames() []string {
	return []string{"fos", "sos", "match-periodic", "match-random"}
}
