package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestValidate(t *testing.T) {
	g := graph.MustNew(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err := Validate(g, Matching{0, 2}); err != nil {
		t.Errorf("disjoint edges should validate: %v", err)
	}
	if err := Validate(g, Matching{0, 1}); err == nil {
		t.Error("edges sharing node 1 should fail validation")
	}
	if err := Validate(g, Matching{99}); err == nil {
		t.Error("out-of-range edge should fail validation")
	}
	if err := Validate(g, nil); err != nil {
		t.Errorf("empty matching should validate: %v", err)
	}
}

func checkProperColoring(t *testing.T, g *graph.Graph, classes []Matching) {
	t.Helper()
	covered := make([]bool, g.M())
	for ci, class := range classes {
		if err := Validate(g, class); err != nil {
			t.Fatalf("class %d is not a matching: %v", ci, err)
		}
		for _, e := range class {
			if covered[e] {
				t.Fatalf("edge %d coloured twice", e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			t.Fatalf("edge %d not covered by any class", e)
		}
	}
	if maxClasses := 2*g.MaxDegree() - 1; len(classes) > maxClasses {
		t.Errorf("used %d colours, greedy bound is %d", len(classes), maxClasses)
	}
}

func TestGreedyEdgeColoring(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle":    mustBuild(t, func() (*graph.Graph, error) { return graph.Cycle(9) }),
		"complete": mustBuild(t, func() (*graph.Graph, error) { return graph.Complete(7) }),
		"hyper":    mustBuild(t, func() (*graph.Graph, error) { return graph.Hypercube(4) }),
		"star":     mustBuild(t, func() (*graph.Graph, error) { return graph.Star(6) }),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			checkProperColoring(t, g, GreedyEdgeColoring(g))
		})
	}
	if classes := GreedyEdgeColoring(graph.MustNew(3, nil)); classes != nil {
		t.Error("edgeless graph should produce no classes")
	}
}

func TestGreedyEdgeColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(24, 0.2, rng)
		if err != nil {
			return false
		}
		classes := GreedyEdgeColoring(g)
		covered := make([]bool, g.M())
		for _, class := range classes {
			if Validate(g, class) != nil {
				return false
			}
			for _, e := range class {
				if covered[e] {
					return false
				}
				covered[e] = true
			}
		}
		for _, ok := range covered {
			if !ok {
				return false
			}
		}
		return len(classes) <= 2*g.MaxDegree()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicSchedule(t *testing.T) {
	g := graph.MustNew(4, [][2]int{{0, 1}, {2, 3}, {1, 2}})
	p, err := NewPeriodic(g, []Matching{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Period() != 2 {
		t.Errorf("Period = %d, want 2", p.Period())
	}
	if p.Name() != "periodic" {
		t.Errorf("Name = %q", p.Name())
	}
	for _, tt := range []struct {
		t    int
		want int // length of matching
	}{{0, 2}, {1, 1}, {2, 2}, {3, 1}, {-1, 2}} {
		if got := len(p.MatchingAt(tt.t)); got != tt.want {
			t.Errorf("MatchingAt(%d) has %d edges, want %d", tt.t, got, tt.want)
		}
	}
	if _, err := NewPeriodic(g, nil); err == nil {
		t.Error("empty matching list should error")
	}
	if _, err := NewPeriodic(g, []Matching{{0, 2}}); err == nil {
		t.Error("invalid matching should error")
	}
}

func TestNewPeriodicFromColoring(t *testing.T) {
	g := graph.MustNew(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	p, err := NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	// Over one period every edge must appear exactly once.
	seen := make([]int, g.M())
	for k := 0; k < p.Period(); k++ {
		for _, e := range p.MatchingAt(k) {
			seen[e]++
		}
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %d appears %d times per period, want 1", e, c)
		}
	}
	if _, err := NewPeriodicFromColoring(graph.MustNew(2, nil)); err == nil {
		t.Error("edgeless graph should error")
	}
}

func TestPeriodicCopiesInput(t *testing.T) {
	g := graph.MustNew(4, [][2]int{{0, 1}, {2, 3}})
	m := Matching{0}
	p, err := NewPeriodic(g, []Matching{m})
	if err != nil {
		t.Fatal(err)
	}
	m[0] = 1
	if p.MatchingAt(0)[0] != 0 {
		t.Error("NewPeriodic must copy the provided matchings")
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	g := graph.MustNew(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	a := NewRandom(g, 11)
	b := NewRandom(g, 11)
	for round := 0; round < 20; round++ {
		ma, mb := a.MatchingAt(round), b.MatchingAt(round)
		if len(ma) != len(mb) {
			t.Fatalf("round %d: sizes differ", round)
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("round %d: matchings differ at %d", round, i)
			}
		}
	}
	// Re-querying an old round after moving on must reproduce it.
	m5 := append(Matching(nil), a.MatchingAt(5)...)
	a.MatchingAt(17)
	again := a.MatchingAt(5)
	for i := range m5 {
		if m5[i] != again[i] {
			t.Fatal("MatchingAt(5) not reproducible after later queries")
		}
	}
}

func TestRandomScheduleIsMaximalMatching(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewRandom(g, 99)
	for round := 0; round < 10; round++ {
		m := sched.MatchingAt(round)
		if err := Validate(g, m); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Maximality: no remaining edge has both endpoints free.
		used := make([]bool, g.N())
		for _, e := range m {
			u, v := g.EdgeEndpoints(e)
			used[u], used[v] = true, true
		}
		for e := 0; e < g.M(); e++ {
			u, v := g.EdgeEndpoints(e)
			if !used[u] && !used[v] {
				t.Fatalf("round %d: edge %d could extend the matching", round, e)
			}
		}
	}
}

func TestRandomScheduleVariesAcrossRoundsAndSeeds(t *testing.T) {
	g, err := graph.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewRandom(g, 1)
	diff := false
	m0 := append(Matching(nil), s1.MatchingAt(0)...)
	for round := 1; round < 10 && !diff; round++ {
		m := s1.MatchingAt(round)
		if len(m) != len(m0) {
			diff = true
			break
		}
		for i := range m {
			if m[i] != m0[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("random schedule should vary across rounds")
	}
	if s1.Name() != "random" {
		t.Errorf("Name = %q", s1.Name())
	}
}

func mustBuild(t *testing.T, f func() (*graph.Graph, error)) *graph.Graph {
	t.Helper()
	g, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
