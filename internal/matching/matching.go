// Package matching provides the matchings used by dimension-exchange
// (matching-model) load balancing: a greedy proper edge colouring whose
// colour classes form the fixed matchings of the periodic model (Hosseini et
// al.), and seeded random maximal matchings for the random-matching model
// (Ghosh and Muthukrishnan).
package matching

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Matching is a set of pairwise node-disjoint edge indices of some graph.
type Matching []int

// Validate checks that m is a matching of g: edge indices in range and no
// shared endpoints.
func Validate(g *graph.Graph, m Matching) error {
	used := make(map[int]struct{}, 2*len(m))
	for _, e := range m {
		if e < 0 || e >= g.M() {
			return fmt.Errorf("matching: edge index %d out of range [0,%d)", e, g.M())
		}
		u, v := g.EdgeEndpoints(e)
		if _, dup := used[u]; dup {
			return fmt.Errorf("matching: node %d matched twice", u)
		}
		if _, dup := used[v]; dup {
			return fmt.Errorf("matching: node %d matched twice", v)
		}
		used[u] = struct{}{}
		used[v] = struct{}{}
	}
	return nil
}

// GreedyEdgeColoring partitions the edges of g into proper colour classes
// (each class a matching) using the first-fit greedy rule. It uses at most
// 2*maxdeg-1 colours and covers every edge, which is all the periodic
// matching model requires: a fixed set of matchings that together cover E.
func GreedyEdgeColoring(g *graph.Graph) []Matching {
	if g.M() == 0 {
		return nil
	}
	maxColors := 2*g.MaxDegree() - 1
	color := make([]int, g.M())
	for e := range color {
		color[e] = -1
	}
	// usedAt[v] holds, per node, the set of colours already incident to v.
	usedAt := make([]map[int]struct{}, g.N())
	for i := range usedAt {
		usedAt[i] = make(map[int]struct{})
	}
	classes := make([]Matching, 0, maxColors)
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(e)
		c := 0
		for {
			_, au := usedAt[u][c]
			_, av := usedAt[v][c]
			if !au && !av {
				break
			}
			c++
		}
		color[e] = c
		usedAt[u][c] = struct{}{}
		usedAt[v][c] = struct{}{}
		for len(classes) <= c {
			classes = append(classes, nil)
		}
		classes[c] = append(classes[c], e)
	}
	return classes
}

// Schedule yields the matching used at a given round.
type Schedule interface {
	// MatchingAt returns the matching active in round t >= 0. The returned
	// slice must not be modified by the caller.
	MatchingAt(t int) Matching
	// Name identifies the schedule kind for reports.
	Name() string
}

// Periodic cycles deterministically through a fixed list of matchings:
// round t uses matchings[t mod len(matchings)].
type Periodic struct {
	matchings []Matching
}

var _ Schedule = (*Periodic)(nil)

// NewPeriodic builds a periodic schedule from explicit matchings. Each must
// be a valid matching of g and the list must be non-empty.
func NewPeriodic(g *graph.Graph, matchings []Matching) (*Periodic, error) {
	if len(matchings) == 0 {
		return nil, errors.New("matching: periodic schedule needs at least one matching")
	}
	own := make([]Matching, len(matchings))
	for i, m := range matchings {
		if err := Validate(g, m); err != nil {
			return nil, fmt.Errorf("matching %d: %w", i, err)
		}
		own[i] = append(Matching(nil), m...)
	}
	return &Periodic{matchings: own}, nil
}

// NewPeriodicFromColoring builds the canonical periodic schedule of g from
// its greedy edge colouring.
func NewPeriodicFromColoring(g *graph.Graph) (*Periodic, error) {
	classes := GreedyEdgeColoring(g)
	if len(classes) == 0 {
		return nil, errors.New("matching: graph has no edges")
	}
	return NewPeriodic(g, classes)
}

// Period returns the number of matchings in the cycle (the d~ of the paper).
func (p *Periodic) Period() int { return len(p.matchings) }

// MatchingAt implements Schedule.
func (p *Periodic) MatchingAt(t int) Matching {
	if t < 0 {
		t = 0
	}
	return p.matchings[t%len(p.matchings)]
}

// Name implements Schedule.
func (p *Periodic) Name() string { return "periodic" }

// Random produces an independent uniform-random maximal matching per round,
// deterministically derived from (seed, t): the same schedule instance — or
// two instances with the same seed — return identical matchings for equal t.
// This determinism is what lets additivity tests couple several process runs
// on "the same sequence of outcomes", exactly as Definition 3's footnote
// requires.
type Random struct {
	g    *graph.Graph
	seed int64

	lastT int
	last  Matching
	perm  []int
	used  []bool
}

var _ Schedule = (*Random)(nil)

// NewRandom builds a random-matching schedule for g with the given seed.
func NewRandom(g *graph.Graph, seed int64) *Random {
	return &Random{
		g:     g,
		seed:  seed,
		lastT: -1,
		perm:  make([]int, g.M()),
		used:  make([]bool, g.N()),
	}
}

// MatchingAt implements Schedule: a maximal matching built by scanning the
// edges in a uniformly random order (seeded by (seed, t)) and keeping every
// edge whose endpoints are still free.
func (r *Random) MatchingAt(t int) Matching {
	if t < 0 {
		t = 0
	}
	if t == r.lastT {
		return r.last
	}
	rng := rand.New(rand.NewSource(mix(r.seed, int64(t))))
	for i := range r.perm {
		r.perm[i] = i
	}
	rng.Shuffle(len(r.perm), func(i, j int) { r.perm[i], r.perm[j] = r.perm[j], r.perm[i] })
	for i := range r.used {
		r.used[i] = false
	}
	m := make(Matching, 0, r.g.N()/2)
	for _, e := range r.perm {
		u, v := r.g.EdgeEndpoints(e)
		if r.used[u] || r.used[v] {
			continue
		}
		r.used[u] = true
		r.used[v] = true
		m = append(m, e)
	}
	r.lastT = t
	r.last = m
	return m
}

// Name implements Schedule.
func (r *Random) Name() string { return "random" }

// mix combines a seed and a round counter into a well-spread 63-bit source
// seed (splitmix64 finalizer).
func mix(seed, t int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(t) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}
