package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

func setup(t *testing.T) (*graph.Graph, load.Speeds, continuous.Alphas, load.TaskDist) {
	t.Helper()
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 32*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, a, d
}

func TestNewValidation(t *testing.T) {
	g, s, a, d := setup(t)
	maker := dist.FOSMaker(g, s, a)
	if _, err := New(nil, s, d, maker, PipeTransport{}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := New(g, s, d, nil, PipeTransport{}); err == nil {
		t.Error("nil maker should error")
	}
	if _, err := New(g, s, d, maker, nil); err == nil {
		t.Error("nil transport should error")
	}
	if _, err := New(g, s[:2], d, maker, PipeTransport{}); err == nil {
		t.Error("short speeds should error")
	}
}

// TestPipeEquivalenceWithCentralized: the wire-protocol run over in-memory
// pipes matches the centralized Algorithm 1 exactly.
func TestPipeEquivalenceWithCentralized(t *testing.T) {
	g, s, a, d := setup(t)
	maker := dist.FOSMaker(g, s, a)
	c, err := New(g, s, d, maker, PipeTransport{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	central, err := core.NewFlowImitation(g, s, d, continuous.Factory(maker), core.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 80; round++ {
		if err := c.Step(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		central.Step()
		nl, cl := c.Load(), central.Load()
		for i := range nl {
			if nl[i] != cl[i] {
				t.Fatalf("round %d node %d: netsim %d vs centralized %d", round, i, nl[i], cl[i])
			}
		}
	}
	if c.DummiesCreated() != central.DummiesCreated() {
		t.Errorf("dummies: %d vs %d", c.DummiesCreated(), central.DummiesCreated())
	}
	if c.Round() != 80 {
		t.Errorf("Round = %d", c.Round())
	}
}

// TestTCPEquivalence runs a smaller instance over real loopback TCP.
func TestTCPEquivalence(t *testing.T) {
	g, err := graph.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTCPTransport()
	if err != nil {
		t.Fatal(err)
	}
	maker := dist.FOSMaker(g, s, a)
	c, err := New(g, s, d, maker, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	central, err := core.NewFlowImitation(g, s, d, continuous.Factory(maker), core.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(30); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		central.Step()
	}
	nl, cl := c.Load(), central.Load()
	for i := range nl {
		if nl[i] != cl[i] {
			t.Fatalf("node %d: netsim-tcp %d vs centralized %d", i, nl[i], cl[i])
		}
	}
}

// TestWeightedTasksOverPipes: the gob protocol carries weighted (and dummy)
// tasks faithfully.
func TestWeightedTasksOverPipes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workload.PointMassWeightedTasks(g.N(), 100, 0, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := d.Loads().Total()
	c, err := New(g, s, d, dist.FOSMaker(g, s, a), PipeTransport{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(60); err != nil {
		t.Fatal(err)
	}
	if got := c.Load().Total(); got != total+c.DummiesCreated() {
		t.Errorf("conservation: %d != %d + %d", got, total, c.DummiesCreated())
	}
	if real := c.LoadExcludingDummies().Total(); real != total {
		t.Errorf("real load %d != %d", real, total)
	}
}

// TestCloseIsIdempotentEnough: closing after a run returns without hanging
// and a second Step after Close errors rather than deadlocking.
func TestCloseThenStepErrors(t *testing.T) {
	g, s, a, d := setup(t)
	c, err := New(g, s, d, dist.FOSMaker(g, s, a), PipeTransport{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil {
		t.Error("Step after Close should error")
	}
}
