// Package netsim runs Algorithm 1 over a real network stack: every node is
// a goroutine that talks to its neighbours exclusively through net.Conn
// links carrying gob-encoded task batches — no shared memory between nodes
// at all. It is the wire-protocol counterpart of package dist (which
// exchanges batches through channels) and produces the same task placement,
// which the tests assert against the centralized implementation.
//
// Links are pluggable through the Transport interface: in-memory synchronous
// pipes (net.Pipe) by default, or TCP over the loopback interface for runs
// that exercise the OS network stack.
package netsim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
)

// Transport produces the duplex links nodes communicate over.
type Transport interface {
	// Link returns two connected endpoints of a reliable duplex link.
	Link() (a, b net.Conn, err error)
	// Close releases transport-wide resources (listeners etc.). Individual
	// conns are closed by the cluster.
	Close() error
}

// PipeTransport links nodes with synchronous in-memory pipes.
type PipeTransport struct{}

var _ Transport = PipeTransport{}

// Link implements Transport.
func (PipeTransport) Link() (net.Conn, net.Conn, error) {
	a, b := net.Pipe()
	return a, b, nil
}

// Close implements Transport.
func (PipeTransport) Close() error { return nil }

// TCPTransport links nodes with TCP connections over the loopback
// interface.
type TCPTransport struct {
	ln net.Listener
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport opens a loopback listener used to accept one side of
// every link.
func NewTCPTransport() (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netsim: listen: %w", err)
	}
	return &TCPTransport{ln: ln}, nil
}

// Link implements Transport: it dials the listener and pairs the accepted
// conn with the dialled one.
func (t *TCPTransport) Link() (net.Conn, net.Conn, error) {
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := t.ln.Accept()
		ch <- accepted{conn: conn, err: err}
	}()
	dialled, err := net.Dial("tcp", t.ln.Addr().String())
	if err != nil {
		return nil, nil, fmt.Errorf("netsim: dial: %w", err)
	}
	acc := <-ch
	if acc.err != nil {
		dialled.Close()
		return nil, nil, fmt.Errorf("netsim: accept: %w", acc.err)
	}
	return dialled, acc.conn, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error { return t.ln.Close() }

// frame is the wire message: one round's task batch over one directed link.
type frame struct {
	Round int
	Tasks []load.Task
}

// link is one node's view of a duplex neighbour connection.
type link struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Cluster runs Algorithm 1 over network links.
type Cluster struct {
	g      *graph.Graph
	s      load.Speeds
	wmax   int64
	tr     Transport
	nodes  []*nodeState
	states []*dist.SendState
	round  int
}

// nodeState is the full per-node state: the shared flow-imitation
// bookkeeping from package dist plus the wire links.
type nodeState struct {
	id    int
	st    *dist.SendState
	cont  contProcess
	links []link
}

// contProcess is the slice of the continuous.Process interface netsim needs;
// keeping it minimal avoids a hard dependency in the hot path.
type contProcess interface {
	Step() dist.NetFlows
}

// procAdapter adapts a continuous.Process (whose Step returns a concrete
// *continuous.Flows) to contProcess.
type procAdapter struct {
	step func() dist.NetFlows
}

func (p procAdapter) Step() dist.NetFlows { return p.step() }

// New builds a network cluster for Algorithm 1. dist is the initial task
// placement; maker builds each node's continuous replica (same contract as
// package dist: replicas must be independent); tr provides the links.
func New(g *graph.Graph, s load.Speeds, taskDist load.TaskDist, maker dist.ProcessMaker, tr Transport) (*Cluster, error) {
	if g == nil {
		return nil, errors.New("netsim: nil graph")
	}
	if maker == nil {
		return nil, errors.New("netsim: nil process maker")
	}
	if tr == nil {
		return nil, errors.New("netsim: nil transport")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("netsim: speeds length %d != n %d", len(s), g.N())
	}
	if len(taskDist) != g.N() {
		return nil, fmt.Errorf("netsim: task distribution length %d != n %d", len(taskDist), g.N())
	}
	if err := taskDist.Validate(); err != nil {
		return nil, err
	}
	x0 := taskDist.Loads().Float()

	// Create one duplex link per edge; endpoint A belongs to U(e). On any
	// later construction failure every already-opened conn is closed, so
	// aborted constructions do not leak sockets.
	type pair struct{ a, b net.Conn }
	var pairs []pair
	closePairs := func() {
		for _, p := range pairs {
			p.a.Close()
			p.b.Close()
		}
	}
	for e := 0; e < g.M(); e++ {
		a, b, err := tr.Link()
		if err != nil {
			closePairs()
			return nil, fmt.Errorf("netsim: link for edge %d: %w", e, err)
		}
		pairs = append(pairs, pair{a: a, b: b})
	}
	c := &Cluster{
		g:      g,
		s:      s.Clone(),
		wmax:   taskDist.MaxWeight(),
		tr:     tr,
		nodes:  make([]*nodeState, g.N()),
		states: make([]*dist.SendState, g.N()),
	}
	for i := 0; i < g.N(); i++ {
		replica, err := maker(x0)
		if err != nil {
			closePairs()
			return nil, fmt.Errorf("netsim: replica for node %d: %w", i, err)
		}
		r := replica
		nd := &nodeState{
			id:   i,
			st:   dist.NewSendState(taskDist[i], g.Degree(i)),
			cont: procAdapter{step: func() dist.NetFlows { return r.Step() }},
		}
		for _, arc := range g.Neighbors(i) {
			conn := pairs[arc.Edge].a
			if arc.Out < 0 {
				conn = pairs[arc.Edge].b
			}
			nd.links = append(nd.links, link{
				conn: conn,
				enc:  gob.NewEncoder(conn),
				dec:  gob.NewDecoder(conn),
			})
		}
		c.nodes[i] = nd
		c.states[i] = nd.st
	}
	return c, nil
}

// Step executes one synchronous round over the network. Any I/O or protocol
// error aborts the round and is returned.
func (c *Cluster) Step() error {
	errCh := make(chan error, len(c.nodes))
	var wg sync.WaitGroup
	for _, nd := range c.nodes {
		wg.Add(1)
		go func(nd *nodeState) {
			defer wg.Done()
			if err := nd.step(c.g, c.wmax, c.round); err != nil {
				errCh <- fmt.Errorf("node %d: %w", nd.id, err)
			}
		}(nd)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	c.round++
	return nil
}

// step is one node's round: advance the replica, decide sends (the shared
// dist.SendState logic, identical to core.FlowImitation with LIFO task
// picks), then exchange frames. Writes run in their own goroutines because
// pipe links are synchronous.
func (nd *nodeState) step(g *graph.Graph, wmax int64, round int) error {
	fl := nd.cont.Step()
	neigh := g.Neighbors(nd.id)
	batches := nd.st.DecideSends(neigh, fl, wmax)

	// Concurrent writers per link; the node goroutine reads.
	var writers sync.WaitGroup
	writeErrs := make(chan error, len(neigh))
	for k := range neigh {
		writers.Add(1)
		go func(k int) {
			defer writers.Done()
			if err := nd.links[k].enc.Encode(frame{Round: round, Tasks: batches[k]}); err != nil {
				writeErrs <- fmt.Errorf("send to neighbour %d: %w", k, err)
			}
		}(k)
	}
	var firstErr error
	for k, arc := range neigh {
		var in frame
		if err := nd.links[k].dec.Decode(&in); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("recv from neighbour %d: %w", k, err)
			}
			continue
		}
		if in.Round != round {
			if firstErr == nil {
				firstErr = fmt.Errorf("protocol: got round %d frame, want %d", in.Round, round)
			}
			continue
		}
		nd.st.Receive(k, arc, in.Tasks)
	}
	writers.Wait()
	close(writeErrs)
	if firstErr == nil {
		firstErr = <-writeErrs
	}
	return firstErr
}

// Run executes the given number of rounds, stopping at the first error.
func (c *Cluster) Run(rounds int) error {
	for t := 0; t < rounds; t++ {
		if err := c.Step(); err != nil {
			return fmt.Errorf("netsim: round %d: %w", t, err)
		}
	}
	return nil
}

// Close closes every link and the transport.
func (c *Cluster) Close() error {
	var firstErr error
	seen := map[net.Conn]struct{}{}
	for _, nd := range c.nodes {
		for _, l := range nd.links {
			if _, dup := seen[l.conn]; dup {
				continue
			}
			seen[l.conn] = struct{}{}
			if err := l.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := c.tr.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Round returns the number of completed rounds.
func (c *Cluster) Round() int { return c.round }

// Load returns the per-node total task weight, including dummies.
func (c *Cluster) Load() load.Vector { return dist.Loads(c.states) }

// LoadExcludingDummies returns the per-node real load.
func (c *Cluster) LoadExcludingDummies() load.Vector { return dist.RealLoads(c.states) }

// DummiesCreated returns the total dummy weight drawn across all nodes.
func (c *Cluster) DummiesCreated() int64 { return dist.TotalDummies(c.states) }

// Speeds returns the node speeds.
func (c *Cluster) Speeds() load.Speeds { return c.s }
