package workload

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// fakeClock rewires a bucket onto a deterministic clock: now() reads a
// variable and sleep() advances it by exactly the requested duration, so
// Wait timings can be asserted to the millisecond.
type fakeClock struct {
	cur     time.Time
	elapsed time.Duration
}

func installFakeClock(b *TokenBucket) *fakeClock {
	c := &fakeClock{cur: time.Unix(0, 0)}
	b.now = func() time.Time { return c.cur }
	b.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.cur = c.cur.Add(d)
		c.elapsed += d
		return nil
	}
	b.start = c.cur
	b.last = c.cur
	return c
}

func TestTokenBucketConstantRate(t *testing.T) {
	b, err := NewTokenBucket(1000, 100, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := installFakeClock(b)
	// The bucket starts full (100 tokens); admitting 500 leaves a 400
	// token deficit that refills at exactly 1000/s of fake time.
	if err := b.Wait(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	want := 400 * time.Millisecond
	if diff := (c.elapsed - want).Abs(); diff > 5*time.Millisecond {
		t.Fatalf("Wait(500) took %v of fake time, want ~%v", c.elapsed, want)
	}
	// A request inside the accrued budget must not sleep at all.
	c.cur = c.cur.Add(50 * time.Millisecond)
	before := c.elapsed
	if err := b.Wait(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	if c.elapsed != before {
		t.Fatalf("Wait(40) slept %v with 50 tokens accrued", c.elapsed-before)
	}
}

func TestTokenBucketSquarePulse(t *testing.T) {
	pulse, err := ParsePulse("square", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTokenBucket(1000, 1, pulse, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := installFakeClock(b)
	// From phase 0: the first half period refills at 1000/s (500 tokens
	// by t=0.5s), the second half at 500/s, so a 700-token deficit
	// clears at t = 0.5s + 200/500 = 0.9s.
	if err := b.Wait(context.Background(), 701); err != nil {
		t.Fatal(err)
	}
	want := 900 * time.Millisecond
	if diff := (c.elapsed - want).Abs(); diff > 30*time.Millisecond {
		t.Fatalf("square-pulse Wait(701) took %v of fake time, want ~%v", c.elapsed, want)
	}
}

func TestTokenBucketRateAt(t *testing.T) {
	pulse, err := ParsePulse("sine", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTokenBucket(100, 1, pulse, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := installFakeClock(b)
	crest := b.RateAt(c.cur.Add(250 * time.Millisecond)) // sin peak at phase 0.25
	trough := b.RateAt(c.cur.Add(750 * time.Millisecond))
	if math.Abs(crest-100) > 1e-9 {
		t.Fatalf("crest rate %v, want 100", crest)
	}
	if math.Abs(trough-20) > 1e-9 {
		t.Fatalf("trough rate %v, want 20", trough)
	}
}

func TestTokenBucketWaitCancelRefunds(t *testing.T) {
	b, err := NewTokenBucket(10, 1, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	installFakeClock(b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Wait(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx: err=%v, want context.Canceled", err)
	}
	// The aborted waiter's debit must be refunded: 1 - 100 = -99, then
	// +99 back, so the bucket sits at zero rather than deep in debt.
	b.mu.Lock()
	tokens := b.tokens
	b.mu.Unlock()
	if math.Abs(tokens) > 1e-9 {
		t.Fatalf("tokens after cancelled Wait = %v, want 0", tokens)
	}
}

func TestTokenBucketZeroAndNil(t *testing.T) {
	var nilBucket *TokenBucket
	if err := nilBucket.Wait(context.Background(), 10); err != nil {
		t.Fatalf("nil bucket Wait: %v", err)
	}
	b, err := NewTokenBucket(1, 1, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait(0): %v", err)
	}
}

func TestNewTokenBucketValidation(t *testing.T) {
	cases := []struct {
		name   string
		rate   float64
		burst  int
		period time.Duration
	}{
		{"zero rate", 0, 1, time.Second},
		{"negative rate", -5, 1, time.Second},
		{"nan rate", math.NaN(), 1, time.Second},
		{"inf rate", math.Inf(1), 1, time.Second},
		{"zero burst", 10, 0, time.Second},
		{"zero period", 10, 1, 0},
	}
	for _, tc := range cases {
		if _, err := NewTokenBucket(tc.rate, tc.burst, nil, tc.period); err == nil {
			t.Errorf("%s: NewTokenBucket accepted invalid config", tc.name)
		}
	}
}

func TestParsePulseShapes(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

	constant, err := ParsePulse("constant", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(constant(0), 1) || !approx(constant(0.9), 1) {
		t.Fatal("constant pulse must be 1 everywhere")
	}

	sine, err := ParsePulse("sine", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sine(0.25), 1) {
		t.Fatalf("sine crest at phase 0.25 = %v, want 1", sine(0.25))
	}
	if !approx(sine(0.75), 0.2) {
		t.Fatalf("sine trough at phase 0.75 = %v, want floor 0.2", sine(0.75))
	}

	square, err := ParsePulse("square", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(square(0.1), 1) || !approx(square(0.6), 0.3) {
		t.Fatalf("square = %v/%v, want 1/0.3", square(0.1), square(0.6))
	}

	saw, err := ParsePulse("sawtooth", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(saw(0), 0.4) {
		t.Fatalf("sawtooth start = %v, want floor 0.4", saw(0))
	}
	if !approx(saw(0.5), 0.7) {
		t.Fatalf("sawtooth midpoint = %v, want 0.7", saw(0.5))
	}

	// Every registered shape stays within [floor, 1]: the floor is the
	// no-stall guarantee for Wait.
	for _, name := range PulseNames() {
		p, err := ParsePulse(name, 0.25)
		if err != nil {
			t.Fatalf("ParsePulse(%q): %v", name, err)
		}
		for phase := 0.0; phase < 1; phase += 0.01 {
			v := p(phase)
			if v < 0.25-1e-9 || v > 1+1e-9 {
				t.Fatalf("pulse %q at phase %v = %v, outside [0.25, 1]", name, phase, v)
			}
		}
	}

	for _, floor := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := ParsePulse("sine", floor); err == nil {
			t.Errorf("ParsePulse accepted floor %v", floor)
		}
	}
	if _, err := ParsePulse("triangle", 0.5); err == nil {
		t.Error("ParsePulse accepted unknown shape")
	}
}
