package workload

import (
	"encoding/json"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/wire"
)

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ScenarioNames not sorted: %v", names)
	}
	for _, want := range []string{"steady", "hotspot", "burst", "churn-storm", "quiescent", "ci-smoke"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("scenario %q missing from registry %v", want, names)
		}
	}
	if _, err := NewScenario("no-such-scenario"); err == nil {
		t.Fatal("NewScenario accepted an unknown name")
	}
	if _, err := NewScenario("steady"); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioParamValidation(t *testing.T) {
	s, _ := NewScenario("steady")
	if err := s.Init(ScenarioParams{}); err == nil {
		t.Fatal("Init accepted empty node set")
	}
	bad := []ScenarioParams{
		{Nodes: []int{0, 1}, Tokens: -1},
		{Nodes: []int{0, 1}, Wmax: -3},
		{Nodes: []int{0, 1}, Hotspots: 5},
		{Nodes: []int{0, 1}, HotFraction: 1.5},
		{Nodes: []int{0, 1}, BurstEvery: -1},
		{Nodes: []int{0, 1}, ChurnEvery: -1},
	}
	for i, p := range bad {
		s, _ := NewScenario("hotspot")
		if err := s.Init(p); err == nil {
			t.Errorf("case %d: Init accepted invalid params %+v", i, p)
		}
	}
}

func genEvents(t *testing.T, name string, p ScenarioParams, n int) []wire.Event {
	t.Helper()
	s, err := NewScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Init(p); err != nil {
		t.Fatal(err)
	}
	out := make([]wire.Event, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// TestScenarioDeterminism pins the seeded-stream contract: the same
// (scenario, params) produce the identical event sequence across runs
// and across GOMAXPROCS settings — a failing soak replays exactly.
func TestScenarioDeterminism(t *testing.T) {
	nodes := make([]int, 200)
	for i := range nodes {
		nodes[i] = i
	}
	p := ScenarioParams{Nodes: nodes, Seed: 42, Tokens: 4, Wmax: 3}
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			a := genEvents(t, name, p, 5000)
			b := genEvents(t, name, p, 5000)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different event streams")
			}
			prev := runtime.GOMAXPROCS(1)
			c := genEvents(t, name, p, 5000)
			runtime.GOMAXPROCS(prev)
			if !reflect.DeepEqual(a, c) {
				t.Fatal("GOMAXPROCS=1 changed the event stream")
			}
			d := genEvents(t, name, ScenarioParams{Nodes: nodes, Seed: 43, Tokens: 4, Wmax: 3}, 5000)
			if reflect.DeepEqual(a, d) {
				t.Fatal("different seeds produced identical event streams")
			}
		})
	}
}

// TestScenarioDrivesEngine round-trips every scenario through the wire
// format into a live engine: marshal each event as an NDJSON line, parse
// it back with ParseEventLine, schedule and periodically step. Every
// emitted event must be valid against the engine (churn included), and
// the conservation audit must hold at the end.
func TestScenarioDrivesEngine(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			g, err := graph.Torus(8, 8)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			x0 := make(load.Vector, n)
			for i := range x0 {
				x0[i] = 8
			}
			dist, err := load.NewTokens(x0)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := engine.New(engine.Config{
				Graph:  g,
				Speeds: load.UniformSpeeds(n),
				Tasks:  dist,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			nodes := make([]int, n)
			for i := range nodes {
				nodes[i] = i
			}
			events := genEvents(t, name, ScenarioParams{Nodes: nodes, Seed: 7, Wmax: 2}, 4000)
			w0 := eng.RealTotal()
			for i, ev := range events {
				line, err := json.Marshal(&ev)
				if err != nil {
					t.Fatal(err)
				}
				parsed, err := engine.ParseEventLine(line)
				if err != nil {
					t.Fatalf("event %d (%s): %v", i, line, err)
				}
				if err := eng.Schedule(parsed); err != nil {
					t.Fatalf("event %d (%s): schedule: %v", i, line, err)
				}
				if (i+1)%64 == 0 {
					if err := eng.Step(); err != nil {
						t.Fatalf("step after event %d: %v", i, err)
					}
				}
			}
			for eng.PendingEvents() > 0 {
				if err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.AuditFull(); err != nil {
				t.Fatalf("conservation audit after %s: %v", name, err)
			}
			// The pump balances arrivals with completions, so the total
			// load must stay far below the gross arrival volume: drift
			// comes only from completions under-removing on near-empty
			// nodes, which the occasional balancing round keeps rare.
			var gross int64
			for _, ev := range events {
				if ev.Kind == "arrival" {
					gross += int64(ev.Tokens) * ev.Weight
				}
			}
			w1 := eng.RealTotal()
			if w1 < w0/2 {
				t.Fatalf("scenario %s drained RealTotal %d -> %d", name, w0, w1)
			}
			if drift := w1 - w0; drift > gross/2 {
				t.Fatalf("scenario %s leaked %d of %d gross arrival weight (RealTotal %d -> %d)",
					name, drift, gross, w0, w1)
			}
			// ci-smoke is the soak scenario: unit weights and frequent
			// balancing keep it truly flat, so hold it to a tight bound.
			if name == "ci-smoke" && w1 > 2*w0+int64(n) {
				t.Fatalf("ci-smoke drifted RealTotal %d -> %d", w0, w1)
			}
		})
	}
}

// TestScenarioWireCompat ensures the generated stream uses only wire
// kinds the decoder accepts and the fields each kind requires.
func TestScenarioWireCompat(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, name := range ScenarioNames() {
		events := genEvents(t, name, ScenarioParams{Nodes: nodes, Seed: 1}, 2000)
		for i, ev := range events {
			switch ev.Kind {
			case "arrival":
				if ev.Tokens < 1 || ev.Weight < 1 {
					t.Fatalf("%s event %d: bad arrival %+v", name, i, ev)
				}
			case "completion":
				if ev.Count < 1 {
					t.Fatalf("%s event %d: bad completion %+v", name, i, ev)
				}
			case "join":
				if len(ev.Peers) < 1 || ev.Speed < 1 {
					t.Fatalf("%s event %d: bad join %+v", name, i, ev)
				}
			case "leave":
			default:
				t.Fatalf("%s event %d: unexpected kind %q", name, i, ev.Kind)
			}
		}
	}
}
