// Package workload generates initial load distributions for experiments: the
// adversarial point mass that maximizes initial discrepancy K, uniform random
// placements, bipartition loads, skewed (power-law-like) loads, weighted task
// sets, heterogeneous speed profiles, and the "+ℓ·s_i floor" shift that
// realizes the sufficient-initial-load condition of Theorems 3(2) and 8(2).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/load"
)

// PointMass places all m tokens on the given node. This is the classic
// worst-case start (initial discrepancy K = m).
func PointMass(n int, m int64, node int) (load.Vector, error) {
	if node < 0 || node >= n {
		return nil, fmt.Errorf("workload: node %d out of range [0,%d)", node, n)
	}
	if m < 0 {
		return nil, fmt.Errorf("workload: negative total load %d", m)
	}
	x := make(load.Vector, n)
	x[node] = m
	return x, nil
}

// UniformRandom throws m tokens independently and uniformly onto n nodes.
func UniformRandom(n int, m int64, rng *rand.Rand) load.Vector {
	x := make(load.Vector, n)
	for k := int64(0); k < m; k++ {
		x[rng.Intn(n)]++
	}
	return x
}

// Bipartition places all m tokens spread evenly on the nodes within BFS
// distance radius of node 0 — a smooth version of the adversarial "one side
// of the cut is full" start used in lower-bound constructions.
func Bipartition(g *graph.Graph, m int64, radius int) load.Vector {
	dist := g.BFSDist(0)
	var members []int
	for i, d := range dist {
		if d >= 0 && d <= radius {
			members = append(members, i)
		}
	}
	x := make(load.Vector, g.N())
	if len(members) == 0 {
		x[0] = m
		return x
	}
	per := m / int64(len(members))
	rem := m % int64(len(members))
	for k, i := range members {
		x[i] = per
		if int64(k) < rem {
			x[i]++
		}
	}
	return x
}

// Skewed assigns node i a load proportional to 1/(i+1) (a Zipf-like profile),
// scaled so the total is exactly m.
func Skewed(n int, m int64) load.Vector {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	x := make(load.Vector, n)
	var assigned int64
	for i := range x {
		x[i] = int64(float64(m) * weights[i] / total)
		assigned += x[i]
	}
	// Distribute the rounding remainder to the heaviest nodes.
	for i := 0; assigned < m; i = (i + 1) % n {
		x[i]++
		assigned++
	}
	return x
}

// AddFloor returns x shifted by ℓ·s_i on every node: the decomposition
// x' + ℓ·(s_1..s_n) used by the max-min discrepancy parts of Theorems 3
// and 8.
func AddFloor(x load.Vector, s load.Speeds, ell int64) (load.Vector, error) {
	if len(x) != len(s) {
		return nil, fmt.Errorf("workload: vector length %d != speeds length %d", len(x), len(s))
	}
	out := x.Clone()
	for i := range out {
		out[i] += ell * s[i]
	}
	return out, nil
}

// RandomWeightedTasks builds numTasks tasks with weights drawn uniformly from
// {1..wmax} and assigns each to a uniformly random node.
func RandomWeightedTasks(n, numTasks int, wmax int64, rng *rand.Rand) (load.TaskDist, error) {
	if wmax < 1 {
		return nil, fmt.Errorf("workload: wmax %d must be >= 1", wmax)
	}
	d := make(load.TaskDist, n)
	for k := 0; k < numTasks; k++ {
		i := rng.Intn(n)
		d[i] = append(d[i], load.Task{Weight: 1 + rng.Int63n(wmax)})
	}
	return d, nil
}

// PointMassWeightedTasks puts numTasks tasks of uniformly random weight in
// {1..wmax} all on a single node.
func PointMassWeightedTasks(n, numTasks, node int, wmax int64, rng *rand.Rand) (load.TaskDist, error) {
	if node < 0 || node >= n {
		return nil, fmt.Errorf("workload: node %d out of range [0,%d)", node, n)
	}
	if wmax < 1 {
		return nil, fmt.Errorf("workload: wmax %d must be >= 1", wmax)
	}
	d := make(load.TaskDist, n)
	d[node] = make([]load.Task, numTasks)
	for k := range d[node] {
		d[node][k] = load.Task{Weight: 1 + rng.Int63n(wmax)}
	}
	return d, nil
}

// FloorTasks returns dist with ℓ·s_i extra unit-weight tasks added to every
// node, the task-level analogue of AddFloor.
func FloorTasks(dist load.TaskDist, s load.Speeds, ell int64) (load.TaskDist, error) {
	if len(dist) != len(s) {
		return nil, fmt.Errorf("workload: dist length %d != speeds length %d", len(dist), len(s))
	}
	out := dist.Clone()
	for i := range out {
		for k := int64(0); k < ell*s[i]; k++ {
			out[i] = append(out[i], load.Task{Weight: 1})
		}
	}
	return out, nil
}

// DummyFloorTasks returns dist with ℓ·s_i extra unit-weight tasks added to
// every node, marked as dummy tokens. This realizes the proof device of
// Theorem 3 part (1) and Theorem 8 part (1): the algorithm pre-loads
// d·s_i·wmax (resp. (d/4+2c√(d log n))·s_i) dummy tokens, balances, and the
// dummies are "simply ignored" at the end — LoadsExcludingDummies then
// measures exactly the paper's max-avg quantity.
func DummyFloorTasks(dist load.TaskDist, s load.Speeds, ell int64) (load.TaskDist, error) {
	if len(dist) != len(s) {
		return nil, fmt.Errorf("workload: dist length %d != speeds length %d", len(dist), len(s))
	}
	out := dist.Clone()
	for i := range out {
		for k := int64(0); k < ell*s[i]; k++ {
			out[i] = append(out[i], load.Task{Weight: 1, Dummy: true})
		}
	}
	return out, nil
}

// Arrival is one scheduled batch of task arrivals for the event-driven
// engine: Tasks land on Node at round Round.
type Arrival struct {
	Round int64
	Node  int
	Tasks []load.Task
}

// poisson draws a Poisson(rate)-distributed count (Knuth's product
// method; fine for the modest rates arrival processes use).
func poisson(rate float64, rng *rand.Rand) int {
	threshold := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= threshold {
			return k
		}
		k++
	}
}

// PoissonBursts models bursty online traffic: in every round of
// [0, rounds), a Poisson(rate) number of bursts arrive, each landing on a
// uniformly random node with burst tasks of weight drawn uniformly from
// {1..wmax}.
func PoissonBursts(n, rounds int, rate float64, burst int, wmax int64, rng *rand.Rand) ([]Arrival, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: need at least one node, got %d", n)
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("workload: invalid burst rate %v", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("workload: burst size %d must be >= 1", burst)
	}
	if wmax < 1 {
		return nil, fmt.Errorf("workload: wmax %d must be >= 1", wmax)
	}
	var out []Arrival
	for r := 0; r < rounds; r++ {
		for k := poisson(rate, rng); k > 0; k-- {
			tasks := make([]load.Task, burst)
			for i := range tasks {
				tasks[i] = load.Task{Weight: 1 + rng.Int63n(wmax)}
			}
			out = append(out, Arrival{Round: int64(r), Node: rng.Intn(n), Tasks: tasks})
		}
	}
	return out, nil
}

// HotspotIngress models a fixed set of ingress nodes receiving steady
// traffic: every ingress node gets perRound unit-weight tasks in every
// round of [start, start+rounds).
func HotspotIngress(ingress []int, start, rounds int64, perRound, n int) ([]Arrival, error) {
	if len(ingress) == 0 {
		return nil, fmt.Errorf("workload: need at least one ingress node")
	}
	for _, node := range ingress {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("workload: ingress node %d out of range [0,%d)", node, n)
		}
	}
	if perRound < 1 {
		return nil, fmt.Errorf("workload: perRound %d must be >= 1", perRound)
	}
	var out []Arrival
	for r := int64(0); r < rounds; r++ {
		for _, node := range ingress {
			tasks := make([]load.Task, perRound)
			for i := range tasks {
				tasks[i] = load.Task{Weight: 1}
			}
			out = append(out, Arrival{Round: start + r, Node: node, Tasks: tasks})
		}
	}
	return out, nil
}

// RandomSpeeds draws speeds uniformly from {1..maxSpeed}.
func RandomSpeeds(n int, maxSpeed int64, rng *rand.Rand) (load.Speeds, error) {
	if maxSpeed < 1 {
		return nil, fmt.Errorf("workload: maxSpeed %d must be >= 1", maxSpeed)
	}
	s := make(load.Speeds, n)
	for i := range s {
		s[i] = 1 + rng.Int63n(maxSpeed)
	}
	return s, nil
}

// TieredSpeeds assigns speed fast to the first n/2 nodes and 1 to the rest,
// modelling a two-tier heterogeneous cluster.
func TieredSpeeds(n int, fast int64) (load.Speeds, error) {
	if fast < 1 {
		return nil, fmt.Errorf("workload: fast speed %d must be >= 1", fast)
	}
	s := make(load.Speeds, n)
	for i := range s {
		if i < n/2 {
			s[i] = fast
		} else {
			s[i] = 1
		}
	}
	return s, nil
}
