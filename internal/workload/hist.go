package workload

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	histBuckets = 96
	histBaseNs  = 1e3  // first bucket starts at 1µs
	histGrowth  = 1.25 // geometric bucket width
)

// LatencyHist is a fixed-size geometric histogram of durations, safe for
// concurrent Record: p50/p95/p99 reporting for a load driver without
// retaining every sample. Buckets span ~1µs to ~30min; quantiles carry
// the bucket's relative error (±12%).
type LatencyHist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns < histBaseNs {
		return 0
	}
	idx := int(math.Log(ns/histBaseNs) / math.Log(histGrowth))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Record adds one sample.
func (h *LatencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		cur := h.maxNs.Load()
		if d.Nanoseconds() <= cur || h.maxNs.CompareAndSwap(cur, d.Nanoseconds()) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Mean returns the mean sample.
func (h *LatencyHist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max returns the largest recorded sample.
func (h *LatencyHist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile returns the q-quantile (q in [0,1]), e.g. 0.99 for p99. The
// value is the geometric midpoint of the bucket holding the quantile
// sample. Concurrent Records make the answer approximate, which is fine
// for progress reporting.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			lo := histBaseNs * math.Pow(histGrowth, float64(i))
			return time.Duration(lo * math.Sqrt(histGrowth))
		}
	}
	return h.Max()
}
