package workload

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// Pulse shapes the instantaneous rate of a TokenBucket over its period:
// given the phase in [0,1), it returns a multiplier in (0,1] applied to
// the base rate. Shapes never return 0 — the floor keeps the bucket
// refilling through a trough so waiters cannot stall forever.
type Pulse func(phase float64) float64

// PulseNames lists the shape names ParsePulse accepts.
func PulseNames() []string { return []string{"constant", "sine", "square", "sawtooth"} }

// ParsePulse builds a named pulse shape. floor is the trough multiplier
// in (0,1]; the crest is always 1.
//
//	constant: rate                      (floor ignored)
//	sine:     smooth swell between floor and 1
//	square:   crest for the first half period, floor for the second
//	sawtooth: ramp from floor up to 1 across the period, then drop
func ParsePulse(name string, floor float64) (Pulse, error) {
	if math.IsNaN(floor) || floor <= 0 || floor > 1 {
		return nil, fmt.Errorf("workload: pulse floor %v must be in (0,1]", floor)
	}
	span := 1 - floor
	switch name {
	case "constant":
		return func(float64) float64 { return 1 }, nil
	case "sine":
		return func(p float64) float64 { return floor + span*0.5*(1+math.Sin(2*math.Pi*p)) }, nil
	case "square":
		return func(p float64) float64 {
			if p < 0.5 {
				return 1
			}
			return floor
		}, nil
	case "sawtooth":
		return func(p float64) float64 { return floor + span*p }, nil
	default:
		return nil, fmt.Errorf("workload: unknown pulse shape %q (%s)", name, strings.Join(PulseNames(), "|"))
	}
}

// TokenBucket is a pulse-shaped token-bucket rate limiter: tokens accrue
// at rate·pulse(phase) per second up to a burst capacity, and Wait
// debits them. It limits the aggregate across concurrent waiters (each
// waiter blocks until the shared debt clears), which is the posture an
// ingest endpoint or a load generator wants.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // base (crest) tokens per second
	burst  float64 // bucket capacity
	period time.Duration
	pulse  Pulse
	tokens float64
	start  time.Time
	last   time.Time

	// Clock hooks for deterministic tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	// observer, when set, is told how long each successful Wait blocked
	// (zero when tokens were on hand). See SetWaitObserver.
	observer func(blocked time.Duration)
}

// SetWaitObserver installs fn, called after every successful Wait with
// the wall time the caller spent blocked on admission (zero when the
// bucket had tokens). Observability hook: lbserve feeds it into the
// ingest wait histogram, lbload into its pacer-wait accounting. Must be
// set before the bucket is shared across goroutines; a nil fn disables
// it.
func (b *TokenBucket) SetWaitObserver(fn func(blocked time.Duration)) {
	b.observer = fn
}

// NewTokenBucket builds a limiter admitting rate tokens/s (at the pulse
// crest) with the given burst capacity. pulse may be nil for a constant
// rate; period is the pulse cycle length. The bucket starts full.
func NewTokenBucket(rate float64, burst int, pulse Pulse, period time.Duration) (*TokenBucket, error) {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return nil, fmt.Errorf("workload: token bucket rate %v must be positive and finite", rate)
	}
	if burst < 1 {
		return nil, fmt.Errorf("workload: token bucket burst %d must be >= 1", burst)
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: token bucket period %v must be positive", period)
	}
	if pulse == nil {
		pulse = func(float64) float64 { return 1 }
	}
	b := &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		period: period,
		pulse:  pulse,
		tokens: float64(burst),
		now:    time.Now,
		sleep:  sleepCtx,
	}
	b.start = b.now()
	b.last = b.start
	return b, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// phaseAt maps a wall time onto the pulse cycle.
func (b *TokenBucket) phaseAt(t time.Time) float64 {
	el := t.Sub(b.start) % b.period
	if el < 0 {
		el += b.period
	}
	return float64(el) / float64(b.period)
}

// RateAt returns the shaped instantaneous admission rate at time t.
func (b *TokenBucket) RateAt(t time.Time) float64 {
	return b.rate * b.pulse(b.phaseAt(t))
}

// refillLocked integrates the shaped rate over [last, now]. The interval
// is sliced so a crest or trough inside it contributes proportionally
// (midpoint rule, at least 32 slices per period crossed).
func (b *TokenBucket) refillLocked(now time.Time) {
	if !now.After(b.last) {
		return
	}
	elapsed := now.Sub(b.last)
	slices := int(elapsed/(b.period/32)) + 1
	if slices > 64 {
		slices = 64
	}
	step := elapsed.Seconds() / float64(slices)
	for k := 0; k < slices; k++ {
		mid := b.last.Add(time.Duration((float64(k) + 0.5) * step * float64(time.Second)))
		b.tokens += b.rate * b.pulse(b.phaseAt(mid)) * step
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Wait blocks until n tokens have been admitted or the context ends. n
// may exceed the burst capacity; the call then spans several refill
// windows. On a context error the not-yet-accrued part of the debit is
// refunded. It implements engine.Limiter.
func (b *TokenBucket) Wait(ctx context.Context, n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	b.mu.Lock()
	b.refillLocked(b.now())
	b.tokens -= float64(n)
	deficit := -b.tokens
	b.mu.Unlock()
	var t0 time.Time
	if b.observer != nil {
		t0 = b.now()
	}
	for deficit > 0 {
		// Estimate the wait from the current instantaneous rate, but
		// re-check at least a few times per period so the estimate tracks
		// the pulse, and never spin hotter than 100µs.
		d := time.Duration(deficit / b.RateAt(b.now()) * float64(time.Second))
		if max := b.period / 8; d > max {
			d = max
		}
		if d < 100*time.Microsecond {
			d = 100 * time.Microsecond
		}
		if err := b.sleep(ctx, d); err != nil {
			// Refund at most this waiter's own debit: the shared deficit
			// may include other waiters' debt (best-effort under
			// concurrent cancellation).
			refund := math.Min(float64(n), deficit)
			b.mu.Lock()
			b.tokens += refund
			b.mu.Unlock()
			return err
		}
		b.mu.Lock()
		b.refillLocked(b.now())
		deficit = -b.tokens
		b.mu.Unlock()
	}
	if b.observer != nil {
		b.observer(b.now().Sub(t0))
	}
	return nil
}
