package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/load"
)

func TestPointMass(t *testing.T) {
	x, err := PointMass(4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.Total() != 100 || x[2] != 100 {
		t.Errorf("PointMass = %v", x)
	}
	if _, err := PointMass(4, 10, 4); err == nil {
		t.Error("node out of range should error")
	}
	if _, err := PointMass(4, -1, 0); err == nil {
		t.Error("negative load should error")
	}
}

func TestUniformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := UniformRandom(8, 1000, rng)
	if x.Total() != 1000 {
		t.Errorf("Total = %d, want 1000", x.Total())
	}
	if x.HasNegative() {
		t.Error("uniform random should be non-negative")
	}
	nonzero := 0
	for _, v := range x {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Error("1000 tokens over 8 nodes should hit several nodes")
	}
}

func TestBipartition(t *testing.T) {
	g, err := graph.Path(6)
	if err != nil {
		t.Fatal(err)
	}
	x := Bipartition(g, 90, 2) // nodes 0,1,2 within radius 2
	if x.Total() != 90 {
		t.Errorf("Total = %d, want 90", x.Total())
	}
	if x[0] != 30 || x[1] != 30 || x[2] != 30 {
		t.Errorf("Bipartition = %v, want 30 on nodes 0..2", x)
	}
	if x[3] != 0 || x[5] != 0 {
		t.Errorf("nodes outside radius should be empty: %v", x)
	}
	// Remainder distribution.
	y := Bipartition(g, 10, 1) // nodes 0,1 => 5 each
	if y[0]+y[1] != 10 {
		t.Errorf("remainder not distributed: %v", y)
	}
}

func TestSkewed(t *testing.T) {
	x := Skewed(5, 100)
	if x.Total() != 100 {
		t.Errorf("Total = %d, want 100", x.Total())
	}
	if x[0] < x[4] {
		t.Errorf("Skewed should be non-increasing-ish: %v", x)
	}
}

func TestAddFloor(t *testing.T) {
	s := load.Speeds{1, 2}
	out, err := AddFloor(load.Vector{5, 0}, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 6 {
		t.Errorf("AddFloor = %v, want [8 6]", out)
	}
	if _, err := AddFloor(load.Vector{1}, s, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRandomWeightedTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := RandomWeightedTasks(6, 200, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.CountTasks() != 200 {
		t.Errorf("CountTasks = %d, want 200", d.CountTasks())
	}
	for _, tasks := range d {
		for _, task := range tasks {
			if task.Weight < 1 || task.Weight > 5 {
				t.Fatalf("task weight %d out of [1,5]", task.Weight)
			}
		}
	}
	if _, err := RandomWeightedTasks(6, 10, 0, rng); err == nil {
		t.Error("wmax < 1 should error")
	}
}

func TestPointMassWeightedTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := PointMassWeightedTasks(5, 40, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(d[1]) != 40 {
		t.Errorf("node 1 has %d tasks, want 40", len(d[1]))
	}
	for i, tasks := range d {
		if i != 1 && len(tasks) != 0 {
			t.Errorf("node %d should be empty", i)
		}
	}
	if _, err := PointMassWeightedTasks(5, 10, 9, 3, rng); err == nil {
		t.Error("node out of range should error")
	}
	if _, err := PointMassWeightedTasks(5, 10, 0, 0, rng); err == nil {
		t.Error("wmax < 1 should error")
	}
}

func TestFloorTasks(t *testing.T) {
	dist := load.TaskDist{{{Weight: 4}}, {}}
	s := load.Speeds{2, 3}
	out, err := FloorTasks(dist, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 1+4 {
		t.Errorf("node 0 has %d tasks, want 5", len(out[0]))
	}
	if len(out[1]) != 6 {
		t.Errorf("node 1 has %d tasks, want 6", len(out[1]))
	}
	loads := out.Loads()
	if loads[0] != 8 || loads[1] != 6 {
		t.Errorf("loads = %v, want [8 6]", loads)
	}
	// Original untouched.
	if len(dist[0]) != 1 {
		t.Error("FloorTasks must not mutate its input")
	}
	if _, err := FloorTasks(load.TaskDist{{}}, s, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDummyFloorTasks(t *testing.T) {
	dist := load.TaskDist{{{Weight: 4}}, {}}
	s := load.Speeds{2, 3}
	out, err := DummyFloorTasks(dist, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := out.Loads()
	if loads[0] != 8 || loads[1] != 6 {
		t.Errorf("loads = %v, want [8 6]", loads)
	}
	real := out.LoadsExcludingDummies()
	if real[0] != 4 || real[1] != 0 {
		t.Errorf("real loads = %v, want [4 0]", real)
	}
	if _, err := DummyFloorTasks(load.TaskDist{{}}, s, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRandomSpeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := RandomSpeeds(50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v < 1 || v > 4 {
			t.Fatalf("speed %d out of [1,4]", v)
		}
	}
	if _, err := RandomSpeeds(5, 0, rng); err == nil {
		t.Error("maxSpeed < 1 should error")
	}
}

func TestTieredSpeeds(t *testing.T) {
	s, err := TieredSpeeds(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := load.Speeds{4, 4, 4, 1, 1, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("TieredSpeeds = %v, want %v", s, want)
			break
		}
	}
	if _, err := TieredSpeeds(6, 0); err == nil {
		t.Error("fast < 1 should error")
	}
}

// Property: every generator conserves the requested total load.
func TestGeneratorsConserveTotalProperty(t *testing.T) {
	f := func(seed int64, mRaw uint16) bool {
		m := int64(mRaw)
		rng := rand.New(rand.NewSource(seed))
		if UniformRandom(7, m, rng).Total() != m {
			return false
		}
		if Skewed(7, m).Total() != m {
			return false
		}
		pm, err := PointMass(7, m, int(uint64(seed)%7))
		if err != nil || pm.Total() != m {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPoissonBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arr, err := PoissonBursts(100, 50, 2.0, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected bursts ~ 50*2 = 100; allow a wide band.
	if len(arr) < 40 || len(arr) > 200 {
		t.Fatalf("got %d bursts, want ~100", len(arr))
	}
	for _, a := range arr {
		if a.Round < 0 || a.Round >= 50 {
			t.Fatalf("burst round %d out of range", a.Round)
		}
		if a.Node < 0 || a.Node >= 100 {
			t.Fatalf("burst node %d out of range", a.Node)
		}
		if len(a.Tasks) != 10 {
			t.Fatalf("burst size %d, want 10", len(a.Tasks))
		}
		for _, q := range a.Tasks {
			if q.Weight < 1 || q.Weight > 3 || q.Dummy {
				t.Fatalf("bad burst task %+v", q)
			}
		}
	}
	// Zero rate produces no bursts; invalid parameters fail.
	if arr, err := PoissonBursts(10, 20, 0, 5, 1, rng); err != nil || len(arr) != 0 {
		t.Fatalf("zero rate: %v, %d bursts", err, len(arr))
	}
	for name, call := range map[string]func() ([]Arrival, error){
		"no-nodes":  func() ([]Arrival, error) { return PoissonBursts(0, 10, 1, 5, 1, rng) },
		"neg-rate":  func() ([]Arrival, error) { return PoissonBursts(10, 10, -1, 5, 1, rng) },
		"zero-size": func() ([]Arrival, error) { return PoissonBursts(10, 10, 1, 0, 1, rng) },
		"bad-wmax":  func() ([]Arrival, error) { return PoissonBursts(10, 10, 1, 5, 0, rng) },
	} {
		if _, err := call(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestHotspotIngress(t *testing.T) {
	arr, err := HotspotIngress([]int{3, 7}, 5, 4, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 8 { // 4 rounds x 2 ingress nodes
		t.Fatalf("got %d arrivals, want 8", len(arr))
	}
	var total int64
	for _, a := range arr {
		if a.Round < 5 || a.Round >= 9 {
			t.Fatalf("arrival round %d out of [5,9)", a.Round)
		}
		if a.Node != 3 && a.Node != 7 {
			t.Fatalf("arrival node %d", a.Node)
		}
		for _, q := range a.Tasks {
			if q.Weight != 1 || q.Dummy {
				t.Fatalf("bad task %+v", q)
			}
			total += q.Weight
		}
	}
	if total != 8*6 {
		t.Fatalf("total arrived weight %d, want 48", total)
	}
	if _, err := HotspotIngress(nil, 0, 1, 1, 10); err == nil {
		t.Error("empty ingress accepted")
	}
	if _, err := HotspotIngress([]int{10}, 0, 1, 1, 10); err == nil {
		t.Error("out-of-range ingress accepted")
	}
	if _, err := HotspotIngress([]int{0}, 0, 1, 0, 10); err == nil {
		t.Error("zero perRound accepted")
	}
}
