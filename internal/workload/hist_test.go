package workload

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	// 1000 samples spread uniformly over [1ms, 1000ms]: the q-quantile of
	// the population is q*1000ms, and the histogram answer must land
	// within its geometric bucket error (±12%) plus the sample spacing.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("Max = %v, want 1s", h.Max())
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got := h.Quantile(q).Seconds()
		want := q * 1.0
		if got < want*0.80 || got > want*1.25 {
			t.Fatalf("Quantile(%v) = %vs, want within 25%% of %vs", q, got, want)
		}
	}
	mean := h.Mean().Seconds()
	if mean < 0.45 || mean > 0.56 {
		t.Fatalf("Mean = %vs, want ~0.5s", mean)
	}
	// Quantile clamps out-of-range q instead of misindexing.
	if h.Quantile(-1) == 0 && h.Count() > 0 {
		t.Fatal("Quantile(-1) must clamp to the minimum sample bucket, not 0")
	}
	if h.Quantile(2) < h.Quantile(0.5) {
		t.Fatal("Quantile(2) must clamp to the maximum")
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	got := h.Quantile(0.5)
	if got < 800*time.Microsecond || got > 1300*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want ~1ms", got)
	}
}
