package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/wire"
)

// ScenarioParams configures a scenario instance against one target
// engine. Zero fields take the documented defaults.
type ScenarioParams struct {
	// Nodes are the active node ids of the target engine (e.g. the
	// node_ids of GET /snapshot?loads=1). Required.
	Nodes []int
	// Seed fixes the generator stream: identical params produce the
	// identical event sequence, independent of GOMAXPROCS or wall clock.
	Seed int64
	// Tokens is the mean arrival batch size in tasks (default 4).
	Tokens int
	// Wmax draws per-arrival task weights uniformly from {1..Wmax}
	// (default 1, i.e. unit tokens).
	Wmax int64
	// Hotspots sizes the hot ingress set of the "hotspot" scenario
	// (default max(1, len(Nodes)/64)).
	Hotspots int
	// HotFraction is the share of arrivals landing on the hot set in the
	// "hotspot" scenario (default 0.9).
	HotFraction float64
	// BurstEvery is the number of events between pulse bursts in the
	// "burst" and "quiescent" scenarios (default 256); BurstFactor
	// scales one burst to Tokens·BurstFactor tasks (default 32).
	BurstEvery, BurstFactor int
	// ChurnEvery is the number of events between topology changes in the
	// "churn-storm" scenario (default 64).
	ChurnEvery int
}

// normalize applies defaults and validates.
func (p *ScenarioParams) normalize() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("workload: scenario needs at least one node")
	}
	if p.Tokens == 0 {
		p.Tokens = 4
	}
	if p.Tokens < 1 {
		return fmt.Errorf("workload: scenario tokens %d must be >= 1", p.Tokens)
	}
	if p.Wmax == 0 {
		p.Wmax = 1
	}
	if p.Wmax < 1 {
		return fmt.Errorf("workload: scenario wmax %d must be >= 1", p.Wmax)
	}
	if p.Hotspots == 0 {
		p.Hotspots = len(p.Nodes) / 64
		if p.Hotspots < 1 {
			p.Hotspots = 1
		}
	}
	if p.Hotspots < 1 || p.Hotspots > len(p.Nodes) {
		return fmt.Errorf("workload: scenario hotspots %d out of range [1,%d]", p.Hotspots, len(p.Nodes))
	}
	if p.HotFraction == 0 {
		p.HotFraction = 0.9
	}
	if p.HotFraction < 0 || p.HotFraction > 1 {
		return fmt.Errorf("workload: scenario hot fraction %v out of range [0,1]", p.HotFraction)
	}
	if p.BurstEvery == 0 {
		p.BurstEvery = 256
	}
	if p.BurstEvery < 1 {
		return fmt.Errorf("workload: scenario burst interval %d must be >= 1", p.BurstEvery)
	}
	if p.BurstFactor == 0 {
		p.BurstFactor = 32
	}
	if p.BurstFactor < 1 {
		return fmt.Errorf("workload: scenario burst factor %d must be >= 1", p.BurstFactor)
	}
	if p.ChurnEvery == 0 {
		p.ChurnEvery = 64
	}
	if p.ChurnEvery < 1 {
		return fmt.Errorf("workload: scenario churn interval %d must be >= 1", p.ChurnEvery)
	}
	return nil
}

// Scenario generates the wire-event stream of one named workload for the
// streaming ingest path (POST /events/stream). A Scenario is meant to be
// driven by a single generator goroutine: Next is not safe for
// concurrent use — determinism comes from the single seeded stream, so a
// soak failure replays exactly from (name, params).
type Scenario interface {
	// Init prepares the generator; call it exactly once before Next.
	Init(p ScenarioParams) error
	// Next returns the next event of the infinite stream.
	Next() wire.Event
}

// ScenarioMaker constructs an uninitialized Scenario — the registry
// entry, in the style of YCSB named workloads.
type ScenarioMaker func() Scenario

// scenarioMakers is the named-scenario registry:
//
//	steady       arrival/completion pairs on uniform nodes, Poisson batch sizes
//	hotspot      most arrivals concentrated on a small hot ingress set
//	burst        steady traffic with a large arrival burst every BurstEvery events
//	churn-storm  steady traffic interleaved with node joins and leaves
//	quiescent    all traffic pinned to one focus node, re-picked with a small
//	             burst every BurstEvery events — the rest of the graph sleeps
//	ci-smoke     steady pinned to unit weights and 4-token batches (the CI scenario)
var scenarioMakers = map[string]ScenarioMaker{
	"steady":      func() Scenario { return &steadyScenario{} },
	"hotspot":     func() Scenario { return &hotspotScenario{} },
	"burst":       func() Scenario { return &burstScenario{} },
	"churn-storm": func() Scenario { return &churnScenario{} },
	"quiescent":   func() Scenario { return &quiescentScenario{} },
	"ci-smoke":    func() Scenario { return &steadyScenario{fixedTokens: 4, fixedWmax: 1} },
}

// NewScenario instantiates a registered scenario by name.
func NewScenario(name string) (Scenario, error) {
	mk, ok := scenarioMakers[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (%s)", name, strings.Join(ScenarioNames(), "|"))
	}
	return mk(), nil
}

// ScenarioNames lists the registered scenario names, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioMakers))
	for name := range scenarioMakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// pairPump is the shared core of the traffic scenarios: it emits
// arrival/completion pairs that keep the target's total load roughly
// flat. Arrivals add Poisson-sized batches (mean Tokens, min 1) and a
// matching completion is issued once at least Tokens arrived tasks are
// outstanding, so long runs neither drain nor flood the engine. (A
// completion landing on a near-empty node removes fewer tasks than
// requested; balancing keeps that rare, so residual drift is small and
// upward-bounded.)
type pairPump struct {
	rng         *rand.Rand
	nodes       []int
	tokens      int
	wmax        int64
	outstanding int
}

func (p *pairPump) init(sp ScenarioParams) {
	p.rng = rand.New(rand.NewSource(sp.Seed))
	p.nodes = append([]int(nil), sp.Nodes...)
	p.tokens = sp.Tokens
	p.wmax = sp.Wmax
}

func (p *pairPump) pick() int { return p.nodes[p.rng.Intn(len(p.nodes))] }

// arrivalAt emits a Poisson-sized arrival batch on the given node.
func (p *pairPump) arrivalAt(node int) wire.Event {
	k := poisson(float64(p.tokens)-1, p.rng) + 1
	return p.arrivalSized(node, k)
}

func (p *pairPump) arrivalSized(node, k int) wire.Event {
	p.outstanding += k
	ev := wire.Event{Kind: "arrival", Node: node, Tokens: k, Weight: 1}
	if p.wmax > 1 {
		ev.Weight = 1 + p.rng.Int63n(p.wmax)
	}
	return ev
}

func (p *pairPump) wantCompletion() bool { return p.outstanding >= p.tokens }

// completion retires up to Tokens outstanding tasks at a random node.
func (p *pairPump) completion() wire.Event {
	return p.completionAt(p.pick())
}

// completionAt retires up to Tokens outstanding tasks at the given node.
func (p *pairPump) completionAt(node int) wire.Event {
	n := p.tokens
	if n > p.outstanding {
		n = p.outstanding
	}
	p.outstanding -= n
	return wire.Event{Kind: "completion", Node: node, Count: n}
}

// steadyScenario is balanced uniform traffic; fixed* pin params for the
// "ci-smoke" registration.
type steadyScenario struct {
	pairPump
	fixedTokens int
	fixedWmax   int64
}

func (s *steadyScenario) Init(p ScenarioParams) error {
	if err := p.normalize(); err != nil {
		return err
	}
	if s.fixedTokens > 0 {
		p.Tokens = s.fixedTokens
	}
	if s.fixedWmax > 0 {
		p.Wmax = s.fixedWmax
	}
	s.init(p)
	return nil
}

func (s *steadyScenario) Next() wire.Event {
	if s.wantCompletion() {
		return s.completion()
	}
	return s.arrivalAt(s.pick())
}

// hotspotScenario concentrates HotFraction of the arrivals on a small
// hot ingress set; completions stay uniform, so the balancer must move
// the hot mass out continuously.
type hotspotScenario struct {
	pairPump
	hot     []int
	hotFrac float64
}

func (s *hotspotScenario) Init(p ScenarioParams) error {
	if err := p.normalize(); err != nil {
		return err
	}
	s.init(p)
	shuffled := append([]int(nil), s.nodes...)
	s.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	s.hot = shuffled[:p.Hotspots]
	s.hotFrac = p.HotFraction
	return nil
}

func (s *hotspotScenario) Next() wire.Event {
	if s.wantCompletion() {
		return s.completion()
	}
	node := s.pick()
	if s.rng.Float64() < s.hotFrac {
		node = s.hot[s.rng.Intn(len(s.hot))]
	}
	return s.arrivalAt(node)
}

// burstScenario is steady traffic with a Tokens·BurstFactor arrival
// pulse every BurstEvery events; the pump's completion pressure then
// drains the spike over the following events.
type burstScenario struct {
	pairPump
	every, factor int
	count         int
}

func (s *burstScenario) Init(p ScenarioParams) error {
	if err := p.normalize(); err != nil {
		return err
	}
	s.init(p)
	s.every = p.BurstEvery
	s.factor = p.BurstFactor
	return nil
}

func (s *burstScenario) Next() wire.Event {
	s.count++
	if s.count%s.every == 0 {
		return s.arrivalSized(s.pick(), s.tokens*s.factor)
	}
	if s.wantCompletion() {
		return s.completion()
	}
	return s.arrivalAt(s.pick())
}

// quiescentScenario is the activity-gate workload: every event targets a
// single focus node, so a gated engine keeps the rest of the graph
// asleep and the hot frontier is one small ball. Every BurstEvery events
// the focus moves to a fresh node with a Tokens·BurstFactor arrival
// burst — a localized pulse the balancer spreads and re-quiesces —
// and between pulses small arrival/completion pairs at the focus keep
// the load flat without waking anything else. Against lbserve -rate
// this produces long idle stretches (zero hot edges between ticks)
// punctuated by short balancing flurries.
type quiescentScenario struct {
	pairPump
	every, factor int
	count         int
	focus         int
}

func (s *quiescentScenario) Init(p ScenarioParams) error {
	if err := p.normalize(); err != nil {
		return err
	}
	s.init(p)
	s.every = p.BurstEvery
	s.factor = p.BurstFactor
	s.focus = s.pick()
	return nil
}

func (s *quiescentScenario) Next() wire.Event {
	s.count++
	if s.count%s.every == 0 {
		s.focus = s.pick()
		return s.arrivalSized(s.focus, s.tokens*s.factor)
	}
	if s.wantCompletion() {
		return s.completionAt(s.focus)
	}
	return s.arrivalAt(s.focus)
}

// churnScenario interleaves steady traffic with topology churn: every
// ChurnEvery events it alternates a node join and a node leave. The
// generator only ever targets nodes it has tracked since Init — a join's
// slot id is assigned server-side and never targeted, and a left node is
// dropped from the tracked set — so every emitted event is valid against
// the engine regardless of slot recycling. At most half of the initial
// nodes ever leave.
type churnScenario struct {
	pairPump
	every  int
	floor  int
	count  int
	churns int
}

func (s *churnScenario) Init(p ScenarioParams) error {
	if err := p.normalize(); err != nil {
		return err
	}
	s.init(p)
	s.every = p.ChurnEvery
	s.floor = len(s.nodes) / 2
	if s.floor < 2 {
		s.floor = 2
	}
	return nil
}

func (s *churnScenario) Next() wire.Event {
	s.count++
	if s.count%s.every == 0 {
		s.churns++
		if s.churns%2 == 0 && len(s.nodes) > s.floor {
			idx := s.rng.Intn(len(s.nodes))
			node := s.nodes[idx]
			s.nodes[idx] = s.nodes[len(s.nodes)-1]
			s.nodes = s.nodes[:len(s.nodes)-1]
			return wire.Event{Kind: "leave", Node: node}
		}
		k := 2 + s.rng.Intn(2)
		if k > len(s.nodes) {
			k = len(s.nodes)
		}
		peers := make([]int, 0, k)
		for len(peers) < k {
			c := s.pick()
			dup := false
			for _, q := range peers {
				if q == c {
					dup = true
					break
				}
			}
			if !dup {
				peers = append(peers, c)
			}
		}
		return wire.Event{Kind: "join", Speed: 1 + s.rng.Int63n(4), Peers: peers}
	}
	if s.wantCompletion() {
		return s.completion()
	}
	return s.arrivalAt(s.pick())
}
