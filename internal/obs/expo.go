package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: the metric name, the rendered
// label set (canonical `{k="v",...}` form, "" when empty) and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// ParseExposition parses and validates Prometheus text exposition format
// (version 0.0.4), returning every sample line. It enforces the pieces a
// scraper relies on: identifier syntax, TYPE declared before a family's
// samples, sample names matching a declared family (histogram samples via
// the _bucket/_sum/_count suffixes), parseable values, and — for every
// histogram series — cumulative non-decreasing buckets ending in a
// le="+Inf" bucket that equals the series' _count.
func ParseExposition(raw []byte) ([]Sample, error) {
	types := make(map[string]string)
	var samples []Sample
	// histogram bookkeeping per series (family + labels without le)
	hBuckets := make(map[string][]bucketSample)
	hCounts := make(map[string]float64)
	hSeen := make(map[string]bool)

	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "TYPE" {
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				typ := line[strings.LastIndexByte(line, ' ')+1:]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				types[name] = typ
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := familyOf(s.Name, types)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
		}
		if types[fam] == "histogram" {
			key := fam + "|" + stripLabel(s.Labels, "le")
			hSeen[key] = true
			switch suffix {
			case "_bucket":
				le, ok := labelValue(s.Labels, "le")
				if !ok {
					return nil, fmt.Errorf("line %d: %s_bucket without le label", lineNo, fam)
				}
				bound, err := parseLe(le)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				hBuckets[key] = append(hBuckets[key], bucketSample{bound: bound, cum: s.Value})
			case "_count":
				hCounts[key] = s.Value
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key := range hSeen {
		buckets := hBuckets[key]
		name := key[:strings.IndexByte(key, '|')]
		if len(buckets) == 0 {
			return nil, fmt.Errorf("histogram %s has no _bucket samples", name)
		}
		last := buckets[len(buckets)-1]
		if !math.IsInf(last.bound, 1) {
			return nil, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", name)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].bound <= buckets[i-1].bound {
				return nil, fmt.Errorf("histogram %s buckets not increasing", name)
			}
			if buckets[i].cum < buckets[i-1].cum {
				return nil, fmt.Errorf("histogram %s bucket counts not cumulative", name)
			}
		}
		if count, ok := hCounts[key]; ok && count != last.cum {
			return nil, fmt.Errorf("histogram %s _count %v != +Inf bucket %v", name, count, last.cum)
		}
	}
	return samples, nil
}

// ValidateExposition checks that raw parses as valid exposition text.
func ValidateExposition(raw []byte) error {
	_, err := ParseExposition(raw)
	return err
}

// SampleMap parses exposition text into a map keyed by the full series
// string (name plus canonical labels, e.g.
// `engine_step_stage_seconds_sum{stage="round_decide"}`).
func SampleMap(raw []byte) (map[string]float64, error) {
	samples, err := ParseExposition(raw)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name+s.Labels] = s.Value
	}
	return m, nil
}

type bucketSample struct {
	bound float64
	cum   float64
}

func parseComment(line string) (kind, name string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "#" {
		return "", "", nil // free-form comment
	}
	switch fields[1] {
	case "HELP", "TYPE":
		if len(fields) < 3 || !nameOK(fields[2]) {
			return "", "", fmt.Errorf("malformed %s comment %q", fields[1], line)
		}
		if fields[1] == "TYPE" && len(fields) != 4 {
			return "", "", fmt.Errorf("malformed TYPE comment %q", line)
		}
		return fields[1], fields[2], nil
	default:
		return "", "", nil
	}
}

// parseSampleLine splits `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !nameOK(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels = rest[:end]
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: expected value [timestamp], got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: %w", s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// scanLabels validates a `{k="v",...}` block starting at s[0]=='{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) || !labelOK(s[i:j]) {
			return 0, fmt.Errorf("bad label key in %q", s)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", v)
	}
	return f, nil
}

func parseLe(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", le)
	}
	return f, nil
}

// FamilyOf maps a series name to its metric family under the text
// format's suffix conventions: _bucket/_sum/_count are stripped,
// anything else is its own family. It is a heuristic for callers
// without the TYPE declarations in hand (lbcheck's -require matching);
// a non-histogram family whose name ends in one of those suffixes would
// be folded into its prefix.
func FamilyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && base != "" {
			return base
		}
	}
	return name
}

// familyOf maps a sample name to its declared family: exact match, or for
// histograms the name with a recognized suffix stripped.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if ok {
			if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
				return base, suf
			}
		}
	}
	return "", ""
}

// labelValue extracts one label's (unescaped) value from a canonical
// rendered label set.
func labelValue(labels, key string) (string, bool) {
	for _, kv := range splitLabels(labels) {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			v = strings.Trim(v, `"`)
			v = strings.ReplaceAll(v, `\"`, `"`)
			v = strings.ReplaceAll(v, `\n`, "\n")
			return strings.ReplaceAll(v, `\\`, `\`), true
		}
	}
	return "", false
}

// stripLabel removes one key from a rendered label set (for grouping
// histogram buckets with their _sum/_count series).
func stripLabel(labels, key string) string {
	kvs := splitLabels(labels)
	kept := kvs[:0]
	for _, kv := range kvs {
		if k, _, ok := strings.Cut(kv, "="); !ok || k != key {
			kept = append(kept, kv)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// splitLabels splits a rendered `{k="v",...}` set on commas outside
// quotes.
func splitLabels(labels string) []string {
	if len(labels) < 2 {
		return nil
	}
	inner := labels[1 : len(labels)-1]
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		out = append(out, inner[start:])
	}
	return out
}
