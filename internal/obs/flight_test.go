package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestFlightRecorderFillAndEvict(t *testing.T) {
	r := NewFlightRecorder[int](4)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty Len = %d", got)
	}
	for i := 1; i <= 3; i++ {
		r.Append(i)
	}
	if got := r.Records(0); !equalInts(got, []int{1, 2, 3}) {
		t.Fatalf("partial ring = %v", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("dropped = %d before eviction", got)
	}
	for i := 4; i <= 6; i++ {
		r.Append(i)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("full Len = %d, want 4", got)
	}
	if got := r.Records(0); !equalInts(got, []int{3, 4, 5, 6}) {
		t.Fatalf("evicted ring = %v, want [3 4 5 6]", got)
	}
	if got := r.Records(2); !equalInts(got, []int{5, 6}) {
		t.Fatalf("Records(2) = %v, want the newest two oldest-first", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

func TestFlightRecorderMinCapacity(t *testing.T) {
	r := NewFlightRecorder[string](0)
	r.Append("a")
	r.Append("b")
	if got := r.Records(0); len(got) != 1 || got[0] != "b" {
		t.Fatalf("capacity-clamped ring = %v, want [b]", got)
	}
}

func TestFlightRecorderDumpJSONL(t *testing.T) {
	type rec struct {
		Seq  int    `json:"seq"`
		Note string `json:"note"`
	}
	r := NewFlightRecorder[rec](8)
	for i := 0; i < 5; i++ {
		r.Append(rec{Seq: i, Note: "n"})
	}
	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf, 3); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	want := 2 // newest three are seq 2,3,4, oldest first
	for sc.Scan() {
		var got rec
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if got.Seq != want {
			t.Fatalf("seq = %d, want %d", got.Seq, want)
		}
		want++
	}
	if want != 5 {
		t.Fatalf("dumped %d records, want 3", want-2)
	}
}

// TestFlightRecorderConcurrent races appends against dumps; with -race
// this is the locking proof, and the totals prove no append was lost.
func TestFlightRecorderConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 1000
	r := NewFlightRecorder[int](64)
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = r.Records(0)
			_ = r.DumpJSONL(&bytes.Buffer{}, 16)
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Append(i)
			}
		}()
	}
	wg.Wait()
	close(done)
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want the full capacity", got)
	}
	if got := r.Dropped(); got != goroutines*perG-64 {
		t.Fatalf("dropped = %d, want %d", got, goroutines*perG-64)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
