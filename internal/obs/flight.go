package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// FlightRecorder is a bounded ring of recent records — the black box a
// long-running daemon dumps after (or during) an incident. Appends evict
// the oldest record once the capacity is reached, so memory stays fixed no
// matter how long the process runs. It is internally locked: appends from
// a hot loop and dumps from an HTTP handler may race freely.
type FlightRecorder[T any] struct {
	mu      sync.Mutex
	buf     []T
	next    int
	full    bool
	dropped int64
}

// NewFlightRecorder returns a recorder holding the last capacity records
// (minimum 1).
func NewFlightRecorder[T any](capacity int) *FlightRecorder[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder[T]{buf: make([]T, capacity)}
}

// Append records one entry, evicting the oldest when full.
func (r *FlightRecorder[T]) Append(rec T) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of buffered records.
func (r *FlightRecorder[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *FlightRecorder[T]) lenLocked() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many records have been evicted so far.
func (r *FlightRecorder[T]) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Records returns up to max records, oldest first (all buffered records
// when max <= 0).
func (r *FlightRecorder[T]) Records(max int) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	if max > 0 && max < n {
		n = max
	}
	out := make([]T, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for k := 0; k < n; k++ {
		out = append(out, r.buf[(start+k)%len(r.buf)])
	}
	return out
}

// DumpJSONL writes up to max records (all when max <= 0) as one JSON
// object per line, oldest first. The snapshot is taken atomically; the
// encoding happens outside the lock.
func (r *FlightRecorder[T]) DumpJSONL(w io.Writer, max int) error {
	recs := r.Records(max)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
