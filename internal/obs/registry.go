// Package obs is the repo's zero-dependency observability layer: a small
// metrics registry (counters, gauges, fixed-bucket histograms) rendered in
// the Prometheus text exposition format, plus a bounded generic flight
// recorder for recent-history dumps.
//
// The instruments are built for hot paths: a Counter or Gauge update is
// one atomic operation, a Histogram observation is a binary search over a
// fixed bucket table plus two atomics, and none of them allocate. All
// instruments are safe for concurrent use; the registry lock is taken only
// at registration and exposition time, never on the update path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds delta (CAS loop; Set is cheaper when the absolute value is
// known).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are the
// Prometheus convention: counts[i] tallies observations <= bounds[i], with
// one extra overflow bucket rendered as le="+Inf".
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64  // float64 bits
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; NaN lands in overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets returns the default histogram bounds for timings in
// seconds: 10µs to 100s, roughly 1-2.5-5 per decade — wide enough to span
// a microbenchmark round and a 100k-round /step request.
func DurationBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100,
	}
}

// series is one (labelset, instrument) pair of a family.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	inst   any    // *Counter, *Gauge or *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	bounds []float64
	series []*series
}

// Registry holds metric families in registration order. Instrument
// getters are idempotent: asking for an existing (name, labels) series
// returns the same instrument, so packages can re-derive handles instead
// of threading them around.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameOK  = mustMatcher("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:", "0123456789")
	labelOK = mustMatcher("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_", "0123456789")
)

// mustMatcher builds a validator for Prometheus identifiers: the first
// byte must be in head, later bytes in head+digits.
func mustMatcher(head, digits string) func(string) bool {
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			if strings.IndexByte(head, s[i]) < 0 && (i == 0 || strings.IndexByte(digits, s[i]) < 0) {
				return false
			}
		}
		return true
	}
}

// renderLabels produces the canonical `{k="v",...}` form ("" when empty).
// Values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup finds or creates the (family, series) pair, enforcing that a name
// is never reused with a different type or bucket layout. Registration
// errors are programmer errors, so they panic.
func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []Label) any {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelOK(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("obs: invalid label key %q on %s", l.Key, name))
		}
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	if typ == "histogram" && !sameBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
	}
	for _, s := range f.series {
		if s.labels == rendered {
			return s.inst
		}
	}
	var inst any
	switch typ {
	case "counter":
		inst = &Counter{}
	case "gauge":
		inst = &Gauge{}
	case "histogram":
		inst = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	f.series = append(f.series, &series{labels: rendered, inst: inst})
	return inst
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter series (name, labels), creating it on first
// use. Panics if name is already registered with a different type.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", nil, labels).(*Counter)
}

// Gauge returns the gauge series (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", nil, labels).(*Gauge)
}

// Histogram returns the histogram series (name, labels) with the given
// bucket upper bounds (nil means DurationBuckets). Bounds must be finite
// and strictly increasing; every series of a family shares one layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s bounds must be finite and strictly increasing", name))
		}
	}
	return r.lookup(name, help, "histogram", bounds, labels).(*Histogram)
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4). Instrument reads are
// atomic per value; a scrape concurrent with updates sees a consistent
// enough view (bucket counts may momentarily lag the sum, as with any
// lock-free histogram).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		for _, s := range f.series {
			switch inst := s.inst.(type) {
			case *Counter:
				b.WriteString(f.name)
				b.WriteString(s.labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(inst.Value(), 10))
				b.WriteByte('\n')
			case *Gauge:
				b.WriteString(f.name)
				b.WriteString(s.labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(inst.Value()))
				b.WriteByte('\n')
			case *Histogram:
				writeHistogram(&b, f.name, s.labels, inst)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count triple of one
// histogram series, splicing le into any existing label set.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	open, close := "{", "}"
	inner := ""
	if labels != "" {
		inner = labels[1:len(labels)-1] + ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s%sle=%q%s %d\n", name, open, inner, formatFloat(bound), close, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s%sle=\"+Inf\"%s %d\n", name, open, inner, close, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
