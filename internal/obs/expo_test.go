package obs

import (
	"strings"
	"testing"
)

const validExposition = `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total 42
# HELP temp_celsius Room temperature.
# TYPE temp_celsius gauge
temp_celsius{room="kitchen"} 21.5
temp_celsius{room="cellar"} -3
# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{le="0.25"} 1
req_seconds_bucket{le="1"} 2
req_seconds_bucket{le="+Inf"} 3
req_seconds_sum 2.75
req_seconds_count 3
`

func TestParseExpositionValid(t *testing.T) {
	samples, err := ParseExposition([]byte(validExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("parsed %d samples, want 8", len(samples))
	}
	m, err := SampleMap([]byte(validExposition))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		`jobs_total`:                  42,
		`temp_celsius{room="cellar"}`: -3,
		`req_seconds_bucket{le="1"}`:  2,
		`req_seconds_sum`:             2.75,
	}
	for key, want := range checks {
		got, ok := m[key]
		if !ok || got != want {
			t.Errorf("series %s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without TYPE", "orphan_total 1\n"},
		{"unknown type", "# TYPE x gadget\nx 1\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n"},
		{"bad value", "# TYPE x counter\nx notanumber\n"},
		{"bad name", "# TYPE x counter\nx{ 1\n"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"b\" 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_count 1\n"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"},
		{"buckets not increasing", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.text)); err == nil {
			t.Errorf("%s: validator accepted:\n%s", tc.name, tc.text)
		}
	}
}

func TestParseExpositionSpecialValues(t *testing.T) {
	text := "# TYPE g gauge\ng{k=\"a\"} +Inf\ng{k=\"b\"} -Inf\ng{k=\"c\"} NaN\n"
	samples, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
}

func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"engine_rounds_total":              "engine_rounds_total",
		"engine_step_seconds_bucket":       "engine_step_seconds",
		"engine_step_seconds_sum":          "engine_step_seconds",
		"engine_step_seconds_count":        "engine_step_seconds",
		"engine_step_stage_seconds_bucket": "engine_step_stage_seconds",
		"plain":                            "plain",
	}
	for name, want := range cases {
		if got := FamilyOf(name); got != want {
			t.Errorf("FamilyOf(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestRoundTrip renders a live registry and feeds the bytes back through
// the validator — the property the lbcheck CLI and the CI smoke rely on.
func TestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "test").Add(7)
	r.Gauge("rt_gauge", "test", Label{"shard", "0"}).Set(1.25)
	h := r.Histogram("rt_seconds", "test", nil)
	h.Observe(0.003)
	h.Observe(99)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := SampleMap([]byte(b.String()))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, b.String())
	}
	if got := m["rt_total"]; got != 7 {
		t.Errorf("rt_total = %v, want 7", got)
	}
	if got := m[`rt_seconds_count`]; got != 2 {
		t.Errorf("rt_seconds_count = %v, want 2", got)
	}
}
