package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas are ignored
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	g.Add(0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.SetInt(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %v, want -7", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_test", "test", []float64{1, 2, 4})
	for _, v := range []float64{-1, 1, 1.5, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 10.5 {
		t.Fatalf("sum = %v, want 10.5", got)
	}
}

// TestHistogramBucketBoundaries pins the le convention: an observation
// exactly at a bound counts in that bucket (le is <=), values below the
// first bound land in the first bucket, values above the last in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_bounds", "test", []float64{1, 2, 4})
	for _, v := range []float64{-1, 0, 1, 1.5, 2, 4, 4.5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	series, err := SampleMap([]byte(b.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, b.String())
	}
	want := map[string]float64{
		`h_bounds_bucket{le="1"}`:    3, // -1, 0, 1
		`h_bounds_bucket{le="2"}`:    5, // + 1.5, 2
		`h_bounds_bucket{le="4"}`:    6, // + 4
		`h_bounds_bucket{le="+Inf"}`: 7, // + 4.5
		`h_bounds_count`:             7,
	}
	for key, v := range want {
		if got := series[key]; got != v {
			t.Errorf("%s = %v, want %v\n%s", key, got, v, b.String())
		}
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_dur", "test", nil) // DurationBuckets
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); got != 0.25 {
		t.Fatalf("sum = %v, want 0.25", got)
	}
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestDurationBucketsIncreasing(t *testing.T) {
	b := DurationBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
}

// TestRegistryIdempotent checks that re-deriving a series handle returns
// the same instrument, the pattern the engine's hot path relies on.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c_total", "test")
	c2 := r.Counter("c_total", "other help is ignored")
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	g1 := r.Gauge("g", "test", Label{"k", "a"})
	g2 := r.Gauge("g", "test", Label{"k", "b"})
	if g1 == g2 {
		t.Fatal("distinct label values share an instrument")
	}
	if g3 := r.Gauge("g", "test", Label{"k", "a"}); g3 != g1 {
		t.Fatal("same labels returned a distinct gauge")
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("taken_total", "test")
	mustPanic(t, "type clash", func() { r.Gauge("taken_total", "test") })
	mustPanic(t, "invalid name", func() { r.Counter("bad-name", "test") })
	mustPanic(t, "leading digit", func() { r.Counter("0abc", "test") })
	mustPanic(t, "invalid label", func() { r.Counter("ok_total", "test", Label{"bad-key", "v"}) })
	mustPanic(t, "reserved le label", func() { r.Histogram("h", "test", nil, Label{"le", "1"}) })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h2", "test", []float64{2, 1}) })
	mustPanic(t, "duplicate bound", func() { r.Histogram("h3", "test", []float64{1, 1}) })
	mustPanic(t, "infinite bound", func() { r.Histogram("h4", "test", []float64{1, math.Inf(1)}) })
	r.Histogram("h5", "test", []float64{1, 2})
	mustPanic(t, "bucket clash", func() { r.Histogram("h5", "test", []float64{1, 2, 3}) })
}

// TestWritePrometheusGolden pins the exact exposition bytes for one
// registry: family ordering, HELP/TYPE comments, label rendering, and
// the cumulative histogram triple.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Add(3)
	g := r.Gauge("temp_celsius", "Room temperature.", Label{"room", "kitchen"})
	g.Set(21.5)
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.25, 1})
	for _, v := range []float64{0.25, 0.5, 2} {
		h.Observe(v)
	}
	hl := r.Histogram("route_seconds", "Per-route latency.", []float64{1}, Label{"route", "api"})
	hl.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total 3
# HELP temp_celsius Room temperature.
# TYPE temp_celsius gauge
temp_celsius{room="kitchen"} 21.5
# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{le="0.25"} 1
req_seconds_bucket{le="1"} 2
req_seconds_bucket{le="+Inf"} 3
req_seconds_sum 2.75
req_seconds_count 3
# HELP route_seconds Per-route latency.
# TYPE route_seconds histogram
route_seconds_bucket{route="api",le="1"} 1
route_seconds_bucket{route="api",le="+Inf"} 1
route_seconds_sum{route="api"} 0.5
route_seconds_count{route="api"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Errorf("golden output fails own validator: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "test", Label{"path", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series %q not found in:\n%s", want, b.String())
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Fatalf("escaped exposition invalid: %v", err)
	}
}

// TestRegistryConcurrent hammers every instrument kind from parallel
// goroutines — re-deriving handles through the registry each round —
// while a scraper renders continuously. Run under -race this is the
// lock-correctness proof; the final totals prove no update was lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const rounds = 2000

	done := make(chan struct{})
	scraped := make(chan error, 1)
	go func() {
		defer close(scraped)
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				scraped <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Counter("hammer_total", "test").Inc()
				r.Gauge("hammer_gauge", "test").Add(1)
				r.Histogram("hammer_seconds", "test", []float64{1, 2, 4}).Observe(float64(i % 4))
				r.Counter("hammer_labeled_total", "test", Label{"worker", string(rune('a' + id))}).Inc()
			}
		}(g)
	}
	wg.Wait()
	close(done)
	if err := <-scraped; err != nil {
		t.Fatalf("concurrent scrape failed: %v", err)
	}

	const total = goroutines * rounds
	if got := r.Counter("hammer_total", "test").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("hammer_gauge", "test").Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	h := r.Histogram("hammer_seconds", "test", []float64{1, 2, 4})
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Fatalf("final exposition invalid: %v\n%s", err, b.String())
	}
}
