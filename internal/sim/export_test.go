package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/load"
)

func TestWriteJSON(t *testing.T) {
	res := Result{
		Name:      "alg1(fos)",
		Rounds:    42,
		MaxMin:    3.5,
		MaxAvg:    2,
		Dummies:   7,
		FinalLoad: load.Vector{1, 2, 3},
		Trace:     []TracePoint{{Round: 10, MaxMin: 9, MaxAvg: 5, Dummies: 1}},
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got["name"] != "alg1(fos)" {
		t.Errorf("name = %v", got["name"])
	}
	if got["rounds"].(float64) != 42 {
		t.Errorf("rounds = %v", got["rounds"])
	}
	if got["maxMinDiscrepancy"].(float64) != 3.5 {
		t.Errorf("maxMin = %v", got["maxMinDiscrepancy"])
	}
	if _, ok := got["finalLoad"]; !ok {
		t.Error("finalLoad missing with includeLoad=true")
	}
	trace, ok := got["trace"].([]any)
	if !ok || len(trace) != 1 {
		t.Fatalf("trace = %v", got["trace"])
	}

	// Without load.
	buf.Reset()
	if err := res.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	var lean map[string]any
	if err := json.Unmarshal(buf.Bytes(), &lean); err != nil {
		t.Fatal(err)
	}
	if _, ok := lean["finalLoad"]; ok {
		t.Error("finalLoad present with includeLoad=false")
	}
}
