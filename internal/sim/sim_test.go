package sim

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

func torusSetup(t *testing.T) (*graph.Graph, load.Speeds, continuous.Alphas, load.Vector) {
	t.Helper()
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, a, x0
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{Rounds: 1}); err == nil {
		t.Error("nil process should error")
	}
	g, s, a, x0 := torusSetup(t)
	p, err := baseline.NewRoundDownDiffusion(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, Options{Rounds: -1}); err == nil {
		t.Error("negative rounds should error")
	}
}

func TestRunBasics(t *testing.T) {
	g, s, a, x0 := torusSetup(t)
	p, err := baseline.NewRoundDownDiffusion(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{Rounds: 50, TraceEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 50 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
	if res.Name != p.Name() {
		t.Errorf("Name = %q", res.Name)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace requested but empty")
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Round != 50 {
		t.Errorf("last trace round = %d, want 50", last.Round)
	}
	if res.FinalLoad.Total() != 1024 {
		t.Errorf("final total = %d", res.FinalLoad.Total())
	}
	if res.MaxMin < 0 || res.MaxAvg < 0 {
		t.Errorf("discrepancies negative: %v %v", res.MaxMin, res.MaxAvg)
	}
	// Discrepancy should shrink monotonically-ish from the point mass;
	// at least the last trace point must improve on the first.
	if res.Trace[0].MaxMin <= res.MaxMin {
		t.Errorf("no improvement: first %v, final %v", res.Trace[0].MaxMin, res.MaxMin)
	}
}

func TestRunZeroRounds(t *testing.T) {
	g, s, a, x0 := torusSetup(t)
	p, err := baseline.NewRoundDownDiffusion(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{Rounds: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Point mass: max makespan = 1024, average = 64 => max-avg = 960.
	if math.Abs(res.MaxAvg-960) > 1e-9 {
		t.Errorf("MaxAvg = %v, want 960", res.MaxAvg)
	}
}

// TestRunExcludesDummiesForAlg1: the measured discrepancy of Algorithm 1
// must be computed on the dummy-eliminated load.
func TestRunExcludesDummiesForAlg1(t *testing.T) {
	g, s, _, x0 := torusSetup(t)
	dist, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewFlowImitation(g, s, dist, continuous.FOSFactory(g, s, alpha), core.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Options{Rounds: 120, RealTotal: x0.Total()})
	if err != nil {
		t.Fatal(err)
	}
	want, err := load.MaxMinDiscrepancy(p.LoadExcludingDummies(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMin != want {
		t.Errorf("MaxMin = %v, want dummy-excluded %v", res.MaxMin, want)
	}
}

func TestTimeToBalance(t *testing.T) {
	g, s, a, x0 := torusSetup(t)
	factory := continuous.FOSFactory(g, s, a)
	bt, err := TimeToBalance(factory, x0.Float(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if bt <= 0 {
		t.Errorf("T = %d, want positive for a point mass", bt)
	}
	if _, err := TimeToBalance(factory, x0.Float(), 1); err == nil {
		t.Error("tiny budget should error")
	}
	badFactory := func(x []float64) (continuous.Process, error) {
		return continuous.NewFOS(g, s, a, x[:1])
	}
	if _, err := TimeToBalance(badFactory, x0.Float(), 10); err == nil {
		t.Error("factory failure should propagate")
	}
}

func TestAggregate(t *testing.T) {
	st := Aggregate([]float64{2, 4, 9})
	if st.Trials != 3 || st.Min != 2 || st.Max != 9 || math.Abs(st.Mean-5) > 1e-12 {
		t.Errorf("Aggregate = %+v", st)
	}
	empty := Aggregate(nil)
	if empty.Trials != 0 {
		t.Errorf("empty Aggregate = %+v", empty)
	}
}
