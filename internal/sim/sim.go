// Package sim runs discrete load balancing processes for a prescribed number
// of rounds (typically the continuous balancing time T^A), records
// discrepancy traces, and aggregates repeated seeded trials of randomized
// schemes into the max/mean statistics the experiments report.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/continuous"
	"repro/internal/load"
)

// Discrete is the common surface of every discrete balancing process in this
// repository (package core's Algorithms 1 and 2 and package baseline's prior
// schemes).
type Discrete interface {
	// Name identifies the scheme for reports.
	Name() string
	// Step executes one synchronous round.
	Step()
	// Load returns a copy of the current integer load vector.
	Load() load.Vector
	// Round returns the index of the next round to execute.
	Round() int
	// Speeds returns the node speeds.
	Speeds() load.Speeds
	// DummiesCreated returns the total weight drawn from an infinite
	// source so far (0 for schemes without one).
	DummiesCreated() int64
	// WentNegative reports whether any node ever held negative load.
	WentNegative() bool
}

// dummyExcluder is implemented by Algorithm 1, whose task objects let us
// eliminate dummy tokens exactly when measuring real load.
type dummyExcluder interface {
	LoadExcludingDummies() load.Vector
}

// TracePoint is one sampled point of a run.
type TracePoint struct {
	Round   int
	MaxMin  float64
	MaxAvg  float64
	Dummies int64
}

// Result summarizes one run of a discrete process.
type Result struct {
	// Name of the scheme.
	Name string
	// Rounds actually executed.
	Rounds int
	// FinalLoad is the load vector after the last round (dummies included).
	FinalLoad load.Vector
	// MaxMin is the final max-min discrepancy (max makespan − min makespan),
	// measured on the real load (dummies eliminated) when the scheme allows
	// it, otherwise on the full load.
	MaxMin float64
	// MaxAvg is the final max-avg discrepancy relative to the real total
	// weight W/S.
	MaxAvg float64
	// Dummies is the total dummy weight created.
	Dummies int64
	// WentNegative reports whether the scheme ever drove a node negative.
	WentNegative bool
	// Trace holds sampled discrepancies (empty unless requested).
	Trace []TracePoint
}

// Options configures a run.
type Options struct {
	// Rounds is the number of rounds to execute (required, >= 0).
	Rounds int
	// RealTotal is W, the total real task weight, used as the max-avg
	// reference. If zero it is taken from the initial load of the process.
	RealTotal int64
	// TraceEvery samples the discrepancy every TraceEvery rounds when
	// positive (plus the final round).
	TraceEvery int
}

// Run executes p for opts.Rounds rounds and summarizes the outcome.
func Run(p Discrete, opts Options) (Result, error) {
	if p == nil {
		return Result{}, errors.New("sim: nil process")
	}
	if opts.Rounds < 0 {
		return Result{}, fmt.Errorf("sim: negative round count %d", opts.Rounds)
	}
	s := p.Speeds()
	realTotal := opts.RealTotal
	if realTotal == 0 {
		realTotal = p.Load().Total()
	}
	res := Result{Name: p.Name(), Rounds: opts.Rounds}
	for t := 0; t < opts.Rounds; t++ {
		p.Step()
		if opts.TraceEvery > 0 && (t%opts.TraceEvery == 0 || t == opts.Rounds-1) {
			point, err := measure(p, s, realTotal)
			if err != nil {
				return Result{}, err
			}
			point.Round = t + 1
			res.Trace = append(res.Trace, point)
		}
	}
	final, err := measure(p, s, realTotal)
	if err != nil {
		return Result{}, err
	}
	res.FinalLoad = p.Load()
	res.MaxMin = final.MaxMin
	res.MaxAvg = final.MaxAvg
	res.Dummies = p.DummiesCreated()
	res.WentNegative = p.WentNegative()
	return res, nil
}

// measure computes the current discrepancies of p, eliminating dummy tokens
// when the process supports it.
func measure(p Discrete, s load.Speeds, realTotal int64) (TracePoint, error) {
	x := p.Load()
	if ex, ok := p.(dummyExcluder); ok {
		x = ex.LoadExcludingDummies()
	}
	maxMin, err := load.MaxMinDiscrepancy(x, s)
	if err != nil {
		return TracePoint{}, err
	}
	maxAvg, err := load.MaxAvgDiscrepancy(x, s, realTotal)
	if err != nil {
		return TracePoint{}, err
	}
	return TracePoint{MaxMin: maxMin, MaxAvg: maxAvg, Dummies: p.DummiesCreated()}, nil
}

// TimeToBalance builds a probe instance of the continuous process from x0
// via factory and returns its balancing time T (first round with
// |x_i − W·s_i/S| <= 1 everywhere), up to maxRounds.
func TimeToBalance(factory continuous.Factory, x0 []float64, maxRounds int) (int, error) {
	probe, err := factory(x0)
	if err != nil {
		return 0, fmt.Errorf("sim: build probe process: %w", err)
	}
	return continuous.BalancingTime(probe, maxRounds)
}

// Stats aggregates a statistic over repeated trials.
type Stats struct {
	Trials int
	Mean   float64
	Max    float64
	Min    float64
}

// Aggregate computes Stats over values.
func Aggregate(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	st := Stats{Trials: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v > st.Max {
			st.Max = v
		}
		if v < st.Min {
			st.Min = v
		}
	}
	st.Mean = sum / float64(len(values))
	return st
}
