package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// exportResult is the stable JSON shape of a Result.
type exportResult struct {
	Name         string        `json:"name"`
	Rounds       int           `json:"rounds"`
	MaxMin       float64       `json:"maxMinDiscrepancy"`
	MaxAvg       float64       `json:"maxAvgDiscrepancy"`
	Dummies      int64         `json:"dummyWeightCreated"`
	WentNegative bool          `json:"wentNegative"`
	FinalLoad    []int64       `json:"finalLoad,omitempty"`
	Trace        []exportPoint `json:"trace,omitempty"`
}

type exportPoint struct {
	Round   int     `json:"round"`
	MaxMin  float64 `json:"maxMinDiscrepancy"`
	MaxAvg  float64 `json:"maxAvgDiscrepancy"`
	Dummies int64   `json:"dummyWeightCreated"`
}

// WriteJSON serializes the result to w as indented JSON. includeLoad
// controls whether the full final load vector is embedded (it can be large).
func (r Result) WriteJSON(w io.Writer, includeLoad bool) error {
	out := exportResult{
		Name:         r.Name,
		Rounds:       r.Rounds,
		MaxMin:       r.MaxMin,
		MaxAvg:       r.MaxAvg,
		Dummies:      r.Dummies,
		WentNegative: r.WentNegative,
	}
	if includeLoad {
		out.FinalLoad = r.FinalLoad
	}
	for _, p := range r.Trace {
		out.Trace = append(out.Trace, exportPoint{
			Round:   p.Round,
			MaxMin:  p.MaxMin,
			MaxAvg:  p.MaxAvg,
			Dummies: p.Dummies,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("sim: encode result: %w", err)
	}
	return nil
}
