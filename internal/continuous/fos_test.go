package continuous

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
)

const tol = 1e-9

func uniformX(n int, v float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = v
	}
	return x
}

func totalLoad(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func TestDefaultAlphasSatisfyConstraint(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sFn := range []func() load.Speeds{
		func() load.Speeds { return load.UniformSpeeds(g.N()) },
		func() load.Speeds {
			s := load.UniformSpeeds(g.N())
			for i := range s {
				s[i] = int64(1 + i%5)
			}
			return s
		},
	} {
		s := sFn()
		for _, build := range []func(*graph.Graph, load.Speeds) (Alphas, error){DefaultAlphas, BoillatAlphas} {
			a, err := build(g, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateAlphas(g, s, a); err != nil {
				t.Errorf("alphas invalid: %v", err)
			}
		}
	}
}

func TestValidateAlphasErrors(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	if err := ValidateAlphas(g, s, Alphas{0.5, 0.5}); err == nil {
		t.Error("wrong length should error")
	}
	if err := ValidateAlphas(g, s, Alphas{0}); err == nil {
		t.Error("zero alpha should error")
	}
	if err := ValidateAlphas(g, s, Alphas{1.0}); err == nil {
		t.Error("alpha = s_i should violate the demand constraint")
	}
}

func TestNewFOSValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFOS(nil, s, a, []float64{1, 1}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := NewFOS(g, load.Speeds{1}, a, []float64{1, 1}); err == nil {
		t.Error("short speeds should error")
	}
	if _, err := NewFOS(g, s, a, []float64{1}); err == nil {
		t.Error("short load should error")
	}
	if _, err := NewFOS(g, s, a, []float64{-1, 0}); err == nil {
		t.Error("negative initial load should error")
	}
	if _, err := NewFOS(g, s, a, []float64{math.NaN(), 0}); err == nil {
		t.Error("NaN initial load should error")
	}
}

func TestFOSConservesLoad(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	p, err := NewDefaultFOS(g, s, pointMass(g.N(), 1024))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		p.Step()
		if got := totalLoad(p.Load()); math.Abs(got-1024) > 1e-6 {
			t.Fatalf("round %d: total load %v, want 1024", round, got)
		}
	}
	if p.Round() != 50 {
		t.Errorf("Round = %d, want 50", p.Round())
	}
	if p.Name() != "fos" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFOSConvergesToSpeedProportional(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	for i := range s {
		s[i] = int64(1 + i%3)
	}
	total := 1600.0
	p, err := NewDefaultFOS(g, s, pointMass(g.N(), total))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BalancingTime(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Load()
	capTotal := float64(s.Sum())
	for i := range x {
		want := total * float64(s[i]) / capTotal
		if math.Abs(x[i]-want) > 1 {
			t.Errorf("node %d: load %v, want %v ± 1 (T=%d)", i, x[i], want, bt)
		}
	}
}

func TestFOSNeverInducesNegativeLoad(t *testing.T) {
	g, err := graph.Cycle(12)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	p, err := NewDefaultFOS(g, s, pointMass(g.N(), 240))
	if err != nil {
		t.Fatal(err)
	}
	if neg, round := InducesNegativeLoad(p, 500); neg {
		t.Errorf("FOS induced negative load at round %d", round)
	}
}

func TestFOSStationaryOnBalancedInput(t *testing.T) {
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.Speeds{1, 2, 3, 4, 5}
	x0 := make([]float64, 5)
	for i := range x0 {
		x0[i] = 7 * float64(s[i])
	}
	p, err := NewDefaultFOS(g, s, x0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		fl := p.Step()
		for e := 0; e < g.M(); e++ {
			if math.Abs(fl.Net(e)) > tol {
				t.Fatalf("round %d: balanced input produced net flow %v on edge %d", round, fl.Net(e), e)
			}
		}
	}
}

func TestApplyDiffusionMatrixIsStochastic(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := load.Speeds{1, 2, 1, 3, 1, 1, 2, 1, 1}
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	// P applied to the all-ones vector must return all ones (row sums 1).
	src := uniformX(g.N(), 1)
	dst := make([]float64, g.N())
	ApplyDiffusionMatrix(g, s, a, dst, src)
	for i, v := range dst {
		if math.Abs(v-1) > tol {
			t.Errorf("row %d sums to %v, want 1", i, v)
		}
	}
}

func TestDiffusionLambdaCycleMatchesFormula(t *testing.T) {
	const n = 16
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(n)
	a, err := DefaultAlphas(g, s) // α = 1/3 on a cycle
	if err != nil {
		t.Fatal(err)
	}
	got, err := DiffusionLambda(g, s, a, 4000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/3 + 2.0/3*math.Cos(2*math.Pi/n)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("λ = %v, want %v", got, want)
	}
}

func TestFOSStepMatchesDiffusionMatrix(t *testing.T) {
	g, err := graph.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x0 := make([]float64, g.N())
	for i := range x0 {
		x0[i] = rng.Float64() * 100
	}
	p, err := NewFOS(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	// x(1) must equal x(0)·P, which for symmetric uniform speeds equals
	// P applied as an operator.
	want := make([]float64, g.N())
	ApplyDiffusionMatrix(g, s, a, want, x0)
	got := p.Load()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("node %d: x(1) = %v, want %v", i, got[i], want[i])
		}
	}
}

func pointMass(n int, total float64) []float64 {
	x := make([]float64, n)
	x[0] = total
	return x
}
