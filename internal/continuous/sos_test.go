package continuous

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/spectral"
)

func TestNewSOSValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSOS(g, s, a, 0, []float64{1, 1}); err == nil {
		t.Error("beta = 0 should error")
	}
	if _, err := NewSOS(g, s, a, 2.5, []float64{1, 1}); err == nil {
		t.Error("beta > 2 should error")
	}
	p, err := NewSOS(g, s, a, 1.5, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Beta() != 1.5 {
		t.Errorf("Beta = %v", p.Beta())
	}
	if p.Name() != "sos" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestSOSWithBetaOneEqualsFOS(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0 := pointMass(g.N(), 512)
	fos, err := NewFOS(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	sos, err := NewSOS(g, s, a, 1, x0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		fos.Step()
		sos.Step()
		xf, xs := fos.Load(), sos.Load()
		for i := range xf {
			if math.Abs(xf[i]-xs[i]) > 1e-9 {
				t.Fatalf("round %d node %d: FOS %v != SOS(β=1) %v", round, i, xf[i], xs[i])
			}
		}
	}
}

func TestSOSConservesLoad(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSOS(g, s, a, 1.7, pointMass(g.N(), 999))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		p.Step()
		if got := totalLoad(p.Load()); math.Abs(got-999) > 1e-6 {
			t.Fatalf("round %d: total %v, want 999", round, got)
		}
	}
}

func TestSOSFasterThanFOSOnCycle(t *testing.T) {
	const n = 32
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(n)
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := DiffusionLambda(g, s, a, 4000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	beta, err := spectral.OptimalSOSBeta(lambda)
	if err != nil {
		t.Fatal(err)
	}
	x0 := pointMass(n, float64(64*n))
	fos, err := NewFOS(g, s, a, x0)
	if err != nil {
		t.Fatal(err)
	}
	tFOS, err := BalancingTime(fos, 500000)
	if err != nil {
		t.Fatal(err)
	}
	sos, err := NewSOS(g, s, a, beta, x0)
	if err != nil {
		t.Fatal(err)
	}
	tSOS, err := BalancingTime(sos, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if tSOS >= tFOS {
		t.Errorf("SOS (T=%d) should beat FOS (T=%d) on the cycle", tSOS, tFOS)
	}
	// The speedup should be substantial (theoretically ~sqrt): demand 2x.
	if tSOS*2 > tFOS {
		t.Errorf("SOS speedup too small: T_SOS=%d vs T_FOS=%d", tSOS, tFOS)
	}
}

func TestSOSCanInduceNegativeLoad(t *testing.T) {
	// On a long cycle with β near 2 the momentum term overshoots: the
	// outgoing demand of a near-empty node exceeds its load. This realizes
	// the paper's remark that only SOS may induce negative load.
	const n = 64
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(n)
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSOS(g, s, a, 1.95, pointMass(n, float64(64*n)))
	if err != nil {
		t.Fatal(err)
	}
	neg, _ := InducesNegativeLoad(p, 4*n)
	if !neg {
		t.Error("SOS with β=1.95 on a cycle point mass should induce negative load")
	}
}
