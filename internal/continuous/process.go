// Package continuous implements the continuous (infinitely divisible load)
// neighbourhood balancing processes that the paper's transformation
// discretizes: first-order diffusion (FOS), second-order diffusion (SOS),
// and matching-based dimension exchange with periodic or random matchings —
// all in the general model with heterogeneous node speeds.
//
// All three processes follow the generalized round equations of the paper's
// Lemma 1 (Equations (10) and (11)) and are therefore additive and
// terminating, which the test suite verifies property-style.
package continuous

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/load"
)

// Flows holds the per-edge, per-direction load transfers y_{i,j}(t) of one
// round. For edge e with endpoints u < v, Y[2e] is y_{u,v} and Y[2e+1] is
// y_{v,u}. Second-order schedules can produce negative y values; the net
// flow is what matters for flow imitation.
type Flows struct {
	g *graph.Graph
	// Y is indexed by directed arc: 2*edge for U->V, 2*edge+1 for V->U.
	Y []float64
}

// NewFlows allocates a zero flow set for g.
func NewFlows(g *graph.Graph) *Flows {
	return &Flows{g: g, Y: make([]float64, 2*g.M())}
}

// Net returns the signed net flow over edge e (positive means U(e)->V(e)).
func (f *Flows) Net(e int) float64 { return f.Y[2*e] - f.Y[2*e+1] }

// Graph returns the graph the flows belong to.
func (f *Flows) Graph() *graph.Graph { return f.g }

// OutDemand returns Σ_j y_{i,j} for node i — the total outgoing demand whose
// comparison against x_i(t) defines the paper's "does not induce negative
// load" property (Definition 1).
func (f *Flows) OutDemand(i int) float64 {
	demand := 0.0
	for _, a := range f.g.Neighbors(i) {
		idx := 2 * a.Edge
		if a.Out < 0 {
			idx++
		}
		demand += f.Y[idx]
	}
	return demand
}

// Process is a continuous neighbourhood balancing process. A process owns
// its load vector and advances one synchronous round per Step call.
type Process interface {
	// Name identifies the process for reports (e.g. "fos", "sos",
	// "matching/periodic").
	Name() string
	// Graph returns the underlying network.
	Graph() *graph.Graph
	// Speeds returns the node speeds.
	Speeds() load.Speeds
	// Round returns the index t of the next round to execute (0 before the
	// first Step).
	Round() int
	// Load returns a copy of the current load vector x(t).
	Load() []float64
	// Step executes round t: it computes the flows y(t) from x(t), applies
	// them to produce x(t+1), and advances the round counter. The returned
	// Flows are valid until the next Step call and must not be retained.
	Step() *Flows
}

// Factory creates fresh instances of a process from an initial load vector,
// re-using the same graph, speeds, parameters and (for random matchings) the
// same coupled randomness. It is how balancing-time probes and additivity
// checks start parallel copies of a process.
type Factory func(x0 []float64) (Process, error)

// applyFlows updates x in place with the flows of one round:
// x_i += Σ_j (y_{j,i} - y_{i,j}).
func applyFlows(g *graph.Graph, x []float64, y []float64) {
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(e)
		net := y[2*e] - y[2*e+1]
		x[u] -= net
		x[v] += net
	}
}

// checkInit validates the common constructor inputs.
func checkInit(g *graph.Graph, s load.Speeds, x0 []float64) error {
	if g == nil {
		return errors.New("continuous: nil graph")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if len(s) != g.N() {
		return fmt.Errorf("continuous: speeds length %d != n %d", len(s), g.N())
	}
	if len(x0) != g.N() {
		return fmt.Errorf("continuous: initial load length %d != n %d", len(x0), g.N())
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("continuous: initial load of node %d is %v", i, v)
		}
		if v < 0 {
			return fmt.Errorf("continuous: initial load of node %d is negative (%v)", i, v)
		}
	}
	return nil
}

// Ledger accumulates the cumulative signed net flow f_e(t) over every edge.
type Ledger struct {
	f []float64
}

// NewLedger returns a zeroed ledger for g.
func NewLedger(g *graph.Graph) *Ledger {
	return &Ledger{f: make([]float64, g.M())}
}

// Add accumulates one round of flows.
func (l *Ledger) Add(fl *Flows) {
	for e := range l.f {
		l.f[e] += fl.Net(e)
	}
}

// Net returns the cumulative signed net flow over edge e.
func (l *Ledger) Net(e int) float64 { return l.f[e] }

// Balanced reports whether x satisfies the paper's balancing-time condition:
// |x_i - W*s_i/S| <= 1 for every node i.
func Balanced(x []float64, s load.Speeds) bool {
	var total float64
	for _, v := range x {
		total += v
	}
	capTotal := float64(s.Sum())
	for i, v := range x {
		if math.Abs(v-total*float64(s[i])/capTotal) > 1 {
			return false
		}
	}
	return true
}

// ErrNotBalanced is returned by BalancingTime when the process does not
// reach the balanced state within the round budget.
var ErrNotBalanced = errors.New("continuous: balancing time exceeds round budget")

// BalancingTime runs p until the load vector satisfies Balanced and returns
// the first such round index T (the paper's T^A). The process is consumed.
func BalancingTime(p Process, maxRounds int) (int, error) {
	s := p.Speeds()
	for t := 0; t <= maxRounds; t++ {
		if Balanced(p.Load(), s) {
			return t, nil
		}
		p.Step()
	}
	return 0, fmt.Errorf("%w (%d rounds)", ErrNotBalanced, maxRounds)
}

// InducesNegativeLoad runs p for the given number of rounds and reports
// whether Definition 1 is ever violated, i.e. whether some node's outgoing
// demand exceeds its available load. It returns the first offending round,
// or -1 if none. The process is consumed.
func InducesNegativeLoad(p Process, rounds int) (bool, int) {
	const eps = 1e-9
	for t := 0; t < rounds; t++ {
		x := p.Load()
		fl := p.Step()
		for i := range x {
			if x[i]-fl.OutDemand(i) < -eps {
				return true, t
			}
		}
	}
	return false, -1
}
