package continuous

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
)

// factoriesUnderTest builds, for a given graph and speeds, the three process
// families Lemma 1 proves additive and terminating. The matching schedules
// are fixed per call so coupled runs share the same matchings.
func factoriesUnderTest(t *testing.T, g *graph.Graph, s load.Speeds, seed int64) map[string]Factory {
	t.Helper()
	a, err := DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	periodic, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Factory{
		"fos":            FOSFactory(g, s, a),
		"sos-1.6":        SOSFactory(g, s, a, 1.6),
		"match-periodic": MatchingFactory(g, s, periodic),
		"match-random":   MatchingFactory(g, s, matching.NewRandom(g, seed)),
	}
}

// TestAdditivityProperty verifies Definition 3 (Lemma 1): starting coupled
// instances from x', x” and x'+x” yields y = y' + y” per directed arc per
// round, and hence x = x' + x”.
func TestAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomRegular(12, 3, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		x1 := make([]float64, g.N())
		x2 := make([]float64, g.N())
		for i := range x1 {
			x1[i] = float64(rng.Intn(50))
			x2[i] = float64(rng.Intn(50))
		}
		sum := make([]float64, g.N())
		for i := range sum {
			sum[i] = x1[i] + x2[i]
		}
		for name, factory := range factoriesUnderTest(t, g, s, seed) {
			p1, err := factory(x1)
			if err != nil {
				return false
			}
			p2, err := factory(x2)
			if err != nil {
				return false
			}
			p12, err := factory(sum)
			if err != nil {
				return false
			}
			for round := 0; round < 12; round++ {
				f1 := append([]float64(nil), p1.Step().Y...)
				f2 := append([]float64(nil), p2.Step().Y...)
				f12 := p12.Step().Y
				for k := range f12 {
					if math.Abs(f12[k]-(f1[k]+f2[k])) > 1e-7 {
						t.Logf("%s round %d arc %d: y=%v, y'+y''=%v",
							name, round, k, f12[k], f1[k]+f2[k])
						return false
					}
				}
				a1, a2, a12 := p1.Load(), p2.Load(), p12.Load()
				for i := range a12 {
					if math.Abs(a12[i]-(a1[i]+a2[i])) > 1e-7 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestTerminatingProperty verifies Definition 2 (Lemma 1): starting from
// ℓ·(s_1..s_n) the net flow on every edge is zero in every round and the
// load vector never changes.
func TestTerminatingProperty(t *testing.T) {
	f := func(seed int64, ellRaw uint8) bool {
		ell := float64(ellRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(14, 0.3, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(4)
		}
		x0 := make([]float64, g.N())
		for i := range x0 {
			x0[i] = ell * float64(s[i])
		}
		for name, factory := range factoriesUnderTest(t, g, s, seed) {
			p, err := factory(x0)
			if err != nil {
				return false
			}
			for round := 0; round < 15; round++ {
				fl := p.Step()
				for e := 0; e < g.M(); e++ {
					if math.Abs(fl.Net(e)) > 1e-8 {
						t.Logf("%s round %d edge %d: net flow %v", name, round, e, fl.Net(e))
						return false
					}
				}
				x := p.Load()
				for i := range x {
					if math.Abs(x[i]-x0[i]) > 1e-8 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestConservationProperty: all continuous processes conserve total load.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.ErdosRenyi(16, 0.25, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(3)
		}
		x0 := make([]float64, g.N())
		total := 0.0
		for i := range x0 {
			x0[i] = float64(rng.Intn(100))
			total += x0[i]
		}
		for _, factory := range factoriesUnderTest(t, g, s, seed) {
			p, err := factory(x0)
			if err != nil {
				return false
			}
			for round := 0; round < 20; round++ {
				p.Step()
			}
			if math.Abs(totalLoad(p.Load())-total) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLemma2Property verifies Lemma 2: with x(0) = x' + ℓ·s, for any node i
// and neighbour subset L, x_i(t) − Σ_{j∈L}(y_{i,j}−y_{j,i}) >= ℓ·s_i, for
// processes that do not induce negative load on x'. We check the strongest
// subset: L = all neighbours with positive net outflow.
func TestLemma2Property(t *testing.T) {
	f := func(seed int64, ellRaw uint8) bool {
		ell := float64(ellRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomRegular(10, 3, rng)
		if err != nil {
			return false
		}
		s := make(load.Speeds, g.N())
		for i := range s {
			s[i] = 1 + rng.Int63n(2)
		}
		x0 := make([]float64, g.N())
		for i := range x0 {
			x0[i] = float64(rng.Intn(60)) + ell*float64(s[i])
		}
		a, err := DefaultAlphas(g, s)
		if err != nil {
			return false
		}
		p, err := NewFOS(g, s, a, x0)
		if err != nil {
			return false
		}
		for round := 0; round < 15; round++ {
			x := p.Load()
			fl := p.Step()
			for i := 0; i < g.N(); i++ {
				outNet := 0.0
				for _, arc := range g.Neighbors(i) {
					idxOut := 2 * arc.Edge
					idxIn := 2*arc.Edge + 1
					if arc.Out < 0 {
						idxOut, idxIn = idxIn, idxOut
					}
					net := fl.Y[idxOut] - fl.Y[idxIn]
					if net > 0 {
						outNet += net
					}
				}
				if x[i]-outNet < ell*float64(s[i])-1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBalancedPredicate(t *testing.T) {
	s := load.Speeds{1, 2}
	if !Balanced([]float64{10, 20}, s) {
		t.Error("exactly proportional vector should be balanced")
	}
	if !Balanced([]float64{10.9, 19.1}, s) {
		t.Error("within ±1 should be balanced")
	}
	if Balanced([]float64{12, 18}, s) {
		t.Error("deviation 2 should not be balanced")
	}
}

func TestBalancingTimeBudget(t *testing.T) {
	g, err := graph.Cycle(64)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	p, err := NewDefaultFOS(g, s, pointMass(g.N(), 64*64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BalancingTime(p, 3); err == nil {
		t.Error("tiny budget should return ErrNotBalanced")
	}
	// Already balanced input: T = 0.
	q, err := NewDefaultFOS(g, s, uniformX(g.N(), 5))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BalancingTime(q, 10)
	if err != nil || bt != 0 {
		t.Errorf("balanced input: T = (%d, %v), want (0, nil)", bt, err)
	}
}

func TestLedger(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	p, err := NewDefaultFOS(g, s, []float64{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLedger(g)
	cum := 0.0
	for round := 0; round < 5; round++ {
		before := p.Load()
		fl := p.Step()
		l.Add(fl)
		cum += fl.Net(0)
		after := p.Load()
		// The ledger's cumulative net flow must explain the load change.
		if math.Abs((before[0]-after[0])-(fl.Net(0))) > tol {
			t.Fatalf("round %d: flow does not explain load delta", round)
		}
	}
	if math.Abs(l.Net(0)-cum) > tol {
		t.Errorf("ledger = %v, want %v", l.Net(0), cum)
	}
}

func TestFlowsOutDemand(t *testing.T) {
	g := graph.MustNew(3, [][2]int{{0, 1}, {0, 2}})
	fl := NewFlows(g)
	fl.Y[0] = 2.5 // 0 -> 1
	fl.Y[1] = 1.0 // 1 -> 0
	fl.Y[2] = 0.5 // 0 -> 2
	if got := fl.OutDemand(0); math.Abs(got-3.0) > tol {
		t.Errorf("OutDemand(0) = %v, want 3.0", got)
	}
	if got := fl.OutDemand(1); math.Abs(got-1.0) > tol {
		t.Errorf("OutDemand(1) = %v, want 1.0", got)
	}
	if got := fl.OutDemand(2); got != 0 {
		t.Errorf("OutDemand(2) = %v, want 0", got)
	}
	if fl.Graph() != g {
		t.Error("Graph accessor mismatch")
	}
}
