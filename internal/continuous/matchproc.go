package continuous

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
)

// MatchingProcess is the dimension-exchange process: in round t load moves
// only along the edges of the matching supplied by the schedule, and each
// matched pair equalizes makespans. For matched edge (i,j) the paper's
// Equation (5) with α_{i,j} = s_i·s_j/(s_i+s_j) gives
//
//	y_{i,j}(t) = s_j·x_i(t)/(s_i+s_j),   x_i(t+1) = s_i·(x_i+x_j)/(s_i+s_j).
//
// With a Periodic schedule this is the periodic matching model of Hosseini
// et al.; with a Random schedule it is the random matching model of Ghosh
// and Muthukrishnan. The process never induces negative load.
type MatchingProcess struct {
	g     *graph.Graph
	s     load.Speeds
	sched matching.Schedule
	x     []float64
	t     int
	flows *Flows
}

var _ Process = (*MatchingProcess)(nil)

// NewMatchingProcess builds a dimension-exchange process driven by sched.
func NewMatchingProcess(g *graph.Graph, s load.Speeds, sched matching.Schedule, x0 []float64) (*MatchingProcess, error) {
	if sched == nil {
		return nil, errors.New("continuous: nil matching schedule")
	}
	if err := checkInit(g, s, x0); err != nil {
		return nil, err
	}
	return &MatchingProcess{
		g:     g,
		s:     s.Clone(),
		sched: sched,
		x:     append([]float64(nil), x0...),
		flows: NewFlows(g),
	}, nil
}

// MatchingFactory returns a Factory whose instances share the same schedule,
// so parallel runs are coupled on identical matching sequences (as required
// by the additivity definition for randomized schedules).
func MatchingFactory(g *graph.Graph, s load.Speeds, sched matching.Schedule) Factory {
	return func(x0 []float64) (Process, error) {
		return NewMatchingProcess(g, s, sched, x0)
	}
}

// Name implements Process.
func (p *MatchingProcess) Name() string { return "matching/" + p.sched.Name() }

// Graph implements Process.
func (p *MatchingProcess) Graph() *graph.Graph { return p.g }

// Speeds implements Process.
func (p *MatchingProcess) Speeds() load.Speeds { return p.s }

// Round implements Process.
func (p *MatchingProcess) Round() int { return p.t }

// Load implements Process.
func (p *MatchingProcess) Load() []float64 { return append([]float64(nil), p.x...) }

// Schedule returns the driving matching schedule.
func (p *MatchingProcess) Schedule() matching.Schedule { return p.sched }

// Step implements Process.
func (p *MatchingProcess) Step() *Flows {
	y := p.flows.Y
	for i := range y {
		y[i] = 0
	}
	m := p.sched.MatchingAt(p.t)
	for _, e := range m {
		u, v := p.g.EdgeEndpoints(e)
		su, sv := float64(p.s[u]), float64(p.s[v])
		y[2*e] = sv * p.x[u] / (su + sv)
		y[2*e+1] = su * p.x[v] / (su + sv)
	}
	applyFlows(p.g, p.x, y)
	p.t++
	return p.flows
}
