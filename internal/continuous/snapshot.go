package continuous

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshotter is implemented by continuous processes whose mutable state can
// be captured and restored, enabling checkpointing of long simulations. The
// snapshot covers only the dynamic state (load vector, round counter,
// per-process extras); graph, speeds and parameters must match at restore
// time and are the caller's responsibility.
type Snapshotter interface {
	// SnapshotState serializes the process's dynamic state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the process's dynamic state with a snapshot
	// previously produced by the same process type on an identically
	// configured instance.
	RestoreState(data []byte) error
}

var (
	_ Snapshotter = (*FOS)(nil)
	_ Snapshotter = (*SOS)(nil)
	_ Snapshotter = (*MatchingProcess)(nil)
)

type fosState struct {
	X []float64
	T int
}

// SnapshotState implements Snapshotter.
func (p *FOS) SnapshotState() ([]byte, error) {
	return encodeState(fosState{X: p.x, T: p.t})
}

// RestoreState implements Snapshotter.
func (p *FOS) RestoreState(data []byte) error {
	var st fosState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if len(st.X) != p.g.N() {
		return fmt.Errorf("continuous: snapshot has %d nodes, process has %d", len(st.X), p.g.N())
	}
	copy(p.x, st.X)
	p.t = st.T
	return nil
}

type sosState struct {
	X     []float64
	PrevY []float64
	T     int
}

// SnapshotState implements Snapshotter.
func (p *SOS) SnapshotState() ([]byte, error) {
	return encodeState(sosState{X: p.x, PrevY: p.prevY, T: p.t})
}

// RestoreState implements Snapshotter.
func (p *SOS) RestoreState(data []byte) error {
	var st sosState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if len(st.X) != p.g.N() || len(st.PrevY) != 2*p.g.M() {
		return fmt.Errorf("continuous: snapshot shape (%d,%d) does not match process (%d,%d)",
			len(st.X), len(st.PrevY), p.g.N(), 2*p.g.M())
	}
	copy(p.x, st.X)
	copy(p.prevY, st.PrevY)
	p.t = st.T
	return nil
}

type matchingState struct {
	X []float64
	T int
}

// SnapshotState implements Snapshotter. The matching schedule itself is
// stateless given (seed, t) or periodic, so the round counter suffices.
func (p *MatchingProcess) SnapshotState() ([]byte, error) {
	return encodeState(matchingState{X: p.x, T: p.t})
}

// RestoreState implements Snapshotter.
func (p *MatchingProcess) RestoreState(data []byte) error {
	var st matchingState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if len(st.X) != p.g.N() {
		return fmt.Errorf("continuous: snapshot has %d nodes, process has %d", len(st.X), p.g.N())
	}
	copy(p.x, st.X)
	p.t = st.T
	return nil
}

func encodeState(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("continuous: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeState(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("continuous: decode snapshot: %w", err)
	}
	return nil
}
