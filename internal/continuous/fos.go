package continuous

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/spectral"
)

// FOS is the first-order diffusion schedule of Cybenko and Boillat,
// generalized to node speeds (Elsässer, Monien, Preis):
//
//	y_{i,j}(t) = (α_{i,j}/s_i) · x_i(t)
//
// over every edge in every round. FOS never induces negative load because
// Σ_j α_{i,j} < s_i.
type FOS struct {
	g     *graph.Graph
	s     load.Speeds
	alpha Alphas
	x     []float64
	t     int
	flows *Flows
}

var _ Process = (*FOS)(nil)

// NewFOS builds a first-order diffusion process with the given symmetric
// parameters and initial load vector x0 (copied).
func NewFOS(g *graph.Graph, s load.Speeds, alpha Alphas, x0 []float64) (*FOS, error) {
	if err := checkInit(g, s, x0); err != nil {
		return nil, err
	}
	if err := ValidateAlphas(g, s, alpha); err != nil {
		return nil, err
	}
	p := &FOS{
		g:     g,
		s:     s.Clone(),
		alpha: append(Alphas(nil), alpha...),
		x:     append([]float64(nil), x0...),
		flows: NewFlows(g),
	}
	return p, nil
}

// NewDefaultFOS is NewFOS with DefaultAlphas.
func NewDefaultFOS(g *graph.Graph, s load.Speeds, x0 []float64) (*FOS, error) {
	alpha, err := DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	return NewFOS(g, s, alpha, x0)
}

// FOSFactory returns a Factory producing FOS instances sharing g, s, alpha.
func FOSFactory(g *graph.Graph, s load.Speeds, alpha Alphas) Factory {
	return func(x0 []float64) (Process, error) {
		return NewFOS(g, s, alpha, x0)
	}
}

// Name implements Process.
func (p *FOS) Name() string { return "fos" }

// Graph implements Process.
func (p *FOS) Graph() *graph.Graph { return p.g }

// Speeds implements Process.
func (p *FOS) Speeds() load.Speeds { return p.s }

// Round implements Process.
func (p *FOS) Round() int { return p.t }

// Load implements Process.
func (p *FOS) Load() []float64 { return append([]float64(nil), p.x...) }

// Step implements Process.
func (p *FOS) Step() *Flows {
	y := p.flows.Y
	for e := 0; e < p.g.M(); e++ {
		u, v := p.g.EdgeEndpoints(e)
		y[2*e] = p.alpha[e] / float64(p.s[u]) * p.x[u]
		y[2*e+1] = p.alpha[e] / float64(p.s[v]) * p.x[v]
	}
	applyFlows(p.g, p.x, y)
	p.t++
	return p.flows
}

// ApplyDiffusionMatrix applies the diffusion matrix P of (g, s, alpha) to a
// column vector: dst_i = (1 - Σ_{e∋i} α_e/s_i)·src_i + Σ_{j∈N(i)} (α_e/s_i)·src_j.
func ApplyDiffusionMatrix(g *graph.Graph, s load.Speeds, alpha Alphas, dst, src []float64) {
	for i := 0; i < g.N(); i++ {
		self := 1.0
		acc := 0.0
		for _, a := range g.Neighbors(i) {
			r := alpha[a.Edge] / float64(s[i])
			self -= r
			acc += r * src[a.To]
		}
		dst[i] = self*src[i] + acc
	}
}

// DiffusionLambda estimates |λ2| of the diffusion matrix P, the quantity the
// paper's balancing-time statements are expressed in. P is reversible with
// respect to π_i = s_i/S, so deflated power iteration on the symmetrized
// operator applies.
func DiffusionLambda(g *graph.Graph, s load.Speeds, alpha Alphas, iters int, rng *rand.Rand) (float64, error) {
	if err := ValidateAlphas(g, s, alpha); err != nil {
		return 0, err
	}
	pi := make([]float64, g.N())
	for i := range pi {
		pi[i] = float64(s[i])
	}
	applyP := func(dst, src []float64) {
		ApplyDiffusionMatrix(g, s, alpha, dst, src)
	}
	return spectral.SecondEigenvalueReversible(g.N(), applyP, pi, iters, rng)
}
