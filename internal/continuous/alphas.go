package continuous

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/load"
)

// Alphas holds the symmetric diffusion parameters α_{i,j} = α_{j,i}, one per
// undirected edge. The paper requires Σ_{j∈N(i)} α_{i,j} < s_i for every
// node i so that outgoing demand never exceeds load in FOS.
type Alphas []float64

// EdgeAlpha returns the default diffusion parameter of a single edge,
// α = min(s_u,s_v)/(max(d_u,d_v)+1), from its endpoints' speeds and
// degrees. It is the neighbourhood-local piece of DefaultAlphas: because α
// depends only on the endpoints, a topology change needs to recompute α
// only for the edges incident to the nodes whose degree changed — which is
// how the online engine keeps its parameters current without a global
// rebuild.
func EdgeAlpha(su, sv int64, du, dv int) float64 {
	d := du
	if dv > d {
		d = dv
	}
	sm := su
	if sv < sm {
		sm = sv
	}
	return float64(sm) / float64(d+1)
}

// DefaultAlphas returns α_e = min(s_u,s_v)/(max(d_u,d_v)+1), the speed-aware
// generalization of the common uniform choice 1/(max(d_i,d_j)+1). It always
// satisfies Σ_{j∈N(i)} α_{i,j} <= d_i·s_i/(d_i+1) < s_i.
func DefaultAlphas(g *graph.Graph, s load.Speeds) (Alphas, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("continuous: speeds length %d != n %d", len(s), g.N())
	}
	a := make(Alphas, g.M())
	for e := range a {
		u, v := g.EdgeEndpoints(e)
		a[e] = EdgeAlpha(s[u], s[v], g.Degree(u), g.Degree(v))
	}
	return a, nil
}

// BoillatAlphas returns α_e = min(s_u,s_v)/(2·max(d_u,d_v)), the speed-aware
// version of the other common choice 1/(2·max(d_i,d_j)). It guarantees a
// non-negative spectrum of the diffusion matrix on bipartite graphs, at the
// cost of slightly slower convergence.
func BoillatAlphas(g *graph.Graph, s load.Speeds) (Alphas, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("continuous: speeds length %d != n %d", len(s), g.N())
	}
	a := make(Alphas, g.M())
	for e := range a {
		u, v := g.EdgeEndpoints(e)
		du, dv := g.Degree(u), g.Degree(v)
		d := du
		if dv > d {
			d = dv
		}
		sm := s[u]
		if s[v] < sm {
			sm = s[v]
		}
		a[e] = float64(sm) / float64(2*d)
	}
	return a, nil
}

// ValidateAlphas checks positivity and the per-node demand constraint
// Σ_{e∋i} α_e < s_i.
func ValidateAlphas(g *graph.Graph, s load.Speeds, a Alphas) error {
	if len(a) != g.M() {
		return fmt.Errorf("continuous: alphas length %d != m %d", len(a), g.M())
	}
	for e, v := range a {
		if v <= 0 {
			return fmt.Errorf("continuous: alpha of edge %d is %v, must be positive", e, v)
		}
	}
	for i := 0; i < g.N(); i++ {
		sum := 0.0
		for _, arc := range g.Neighbors(i) {
			sum += a[arc.Edge]
		}
		if sum >= float64(s[i]) {
			return fmt.Errorf("continuous: node %d has Σα = %v >= s_i = %d", i, sum, s[i])
		}
	}
	return nil
}
