package continuous

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/load"
)

// SOS is the second-order diffusion schedule of Muthukrishnan, Ghosh and
// Schultz, generalized to node speeds. Round 0 equals FOS; afterwards
//
//	y_{i,j}(t) = (β-1)·y_{i,j}(t-1) + β·(α_{i,j}/s_i)·x_i(t)
//
// with 0 < β <= 2. For the optimal β* = 2/(1+sqrt(1-λ²)) SOS converges in
// O(log(Kn)/sqrt(1-λ)) rounds, but unlike FOS it can induce negative load
// (Definition 1) on some inputs — the only process in this repository that
// can.
type SOS struct {
	g     *graph.Graph
	s     load.Speeds
	alpha Alphas
	beta  float64
	x     []float64
	prevY []float64
	t     int
	flows *Flows
}

var _ Process = (*SOS)(nil)

// NewSOS builds a second-order diffusion process. beta must be in (0, 2].
func NewSOS(g *graph.Graph, s load.Speeds, alpha Alphas, beta float64, x0 []float64) (*SOS, error) {
	if err := checkInit(g, s, x0); err != nil {
		return nil, err
	}
	if err := ValidateAlphas(g, s, alpha); err != nil {
		return nil, err
	}
	if beta <= 0 || beta > 2 {
		return nil, fmt.Errorf("continuous: SOS beta %v out of (0,2]", beta)
	}
	return &SOS{
		g:     g,
		s:     s.Clone(),
		alpha: append(Alphas(nil), alpha...),
		beta:  beta,
		x:     append([]float64(nil), x0...),
		prevY: make([]float64, 2*g.M()),
		flows: NewFlows(g),
	}, nil
}

// SOSFactory returns a Factory producing SOS instances sharing parameters.
func SOSFactory(g *graph.Graph, s load.Speeds, alpha Alphas, beta float64) Factory {
	return func(x0 []float64) (Process, error) {
		return NewSOS(g, s, alpha, beta, x0)
	}
}

// Name implements Process.
func (p *SOS) Name() string { return "sos" }

// Graph implements Process.
func (p *SOS) Graph() *graph.Graph { return p.g }

// Speeds implements Process.
func (p *SOS) Speeds() load.Speeds { return p.s }

// Round implements Process.
func (p *SOS) Round() int { return p.t }

// Load implements Process.
func (p *SOS) Load() []float64 { return append([]float64(nil), p.x...) }

// Beta returns the relaxation parameter.
func (p *SOS) Beta() float64 { return p.beta }

// Step implements Process.
func (p *SOS) Step() *Flows {
	y := p.flows.Y
	for e := 0; e < p.g.M(); e++ {
		u, v := p.g.EdgeEndpoints(e)
		base := p.alpha[e] / float64(p.s[u]) * p.x[u]
		baseR := p.alpha[e] / float64(p.s[v]) * p.x[v]
		if p.t == 0 {
			y[2*e] = base
			y[2*e+1] = baseR
		} else {
			y[2*e] = (p.beta-1)*p.prevY[2*e] + p.beta*base
			y[2*e+1] = (p.beta-1)*p.prevY[2*e+1] + p.beta*baseR
		}
	}
	applyFlows(p.g, p.x, y)
	copy(p.prevY, y)
	p.t++
	return p.flows
}
