package continuous

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
)

func TestNewMatchingProcessValidation(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.UniformSpeeds(2)
	if _, err := NewMatchingProcess(g, s, nil, []float64{1, 1}); err == nil {
		t.Error("nil schedule should error")
	}
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatchingProcess(g, s, sched, []float64{1}); err == nil {
		t.Error("short load should error")
	}
	p, err := NewMatchingProcess(g, s, sched, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "matching/periodic" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Schedule() != sched {
		t.Error("Schedule accessor mismatch")
	}
}

func TestMatchingEqualizesPairMakespans(t *testing.T) {
	// Two nodes, one edge, speeds 2 and 3: after one round the makespans
	// must be equal: x_u = s_u(x_u+x_v)/(s_u+s_v).
	g := graph.MustNew(2, [][2]int{{0, 1}})
	s := load.Speeds{2, 3}
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMatchingProcess(g, s, sched, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	x := p.Load()
	if math.Abs(x[0]-40) > tol || math.Abs(x[1]-60) > tol {
		t.Errorf("after one exchange: x = %v, want [40 60]", x)
	}
	if math.Abs(x[0]/2-x[1]/3) > tol {
		t.Errorf("makespans not equalized: %v vs %v", x[0]/2, x[1]/3)
	}
}

func TestMatchingUnmatchedNodesUntouched(t *testing.T) {
	// Path 0-1-2; the greedy colouring alternates edges, so each round one
	// node is unmatched and must keep its load.
	g := graph.MustNew(3, [][2]int{{0, 1}, {1, 2}})
	s := load.UniformSpeeds(3)
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMatchingProcess(g, s, sched, []float64{90, 0, 30})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Load()
	fl := p.Step()
	m := sched.MatchingAt(0)
	matched := map[int]bool{}
	for _, e := range m {
		u, v := g.EdgeEndpoints(e)
		matched[u], matched[v] = true, true
	}
	after := p.Load()
	for i := range after {
		if !matched[i] && math.Abs(after[i]-before[i]) > tol {
			t.Errorf("unmatched node %d changed: %v -> %v", i, before[i], after[i])
		}
	}
	// Flows on unmatched edges must be zero.
	inMatching := map[int]bool{}
	for _, e := range m {
		inMatching[e] = true
	}
	for e := 0; e < g.M(); e++ {
		if !inMatching[e] && (fl.Y[2*e] != 0 || fl.Y[2*e+1] != 0) {
			t.Errorf("unmatched edge %d has flow", e)
		}
	}
}

func TestMatchingConservesLoadAndConverges(t *testing.T) {
	g, err := graph.Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(32 * g.N())
	p, err := NewMatchingProcess(g, s, sched, pointMass(g.N(), total))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BalancingTime(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if bt == 0 {
		t.Error("point mass should need at least one round")
	}
	if got := totalLoad(p.Load()); math.Abs(got-total) > 1e-6 {
		t.Errorf("total load %v, want %v", got, total)
	}
}

func TestMatchingRandomScheduleConverges(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	sched := matching.NewRandom(g, 21)
	p, err := NewMatchingProcess(g, s, sched, pointMass(g.N(), 1024))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BalancingTime(p, 100000); err != nil {
		t.Fatalf("random matching failed to balance: %v", err)
	}
}

func TestMatchingNeverInducesNegativeLoad(t *testing.T) {
	g, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	s := load.Speeds{1, 2, 3, 4, 1, 2, 3, 4}
	sched := matching.NewRandom(g, 5)
	p, err := NewMatchingProcess(g, s, sched, pointMass(g.N(), 777))
	if err != nil {
		t.Fatal(err)
	}
	if neg, round := InducesNegativeLoad(p, 300); neg {
		t.Errorf("matching process induced negative load at round %d", round)
	}
}
