package graph

import "testing"

// FuzzNew exercises the constructor with arbitrary edge bytes: it must
// either reject the input or return a graph whose accessors are consistent.
func FuzzNew(f *testing.F) {
	f.Add(4, []byte{0, 1, 1, 2, 2, 3})
	f.Add(3, []byte{0, 1, 0, 2, 1, 2})
	f.Add(1, []byte{})
	f.Add(5, []byte{0, 0})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 || n > 64 {
			return
		}
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]) % 67, int(raw[i+1]) % 67})
		}
		g, err := New(n, edges)
		if err != nil {
			return
		}
		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		// Degree sum equals 2M, arcs are symmetric, endpoints ordered.
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.Degree(i)
			for _, a := range g.Neighbors(i) {
				if a.To < 0 || a.To >= n || a.To == i {
					t.Fatalf("bad arc %d -> %d", i, a.To)
				}
				if !g.HasEdge(i, a.To) {
					t.Fatalf("adjacency lists edge (%d,%d) missing from HasEdge", i, a.To)
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2M %d", sum, 2*g.M())
		}
		for e := 0; e < g.M(); e++ {
			u, v := g.EdgeEndpoints(e)
			if u >= v {
				t.Fatalf("edge %d endpoints not ordered: (%d,%d)", e, u, v)
			}
		}
	})
}
