package graph

import (
	"math/rand"
	"testing"
)

func TestDynamicMirrorsStaticGraph(t *testing.T) {
	g, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(g)
	if d.NumNodes() != g.N() || d.NumEdges() != g.M() {
		t.Fatalf("dynamic has n=%d m=%d, want n=%d m=%d", d.NumNodes(), d.NumEdges(), g.N(), g.M())
	}
	for i := 0; i < g.N(); i++ {
		if !d.Active(i) {
			t.Fatalf("node %d inactive", i)
		}
		if d.Degree(i) != g.Degree(i) {
			t.Fatalf("node %d degree %d, want %d", i, d.Degree(i), g.Degree(i))
		}
		arcs := d.Neighbors(i)
		want := g.Neighbors(i)
		if len(arcs) != len(want) {
			t.Fatalf("node %d adjacency length %d, want %d", i, len(arcs), len(want))
		}
		for k := range arcs {
			if arcs[k] != want[k] {
				t.Fatalf("node %d arc %d = %+v, want %+v", i, k, arcs[k], want[k])
			}
		}
	}
	if !d.Connected() {
		t.Fatal("torus should be connected")
	}
}

func TestDynamicAddRemove(t *testing.T) {
	g := MustNew(3, [][2]int{{0, 1}, {1, 2}})
	d := NewDynamic(g)

	// Add a node and wire it in.
	n := d.AddNode()
	if n != 3 {
		t.Fatalf("new node slot %d, want 3", n)
	}
	e, err := d.AddEdge(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 2 {
		t.Fatalf("new edge slot %d, want 2", e)
	}
	if u, v := d.EdgeEndpoints(e); u != 0 || v != 3 {
		t.Fatalf("edge %d endpoints (%d,%d), want (0,3)", e, u, v)
	}
	if !d.HasEdge(0, 3) || d.Degree(3) != 1 || d.Degree(0) != 2 {
		t.Fatal("edge (0,3) not wired correctly")
	}

	// Duplicate, self loop, inactive endpoint.
	if _, err := d.AddEdge(0, 3); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := d.AddEdge(1, 1); err == nil {
		t.Fatal("self loop accepted")
	}

	// Remove the middle node; its two edges go with it.
	removed, err := d.RemoveNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %d edges, want 2", len(removed))
	}
	if d.Active(1) || d.NumNodes() != 3 || d.NumEdges() != 1 {
		t.Fatalf("after removal: active=%v n=%d m=%d", d.Active(1), d.NumNodes(), d.NumEdges())
	}
	if _, err := d.AddEdge(1, 0); err == nil {
		t.Fatal("edge to inactive node accepted")
	}
	if !d.Connected() {
		// 0-3 and 2 are now separate components.
		t.Log("disconnected as expected")
	} else {
		t.Fatal("removal of node 1 should disconnect node 2")
	}

	// Slots are recycled LIFO.
	if again := d.AddNode(); again != 1 {
		t.Fatalf("recycled node slot %d, want 1", again)
	}
	if e2, err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	} else if e2 != removed[len(removed)-1] {
		t.Fatalf("recycled edge slot %d, want %d", e2, removed[len(removed)-1])
	}
}

func TestDynamicSnapshotCompacts(t *testing.T) {
	g, err := Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(g)
	if _, err := d.RemoveNode(5); err != nil {
		t.Fatal(err)
	}
	snap, slots, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != 7 || snap.M() != d.NumEdges() {
		t.Fatalf("snapshot n=%d m=%d, want n=7 m=%d", snap.N(), snap.M(), d.NumEdges())
	}
	if len(slots) != 7 {
		t.Fatalf("slots length %d, want 7", len(slots))
	}
	for k, s := range slots {
		if s == 5 {
			t.Fatalf("slots[%d] = removed slot 5", k)
		}
		if snap.Degree(k) != d.Degree(s) {
			t.Fatalf("snapshot node %d degree %d, want %d", k, snap.Degree(k), d.Degree(s))
		}
	}
}

// TestDynamicRandomChurnConsistency applies a long random mutation sequence
// and cross-checks counts, degrees and adjacency symmetry after every step.
func TestDynamicRandomChurnConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(g)
	for step := 0; step < 400; step++ {
		nodes := d.ActiveNodes()
		switch op := rng.Intn(4); {
		case op == 0: // add node + edge to a random active node
			i := d.AddNode()
			if _, err := d.AddEdge(i, nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op == 1 && d.NumNodes() > 2: // remove a random node
			if _, err := d.RemoveNode(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op == 2: // add a random missing edge
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u != v && !d.HasEdge(u, v) {
				if _, err := d.AddEdge(u, v); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		case op == 3 && d.NumEdges() > 0: // remove a random existing edge
			u := nodes[rng.Intn(len(nodes))]
			if deg := d.Degree(u); deg > 0 {
				arc := d.Neighbors(u)[rng.Intn(deg)]
				if _, err := d.RemoveEdge(u, arc.To); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		checkDynamicInvariants(t, d, step)
	}
}

func checkDynamicInvariants(t *testing.T, d *Dynamic, step int) {
	t.Helper()
	n, m, degSum := 0, 0, 0
	for i := 0; i < d.NodeSlots(); i++ {
		if !d.Active(i) {
			if d.Degree(i) != 0 || len(d.Neighbors(i)) != 0 {
				t.Fatalf("step %d: inactive node %d has edges", step, i)
			}
			continue
		}
		n++
		degSum += d.Degree(i)
		if d.Degree(i) != len(d.Neighbors(i)) {
			t.Fatalf("step %d: node %d degree %d != adjacency %d", step, i, d.Degree(i), len(d.Neighbors(i)))
		}
		for _, a := range d.Neighbors(i) {
			if !d.Active(a.To) {
				t.Fatalf("step %d: node %d adjacent to inactive %d", step, i, a.To)
			}
			u, v := d.EdgeEndpoints(a.Edge)
			if u < 0 || (u != i && v != i) || (a.To != u && a.To != v) {
				t.Fatalf("step %d: node %d arc %+v inconsistent with endpoints (%d,%d)", step, i, a, u, v)
			}
			want := +1
			if i == v {
				want = -1
			}
			if a.Out != want {
				t.Fatalf("step %d: node %d arc %+v has Out=%d, want %d", step, i, a, a.Out, want)
			}
		}
	}
	for e := 0; e < d.EdgeSlots(); e++ {
		if u, _ := d.EdgeEndpoints(e); u >= 0 {
			m++
		}
	}
	if n != d.NumNodes() || m != d.NumEdges() || degSum != 2*d.NumEdges() {
		t.Fatalf("step %d: counted n=%d m=%d degSum=%d, reported n=%d m=%d",
			step, n, m, degSum, d.NumNodes(), d.NumEdges())
	}
}
