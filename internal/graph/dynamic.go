package graph

import (
	"errors"
	"fmt"
)

// Dynamic is a mutable simple undirected graph for online executions with
// node churn: nodes and edges can be added and removed at runtime while
// node and edge identifiers stay stable. Removed slots are tombstoned and
// recycled in LIFO order, so a given mutation sequence is fully
// deterministic. Dynamic is not safe for concurrent mutation; the engine
// serializes all topology events.
//
// Slot indices of removed nodes remain valid inputs (they report inactive)
// which lets callers keep per-node state in plain slices indexed by slot.
type Dynamic struct {
	active []bool
	adj    [][]Arc
	ends   [][2]int // per edge slot; [-1,-1] marks a freed slot
	deg    []int
	freeN  []int
	freeE  []int
	n      int // active node count
	m      int // active edge count
}

// ErrInactiveNode is returned when an operation names a removed or
// never-added node slot.
var ErrInactiveNode = errors.New("graph: inactive node")

// ErrNoEdge is returned when removing an edge that does not exist.
var ErrNoEdge = errors.New("graph: no such edge")

// NewDynamic copies g into a mutable graph. Node and edge identifiers of g
// carry over unchanged.
func NewDynamic(g *Graph) *Dynamic {
	d := &Dynamic{
		active: make([]bool, g.N()),
		adj:    make([][]Arc, g.N()),
		ends:   make([][2]int, g.M()),
		deg:    make([]int, g.N()),
		n:      g.N(),
		m:      g.M(),
	}
	for i := 0; i < g.N(); i++ {
		d.active[i] = true
		d.adj[i] = append([]Arc(nil), g.Neighbors(i)...)
		d.deg[i] = g.Degree(i)
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.EdgeEndpoints(e)
		d.ends[e] = [2]int{u, v}
	}
	return d
}

// NodeSlots returns the number of node slots ever allocated; valid node
// indices are 0..NodeSlots()-1, active or not.
func (d *Dynamic) NodeSlots() int { return len(d.active) }

// EdgeSlots returns the number of edge slots ever allocated.
func (d *Dynamic) EdgeSlots() int { return len(d.ends) }

// NumNodes returns the number of active nodes.
func (d *Dynamic) NumNodes() int { return d.n }

// NumEdges returns the number of active edges.
func (d *Dynamic) NumEdges() int { return d.m }

// Active reports whether node slot i holds a live node.
func (d *Dynamic) Active(i int) bool { return i >= 0 && i < len(d.active) && d.active[i] }

// Degree returns the degree of node i (0 for inactive slots).
func (d *Dynamic) Degree(i int) int { return d.deg[i] }

// Neighbors returns the adjacency list of node i. The slice is owned by
// the graph and is invalidated by mutations around i.
func (d *Dynamic) Neighbors(i int) []Arc { return d.adj[i] }

// EdgeEndpoints returns the endpoints (u, v) of edge slot e with u < v, or
// (-1, -1) when the slot is free.
func (d *Dynamic) EdgeEndpoints(e int) (u, v int) {
	if e < 0 || e >= len(d.ends) {
		return -1, -1
	}
	return d.ends[e][0], d.ends[e][1]
}

// MaxDegree returns the maximum degree over active nodes.
func (d *Dynamic) MaxDegree() int {
	max := 0
	for i, a := range d.active {
		if a && d.deg[i] > max {
			max = d.deg[i]
		}
	}
	return max
}

// ActiveNodes returns the active node slots in increasing order.
func (d *Dynamic) ActiveNodes() []int {
	out := make([]int, 0, d.n)
	for i, a := range d.active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// HasEdge reports whether active nodes u and v are adjacent.
func (d *Dynamic) HasEdge(u, v int) bool {
	if !d.Active(u) || !d.Active(v) {
		return false
	}
	for _, a := range d.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// AddNode activates a node slot (recycling the most recently freed one if
// any) and returns its index. The node starts isolated.
func (d *Dynamic) AddNode() int {
	var i int
	if k := len(d.freeN); k > 0 {
		i = d.freeN[k-1]
		d.freeN = d.freeN[:k-1]
	} else {
		i = len(d.active)
		d.active = append(d.active, false)
		d.adj = append(d.adj, nil)
		d.deg = append(d.deg, 0)
	}
	d.active[i] = true
	d.adj[i] = d.adj[i][:0]
	d.deg[i] = 0
	d.n++
	return i
}

// AddEdge connects active nodes u and v and returns the edge's slot
// (recycling the most recently freed one if any). Self loops, duplicate
// edges and inactive endpoints are rejected.
func (d *Dynamic) AddEdge(u, v int) (int, error) {
	if !d.Active(u) || !d.Active(v) {
		return 0, fmt.Errorf("%w: edge (%d,%d)", ErrInactiveNode, u, v)
	}
	if u == v {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
	}
	if u > v {
		u, v = v, u
	}
	if d.HasEdge(u, v) {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	var e int
	if k := len(d.freeE); k > 0 {
		e = d.freeE[k-1]
		d.freeE = d.freeE[:k-1]
	} else {
		e = len(d.ends)
		d.ends = append(d.ends, [2]int{})
	}
	d.ends[e] = [2]int{u, v}
	d.adj[u] = append(d.adj[u], Arc{To: v, Edge: e, Out: +1})
	d.adj[v] = append(d.adj[v], Arc{To: u, Edge: e, Out: -1})
	d.deg[u]++
	d.deg[v]++
	d.m++
	return e, nil
}

// RemoveEdge disconnects u and v and frees the edge's slot, returning its
// index. The endpoints' adjacency lists keep their relative order.
func (d *Dynamic) RemoveEdge(u, v int) (int, error) {
	if !d.Active(u) || !d.Active(v) {
		return 0, fmt.Errorf("%w: edge (%d,%d)", ErrInactiveNode, u, v)
	}
	e := -1
	for _, a := range d.adj[u] {
		if a.To == v {
			e = a.Edge
			break
		}
	}
	if e < 0 {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrNoEdge, u, v)
	}
	d.dropArc(u, e)
	d.dropArc(v, e)
	d.ends[e] = [2]int{-1, -1}
	d.freeE = append(d.freeE, e)
	d.m--
	return e, nil
}

// dropArc removes the arc with the given edge id from i's adjacency list,
// preserving the order of the remaining arcs.
func (d *Dynamic) dropArc(i, e int) {
	adj := d.adj[i]
	for k, a := range adj {
		if a.Edge == e {
			d.adj[i] = append(adj[:k], adj[k+1:]...)
			d.deg[i]--
			return
		}
	}
}

// RemoveNode deactivates node i, removing all incident edges, and returns
// the freed edge slots (in former adjacency order). The node slot is
// recycled by a later AddNode.
func (d *Dynamic) RemoveNode(i int) ([]int, error) {
	if !d.Active(i) {
		return nil, fmt.Errorf("%w: %d", ErrInactiveNode, i)
	}
	removed := make([]int, 0, len(d.adj[i]))
	for _, a := range append([]Arc(nil), d.adj[i]...) {
		if _, err := d.RemoveEdge(i, a.To); err != nil {
			return removed, err
		}
		removed = append(removed, a.Edge)
	}
	d.active[i] = false
	d.adj[i] = d.adj[i][:0]
	d.deg[i] = 0
	d.freeN = append(d.freeN, i)
	d.n--
	return removed, nil
}

// Connected reports whether the active nodes form one connected component
// (true for a single active node, false for none).
func (d *Dynamic) Connected() bool {
	start := -1
	for i, a := range d.active {
		if a {
			start = i
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := make([]bool, len(d.active))
	seen[start] = true
	queue := []int{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range d.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				queue = append(queue, a.To)
			}
		}
	}
	return count == d.n
}

// Snapshot compacts the active topology into an immutable Graph. slots maps
// the snapshot's node ids back to Dynamic slots: slots[k] is the slot of
// snapshot node k (active slots in increasing order). Edge identifiers are
// renumbered by the snapshot.
func (d *Dynamic) Snapshot() (g *Graph, slots []int, err error) {
	if d.n == 0 {
		return nil, nil, ErrEmptyGraph
	}
	slots = d.ActiveNodes()
	compact := make([]int, len(d.active))
	for k, s := range slots {
		compact[s] = k
	}
	edges := make([][2]int, 0, d.m)
	for _, ends := range d.ends {
		if ends[0] >= 0 {
			edges = append(edges, [2]int{compact[ends[0]], compact[ends[1]]})
		}
	}
	g, err = New(len(slots), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, slots, nil
}
