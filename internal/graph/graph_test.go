package graph

import (
	"errors"
	"testing"
)

func TestNewValidGraph(t *testing.T) {
	g, err := New(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if g.N() != 4 {
		t.Errorf("N() = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Errorf("M() = %d, want 4", g.M())
	}
	for i := 0; i < 4; i++ {
		if g.Degree(i) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", i, g.Degree(i))
		}
	}
	if g.MaxDegree() != 2 || g.MinDegree() != 2 {
		t.Errorf("MaxDegree/MinDegree = %d/%d, want 2/2", g.MaxDegree(), g.MinDegree())
	}
}

func TestNewNormalizesEdgeOrder(t *testing.T) {
	g, err := New(3, [][2]int{{2, 0}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	u, v := g.EdgeEndpoints(0)
	if u != 0 || v != 2 {
		t.Errorf("EdgeEndpoints(0) = (%d,%d), want (0,2)", u, v)
	}
}

func TestNewErrors(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  error
	}{
		{"empty graph", 0, nil, ErrEmptyGraph},
		{"negative nodes", -1, nil, ErrEmptyGraph},
		{"self loop", 3, [][2]int{{1, 1}}, ErrSelfLoop},
		{"duplicate", 3, [][2]int{{0, 1}, {1, 0}}, ErrDuplicateEdge},
		{"out of range high", 3, [][2]int{{0, 3}}, ErrNodeRange},
		{"out of range negative", 3, [][2]int{{-1, 0}}, ErrNodeRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.n, tt.edges); !errors.Is(err, tt.want) {
				t.Errorf("New error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestArcSignsAreConsistent(t *testing.T) {
	g := MustNew(3, [][2]int{{0, 1}, {1, 2}})
	for i := 0; i < g.N(); i++ {
		for _, a := range g.Neighbors(i) {
			u, v := g.EdgeEndpoints(a.Edge)
			switch {
			case i == u && a.To == v:
				if a.Out != 1 {
					t.Errorf("arc %d->%d edge %d: Out = %d, want +1", i, a.To, a.Edge, a.Out)
				}
			case i == v && a.To == u:
				if a.Out != -1 {
					t.Errorf("arc %d->%d edge %d: Out = %d, want -1", i, a.To, a.Edge, a.Out)
				}
			default:
				t.Errorf("arc %d->%d does not match edge %d endpoints (%d,%d)", i, a.To, a.Edge, u, v)
			}
		}
	}
}

func TestHasEdgeAndEdgeIndex(t *testing.T) {
	g := MustNew(4, [][2]int{{0, 1}, {2, 3}})
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) should hold in both orders")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	e, ok := g.EdgeIndex(3, 2)
	if !ok || e != 1 {
		t.Errorf("EdgeIndex(3,2) = (%d,%v), want (1,true)", e, ok)
	}
	if _, ok := g.EdgeIndex(0, 3); ok {
		t.Error("EdgeIndex(0,3) should not exist")
	}
}

func TestBFSDist(t *testing.T) {
	g := MustNew(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dist := g.BFSDist(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestIsConnected(t *testing.T) {
	conn := MustNew(3, [][2]int{{0, 1}, {1, 2}})
	if !conn.IsConnected() {
		t.Error("path should be connected")
	}
	disc := MustNew(3, [][2]int{{0, 1}})
	if disc.IsConnected() {
		t.Error("graph with isolated node should be disconnected")
	}
	single := MustNew(1, nil)
	if !single.IsConnected() {
		t.Error("single node should count as connected")
	}
}

func TestDiameter(t *testing.T) {
	path := MustNew(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d, err := path.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if d != 3 {
		t.Errorf("path diameter = %d, want 3", d)
	}
	disc := MustNew(2, nil)
	if _, err := disc.Diameter(); err == nil {
		t.Error("Diameter of disconnected graph should error")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew(6, [][2]int{{0, 1}, {2, 3}, {3, 4}})
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	wantSizes := []int{2, 3, 1}
	for i, w := range wantSizes {
		if len(comps[i]) != w {
			t.Errorf("component %d has %d nodes, want %d", i, len(comps[i]), w)
		}
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := MustNew(3, [][2]int{{0, 1}})
	edges := g.Edges()
	edges[0][0] = 99
	u, _ := g.EdgeEndpoints(0)
	if u != 0 {
		t.Error("mutating Edges() result changed graph state")
	}
}

func TestDegreesReturnsCopy(t *testing.T) {
	g := MustNew(3, [][2]int{{0, 1}})
	deg := g.Degrees()
	deg[0] = 99
	if g.Degree(0) != 1 {
		t.Error("mutating Degrees() result changed graph state")
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew on invalid input should panic")
		}
	}()
	MustNew(1, [][2]int{{0, 0}})
}

func TestString(t *testing.T) {
	g := MustNew(3, [][2]int{{0, 1}, {1, 2}})
	if got, want := g.String(), "graph(n=3,m=2,d=2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
