package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// churn applies a deterministic random mutation to d, mirroring the engine's
// join/leave/edge-change churn. Every path exercises the slot recyclers.
func churn(t *testing.T, d *Dynamic, rng *rand.Rand) {
	t.Helper()
	nodes := d.ActiveNodes()
	switch op := rng.Intn(4); {
	case op == 0: // join with random peers
		i := d.AddNode()
		for _, p := range nodes {
			if rng.Intn(3) == 0 && p != i {
				if _, err := d.AddEdge(min(i, p), max(i, p)); err != nil {
					t.Fatalf("add edge: %v", err)
				}
			}
		}
	case op == 1 && d.NumNodes() > 4: // leave
		if _, err := d.RemoveNode(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatalf("remove node: %v", err)
		}
	case op == 2: // add a random missing edge
		u, v := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		if u != v && !d.HasEdge(u, v) {
			if _, err := d.AddEdge(min(u, v), max(u, v)); err != nil {
				t.Fatalf("add edge: %v", err)
			}
		}
	case op == 3 && d.NumEdges() > 0: // drop a random live edge
		for e := 0; e < d.EdgeSlots(); e++ {
			u, v := d.EdgeEndpoints(e)
			if u >= 0 && rng.Intn(2) == 0 {
				if _, err := d.RemoveEdge(u, v); err != nil {
					t.Fatalf("remove edge: %v", err)
				}
				break
			}
		}
	}
}

func TestDynamicStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDynamic(MustNew(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}))
	for step := 0; step < 200; step++ {
		churn(t, d, rng)
		st := d.ExportState()
		r, err := RestoreDynamic(st)
		if err != nil {
			t.Fatalf("step %d: restore: %v", step, err)
		}
		if !reflect.DeepEqual(r.ExportState(), st) {
			t.Fatalf("step %d: export→restore→export not identical", step)
		}
		if r.NumNodes() != d.NumNodes() || r.NumEdges() != d.NumEdges() {
			t.Fatalf("step %d: counts diverge: %d/%d vs %d/%d",
				step, r.NumNodes(), r.NumEdges(), d.NumNodes(), d.NumEdges())
		}
	}
}

// TestDynamicStateRecyclingDeterminism is the property the full-state export
// exists for: after restore, the SAME future mutations must land in the SAME
// slots, or replayed logs would diverge from the original run.
func TestDynamicStateRecyclingDeterminism(t *testing.T) {
	d := NewDynamic(MustNew(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
	if _, err := d.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RemoveNode(3); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreDynamic(d.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	// Both must recycle the freed slots in the same (LIFO) order and mint
	// identical edge slots.
	for step := 0; step < 4; step++ {
		di, ri := d.AddNode(), r.AddNode()
		if di != ri {
			t.Fatalf("step %d: node slots diverge: %d vs %d", step, di, ri)
		}
		de, err1 := d.AddEdge(min(0, di), max(0, di))
		re, err2 := r.AddEdge(min(0, ri), max(0, ri))
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: add edge: %v / %v", step, err1, err2)
		}
		if de != re {
			t.Fatalf("step %d: edge slots diverge: %d vs %d", step, de, re)
		}
	}
	if !reflect.DeepEqual(r.ExportState(), d.ExportState()) {
		t.Fatalf("states diverged after identical mutations")
	}
}

func TestRestoreDynamicRejectsCorruptStates(t *testing.T) {
	base := func() DynamicState {
		d := NewDynamic(MustNew(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}))
		if _, err := d.RemoveNode(3); err != nil {
			t.Fatal(err)
		}
		return d.ExportState()
	}
	cases := []struct {
		name   string
		mutate func(*DynamicState)
	}{
		{"adjacency length mismatch", func(st *DynamicState) { st.Adj = st.Adj[:len(st.Adj)-1] }},
		{"edge endpoint out of range", func(st *DynamicState) { st.Ends[0][1] = 99 }},
		{"edge endpoints unordered", func(st *DynamicState) { st.Ends[0] = [2]int{1, 0} }},
		{"edge joins inactive node", func(st *DynamicState) { st.Ends[0] = [2]int{0, 3} }},
		{"inactive node with arcs", func(st *DynamicState) { st.Active[0] = false; st.FreeN = append(st.FreeN, 0) }},
		{"node lists foreign edge", func(st *DynamicState) { st.Adj[0] = append(st.Adj[0], 1) }},
		{"edge id out of range", func(st *DynamicState) { st.Adj[0][0] = 42 }},
		{"edge missing from one list", func(st *DynamicState) { st.Adj[1] = st.Adj[1][:len(st.Adj[1])-1] }},
		{"free list holds live slot", func(st *DynamicState) { st.FreeN = append(st.FreeN, 0) }},
		{"free list duplicate", func(st *DynamicState) { st.FreeN = append(st.FreeN, st.FreeN...) }},
		{"free list incomplete", func(st *DynamicState) { st.FreeE = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base()
			tc.mutate(&st)
			if _, err := RestoreDynamic(st); err == nil {
				t.Fatalf("corrupt state accepted")
			}
		})
	}
}
