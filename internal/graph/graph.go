// Package graph provides the undirected network model used by all load
// balancing processes in this repository, together with generators for the
// graph classes that appear in the paper's comparison tables (hypercubes,
// r-dimensional tori, constant-degree expanders, arbitrary graphs) and basic
// structural algorithms (BFS, connectivity, diameter).
//
// Nodes are identified by integers 0..N-1. Every undirected edge carries an
// index 0..M-1; by convention the endpoints of edge e are ordered
// U(e) < V(e), and a positive signed flow on e means "from U(e) to V(e)".
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Arc is one direction of an undirected edge, as seen from a particular node
// in its adjacency list.
type Arc struct {
	// To is the neighbour at the other end of the edge.
	To int
	// Edge is the index of the underlying undirected edge.
	Edge int
	// Out is +1 if travelling along this arc goes from U(e) to V(e)
	// (the positive flow direction), and -1 otherwise. A node sending
	// load along the arc adds Out*amount to the signed flow of the edge.
	Out int
}

// Graph is an immutable, simple, undirected graph.
type Graph struct {
	n     int
	edges [][2]int
	adj   [][]Arc
	deg   []int
}

var (
	// ErrEmptyGraph is returned when a graph with no nodes is requested.
	ErrEmptyGraph = errors.New("graph: must have at least one node")
	// ErrSelfLoop is returned when an edge connects a node to itself.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
	// ErrDuplicateEdge is returned when the same edge appears twice.
	ErrDuplicateEdge = errors.New("graph: duplicate edge")
	// ErrNodeRange is returned when an edge endpoint is out of range.
	ErrNodeRange = errors.New("graph: node index out of range")
)

// New builds a graph with n nodes and the given undirected edges. Edges may
// be listed in either endpoint order; they are normalized so that
// U(e) < V(e). Self loops and duplicate edges are rejected.
func New(n int, edges [][2]int) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	g := &Graph{
		n:     n,
		edges: make([][2]int, 0, len(edges)),
		adj:   make([][]Arc, n),
		deg:   make([]int, n),
	}
	seen := make(map[[2]int]struct{}, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrNodeRange, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, u, v)
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
		}
		seen[key] = struct{}{}
		idx := len(g.edges)
		g.edges = append(g.edges, key)
		g.adj[u] = append(g.adj[u], Arc{To: v, Edge: idx, Out: +1})
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: idx, Out: -1})
		g.deg[u]++
		g.deg[v]++
	}
	return g, nil
}

// MustNew is New for statically known-valid inputs; it panics on error and
// is intended for tests and internal generators only.
func MustNew(n int, edges [][2]int) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return g.deg[i] }

// MaxDegree returns the maximum degree over all nodes (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.deg {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree over all nodes.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.deg[0]
	for _, d := range g.deg[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Degrees returns a copy of the degree sequence.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	copy(out, g.deg)
	return out
}

// Neighbors returns the adjacency list of node i. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(i int) []Arc { return g.adj[i] }

// EdgeEndpoints returns the endpoints (u, v) of edge e with u < v.
func (g *Graph) EdgeEndpoints(e int) (u, v int) {
	return g.edges[e][0], g.edges[e][1]
}

// Edges returns a copy of the normalized edge list.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, len(g.edges))
	copy(out, g.edges)
	return out
}

// HasEdge reports whether nodes u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if g.deg[u] > g.deg[v] {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// EdgeIndex returns the index of edge {u,v} and whether it exists.
func (g *Graph) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.Edge, true
		}
	}
	return 0, false
}

// BFSDist returns the BFS distance from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected (a single node counts
// as connected).
func (g *Graph) IsConnected() bool {
	dist := g.BFSDist(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter computes the exact diameter by running a BFS from every node.
// It returns an error if the graph is disconnected. Runtime is O(n*m), which
// is fine at the simulation scales used in this repository.
func (g *Graph) Diameter() (int, error) {
	diam := 0
	for s := 0; s < g.n; s++ {
		for _, d := range g.BFSDist(s) {
			if d < 0 {
				return 0, errors.New("graph: diameter of disconnected graph")
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, nil
}

// ConnectedComponents returns the node sets of the connected components,
// sorted by their smallest node.
func (g *Graph) ConnectedComponents() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		members := []int{s}
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if comp[a.To] < 0 {
					comp[a.To] = id
					members = append(members, a.To)
					queue = append(queue, a.To)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// String returns a short human-readable summary such as "graph(n=16,m=32,d=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d,m=%d,d=%d)", g.n, g.M(), g.MaxDegree())
}
