package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// Hypercube returns the dim-dimensional hypercube with n = 2^dim nodes.
// Node i and node j are adjacent iff their binary labels differ in exactly
// one bit. Every node has degree dim; the diameter is dim.
func Hypercube(dim int) (*Graph, error) {
	if dim < 0 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [0,24]", dim)
	}
	n := 1 << dim
	edges := make([][2]int, 0, n*dim/2)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return New(n, edges)
}

// Torus returns the r-dimensional torus with side lengths dims[0..r-1] and
// wrap-around edges in every dimension. Every side must be at least 3 so the
// graph stays simple (side 2 would create parallel edges). Node indices are
// row-major over the dimensions.
func Torus(dims ...int) (*Graph, error) {
	if len(dims) == 0 {
		return nil, errors.New("graph: torus needs at least one dimension")
	}
	n := 1
	for _, s := range dims {
		if s < 3 {
			return nil, fmt.Errorf("graph: torus side %d must be >= 3", s)
		}
		n *= s
	}
	strides := make([]int, len(dims))
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= dims[i]
	}
	coord := make([]int, len(dims))
	edges := make([][2]int, 0, n*len(dims))
	for u := 0; u < n; u++ {
		rem := u
		for i := range dims {
			coord[i] = rem / strides[i]
			rem %= strides[i]
		}
		for i, s := range dims {
			next := (coord[i] + 1) % s
			v := u + (next-coord[i])*strides[i]
			edges = append(edges, [2]int{u, v})
		}
	}
	return New(n, edges)
}

// Grid2D returns the rows x cols grid without wrap-around edges.
func Grid2D(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid dimensions %dx%d must be positive", rows, cols)
	}
	n := rows * cols
	edges := make([][2]int, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				edges = append(edges, [2]int{u, u + 1})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{u, u + cols})
			}
		}
	}
	return New(n, edges)
}

// Cycle returns the n-node cycle (n >= 3).
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return New(n, edges)
}

// Path returns the n-node path graph.
func Path(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: path needs n >= 1, got %d", n)
	}
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return New(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: complete graph needs n >= 1, got %d", n)
	}
	edges := make([][2]int, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return New(n, edges)
}

// Star returns the n-node star with node 0 at the centre.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return New(n, edges)
}

// CompleteBinaryTree returns the complete binary tree with 2^(depth+1)-1
// nodes; node 0 is the root and node i has children 2i+1 and 2i+2.
func CompleteBinaryTree(depth int) (*Graph, error) {
	if depth < 0 || depth > 22 {
		return nil, fmt.Errorf("graph: binary tree depth %d out of range [0,22]", depth)
	}
	n := (1 << (depth + 1)) - 1
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{(v - 1) / 2, v})
	}
	return New(n, edges)
}

// RandomRegular returns a random d-regular simple graph on n nodes using the
// configuration (pairing) model with edge-swap repair: stubs are paired
// uniformly at random, and any self loops or parallel edges are removed by
// random double-edge swaps (which preserve all degrees). Pure rejection
// would need ~exp(d²/4) attempts on small dense instances; the repair phase
// makes the generator reliable for all 1 <= d < n with n*d even. For small
// constant d the result is an expander with high probability, which is how
// the paper's "expanders with d = O(1)" row is instantiated.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: random regular needs 1 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs n*d even, got n=%d d=%d", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		edges, ok := pairAndRepair(n, d, rng)
		if !ok {
			continue
		}
		g, err := New(n, edges)
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: random regular generation failed after %d attempts (n=%d d=%d)", maxAttempts, n, d)
}

// pairAndRepair draws a random stub pairing and repairs self loops and
// parallel edges via random double-edge swaps. It returns the simple edge
// list, or ok=false when the repair budget is exhausted (caller restarts).
func pairAndRepair(n, d int, rng *rand.Rand) ([][2]int, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	m := n * d / 2
	edges := make([][2]int, 0, m)
	for i := 0; i < len(stubs); i += 2 {
		edges = append(edges, [2]int{stubs[i], stubs[i+1]})
	}
	norm := func(e [2]int) [2]int {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		return e
	}
	// count tracks multiplicities of normalized non-loop edges so "bad"
	// membership (loop or multiplicity > 1) is O(1) to evaluate.
	count := make(map[[2]int]int, m)
	for _, e := range edges {
		if e[0] != e[1] {
			count[norm(e)]++
		}
	}
	isBad := func(e [2]int) bool {
		return e[0] == e[1] || count[norm(e)] > 1
	}
	var bad []int
	for i, e := range edges {
		if isBad(e) {
			bad = append(bad, i)
		}
	}
	// Each accepted swap of a bad edge with a random partner strictly
	// reduces badness in expectation; the budget is generous.
	budget := 200 * (len(bad) + 1) * (d + 1)
	for len(bad) > 0 && budget > 0 {
		budget--
		// Take an arbitrary still-bad entry (entries may have been healed
		// by earlier swaps; drop those lazily).
		bi := bad[len(bad)-1]
		if !isBad(edges[bi]) {
			bad = bad[:len(bad)-1]
			continue
		}
		bj := rng.Intn(m)
		if bj == bi {
			continue
		}
		u, v := edges[bi][0], edges[bi][1]
		x, y := edges[bj][0], edges[bj][1]
		if rng.Intn(2) == 1 {
			x, y = y, x
		}
		// Proposed replacement: (u,x) and (v,y).
		if u == x || v == y {
			continue
		}
		if count[norm([2]int{u, x})] > 0 || count[norm([2]int{v, y})] > 0 {
			continue
		}
		// Remove the two old edges from the multiset, insert the new pair.
		for _, old := range [][2]int{edges[bi], edges[bj]} {
			if old[0] != old[1] {
				count[norm(old)]--
			}
		}
		edges[bi] = [2]int{u, x}
		edges[bj] = [2]int{v, y}
		count[norm(edges[bi])]++
		count[norm(edges[bj])]++
		if !isBad(edges[bi]) {
			bad = bad[:len(bad)-1]
		}
		// The partner edge was simple before and both new edges were
		// checked fresh, so no new bad entries appear.
	}
	for _, e := range edges {
		if isBad(e) {
			return nil, false
		}
	}
	out := make([][2]int, m)
	for i, e := range edges {
		out[i] = norm(e)
	}
	return out, true
}

// ErdosRenyi returns a connected Erdős–Rényi G(n,p) graph: edges are sampled
// independently with probability p, and if the sample is disconnected one
// bridging edge per extra component is added between uniformly random nodes
// of adjacent components (so the degree distribution is perturbed only
// negligibly). This is the "arbitrary graphs" class of Tables 1 and 2, which
// in particular is non-regular.
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: erdos-renyi needs n >= 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: erdos-renyi probability %v out of [0,1]", p)
	}
	edges := make([][2]int, 0, int(float64(n*(n-1)/2)*p)+n)
	seen := make(map[[2]int]struct{})
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
				seen[[2]int{u, v}] = struct{}{}
			}
		}
	}
	g, err := New(n, edges)
	if err != nil {
		return nil, err
	}
	comps := g.ConnectedComponents()
	for len(comps) > 1 {
		a := comps[0][rng.Intn(len(comps[0]))]
		b := comps[1][rng.Intn(len(comps[1]))]
		u, v := a, b
		if u > v {
			u, v = v, u
		}
		if _, dup := seen[[2]int{u, v}]; !dup {
			edges = append(edges, [2]int{u, v})
			seen[[2]int{u, v}] = struct{}{}
		}
		g, err = New(n, edges)
		if err != nil {
			return nil, err
		}
		comps = g.ConnectedComponents()
	}
	return g, nil
}

// Lollipop returns a lollipop graph: a clique on cliqueSize nodes with a path
// of pathLen extra nodes attached to clique node 0. It is a convenient
// low-expansion, non-regular stress test for discrepancy experiments.
func Lollipop(cliqueSize, pathLen int) (*Graph, error) {
	if cliqueSize < 2 || pathLen < 1 {
		return nil, fmt.Errorf("graph: lollipop needs cliqueSize >= 2 and pathLen >= 1, got %d, %d", cliqueSize, pathLen)
	}
	n := cliqueSize + pathLen
	edges := make([][2]int, 0, cliqueSize*(cliqueSize-1)/2+pathLen)
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	prev := 0
	for k := 0; k < pathLen; k++ {
		next := cliqueSize + k
		edges = append(edges, [2]int{prev, next})
		prev = next
	}
	return New(n, edges)
}
