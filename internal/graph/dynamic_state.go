package graph

import (
	"fmt"
)

// DynamicState is the full serializable state of a Dynamic graph —
// including tombstoned slots and the LIFO free lists, because slot
// recycling order is part of the graph's deterministic behaviour: two
// Dynamics that are "the same graph" but recycle slots differently diverge
// on the next join. Engines persist it to reach bit-identical recovery.
//
// Adjacency is stored as edge identifiers per node (in adjacency-list
// order); arc direction and the neighbour index are re-derived from Ends,
// so the state cannot encode an inconsistent arc.
type DynamicState struct {
	Active []bool
	Adj    [][]int  // edge ids, one list per node slot, in list order
	Ends   [][2]int // per edge slot; [-1,-1] marks a freed slot
	FreeN  []int    // freed node slots, LIFO (last entry recycled first)
	FreeE  []int    // freed edge slots, LIFO
}

// ExportState captures the graph's complete state. The result shares no
// memory with the graph.
func (d *Dynamic) ExportState() DynamicState {
	st := DynamicState{
		Active: append([]bool(nil), d.active...),
		Adj:    make([][]int, len(d.adj)),
		Ends:   append([][2]int(nil), d.ends...),
		FreeN:  append([]int(nil), d.freeN...),
		FreeE:  append([]int(nil), d.freeE...),
	}
	for i, arcs := range d.adj {
		if len(arcs) == 0 {
			continue
		}
		ids := make([]int, len(arcs))
		for k, a := range arcs {
			ids[k] = a.Edge
		}
		st.Adj[i] = ids
	}
	return st
}

// RestoreDynamic rebuilds a Dynamic from an exported state, validating the
// internal invariants (endpoint consistency, degree counts, free lists
// matching tombstones) so a corrupt or hand-built state fails here instead
// of corrupting a later mutation.
func RestoreDynamic(st DynamicState) (*Dynamic, error) {
	nSlots, eSlots := len(st.Active), len(st.Ends)
	if len(st.Adj) != nSlots {
		return nil, fmt.Errorf("graph: adjacency lists %d != node slots %d", len(st.Adj), nSlots)
	}
	d := &Dynamic{
		active: append([]bool(nil), st.Active...),
		adj:    make([][]Arc, nSlots),
		ends:   append([][2]int(nil), st.Ends...),
		deg:    make([]int, nSlots),
		freeN:  append([]int(nil), st.FreeN...),
		freeE:  append([]int(nil), st.FreeE...),
	}
	edgeSeen := make([]int, eSlots) // how many endpoints listed each edge
	for e, ends := range st.Ends {
		u, v := ends[0], ends[1]
		if u == -1 && v == -1 {
			continue
		}
		if u < 0 || v < 0 || u >= nSlots || v >= nSlots || u >= v {
			return nil, fmt.Errorf("graph: edge slot %d has invalid endpoints (%d,%d)", e, u, v)
		}
		if !st.Active[u] || !st.Active[v] {
			return nil, fmt.Errorf("graph: edge slot %d joins inactive endpoints (%d,%d)", e, u, v)
		}
		d.m++
	}
	for i, ids := range st.Adj {
		if len(ids) > 0 && !st.Active[i] {
			return nil, fmt.Errorf("graph: inactive node slot %d has %d arcs", i, len(ids))
		}
		arcs := make([]Arc, len(ids))
		for k, e := range ids {
			if e < 0 || e >= eSlots {
				return nil, fmt.Errorf("graph: node %d lists edge slot %d out of range", i, e)
			}
			u, v := st.Ends[e][0], st.Ends[e][1]
			switch i {
			case u:
				arcs[k] = Arc{To: v, Edge: e, Out: +1}
			case v:
				arcs[k] = Arc{To: u, Edge: e, Out: -1}
			default:
				return nil, fmt.Errorf("graph: node %d lists edge %d (%d,%d) it is no endpoint of", i, e, u, v)
			}
			edgeSeen[e]++
		}
		d.adj[i] = arcs
		d.deg[i] = len(arcs)
	}
	for _, a := range st.Active {
		if a {
			d.n++
		}
	}
	for e, ends := range st.Ends {
		want := 2
		if ends[0] == -1 && ends[1] == -1 {
			want = 0
		}
		if edgeSeen[e] != want {
			return nil, fmt.Errorf("graph: edge slot %d appears in %d adjacency lists, want %d", e, edgeSeen[e], want)
		}
	}
	// Free lists must tombstone exactly the inactive/freed slots, each once.
	if err := checkFreeList(st.FreeN, nSlots, func(i int) bool { return !st.Active[i] }, "node"); err != nil {
		return nil, err
	}
	if err := checkFreeList(st.FreeE, eSlots, func(e int) bool { return st.Ends[e][0] == -1 }, "edge"); err != nil {
		return nil, err
	}
	return d, nil
}

func checkFreeList(free []int, slots int, isFree func(int) bool, kind string) error {
	seen := make(map[int]bool, len(free))
	for _, s := range free {
		if s < 0 || s >= slots {
			return fmt.Errorf("graph: free %s slot %d out of range", kind, s)
		}
		if !isFree(s) {
			return fmt.Errorf("graph: free list holds live %s slot %d", kind, s)
		}
		if seen[s] {
			return fmt.Errorf("graph: free list holds %s slot %d twice", kind, s)
		}
		seen[s] = true
	}
	want := 0
	for s := 0; s < slots; s++ {
		if isFree(s) {
			want++
		}
	}
	if len(free) != want {
		return fmt.Errorf("graph: free list holds %d %s slots, want %d", len(free), kind, want)
	}
	return nil
}
