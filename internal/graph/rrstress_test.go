package graph

import (
	"math/rand"
	"testing"
)

func TestRandomRegularFormerlyFlakySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(-4226838690536793412))
	g, err := RandomRegular(12, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("not connected")
	}
}

func TestRandomRegularDenseStress(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(seed)%8
		d := 5
		if n*d%2 != 0 {
			n++
		}
		g, err := RandomRegular(n, d, rng)
		if err != nil {
			t.Fatalf("seed %d n=%d d=%d: %v", seed, n, d, err)
		}
		for i := 0; i < g.N(); i++ {
			if g.Degree(i) != d {
				t.Fatalf("seed %d: degree %d != %d", seed, g.Degree(i), d)
			}
		}
	}
}
