package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHypercube(t *testing.T) {
	for dim := 0; dim <= 6; dim++ {
		g, err := Hypercube(dim)
		if err != nil {
			t.Fatalf("Hypercube(%d): %v", dim, err)
		}
		if g.N() != 1<<dim {
			t.Errorf("dim %d: N = %d, want %d", dim, g.N(), 1<<dim)
		}
		if g.M() != dim*(1<<dim)/2 {
			t.Errorf("dim %d: M = %d, want %d", dim, g.M(), dim*(1<<dim)/2)
		}
		for i := 0; i < g.N(); i++ {
			if g.Degree(i) != dim {
				t.Fatalf("dim %d: Degree(%d) = %d, want %d", dim, i, g.Degree(i), dim)
			}
		}
		if dim > 0 {
			d, err := g.Diameter()
			if err != nil {
				t.Fatalf("diameter: %v", err)
			}
			if d != dim {
				t.Errorf("dim %d: diameter = %d, want %d", dim, d, dim)
			}
		}
	}
	if _, err := Hypercube(-1); err == nil {
		t.Error("Hypercube(-1) should error")
	}
	if _, err := Hypercube(25); err == nil {
		t.Error("Hypercube(25) should error")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatalf("Torus(4,5): %v", err)
	}
	if g.N() != 20 {
		t.Errorf("N = %d, want 20", g.N())
	}
	if g.M() != 40 {
		t.Errorf("M = %d, want 40 (2 per node)", g.M())
	}
	for i := 0; i < g.N(); i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("Degree(%d) = %d, want 4", i, g.Degree(i))
		}
	}
	if !g.IsConnected() {
		t.Error("torus should be connected")
	}
	// 3-dimensional torus.
	g3, err := Torus(3, 3, 3)
	if err != nil {
		t.Fatalf("Torus(3,3,3): %v", err)
	}
	if g3.N() != 27 {
		t.Errorf("3-d torus N = %d, want 27", g3.N())
	}
	for i := 0; i < g3.N(); i++ {
		if g3.Degree(i) != 6 {
			t.Fatalf("3-d torus Degree(%d) = %d, want 6", i, g3.Degree(i))
		}
	}
	d, err := g3.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("3x3x3 torus diameter = %d, want 3", d)
	}
	if _, err := Torus(); err == nil {
		t.Error("Torus() with no dims should error")
	}
	if _, err := Torus(2, 4); err == nil {
		t.Error("Torus with side 2 should error")
	}
}

func TestTorusDiameterMatchesFormula(t *testing.T) {
	g, err := Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 { // floor(6/2)+floor(6/2)
		t.Errorf("6x6 torus diameter = %d, want 6", d)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d, want 12", g.N())
	}
	if g.M() != 3*3+2*4 { // rows*(cols-1) + (rows-1)*cols
		t.Errorf("M = %d, want 17", g.M())
	}
	if g.MaxDegree() != 4 || g.MinDegree() != 2 {
		t.Errorf("degrees = %d/%d, want 4/2", g.MaxDegree(), g.MinDegree())
	}
	if _, err := Grid2D(0, 3); err == nil {
		t.Error("Grid2D(0,3) should error")
	}
}

func TestCyclePathCompleteStar(t *testing.T) {
	cyc, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.M() != 5 || cyc.MaxDegree() != 2 {
		t.Errorf("cycle: m=%d d=%d, want 5/2", cyc.M(), cyc.MaxDegree())
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should error")
	}

	p, err := Path(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != 3 {
		t.Errorf("path m = %d, want 3", p.M())
	}
	if _, err := Path(0); err == nil {
		t.Error("Path(0) should error")
	}

	k, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if k.M() != 15 || k.MinDegree() != 5 {
		t.Errorf("K6: m=%d mindeg=%d, want 15/5", k.M(), k.MinDegree())
	}

	st, err := Star(7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degree(0) != 6 || st.MaxDegree() != 6 || st.MinDegree() != 1 {
		t.Errorf("star degrees wrong: centre %d max %d min %d", st.Degree(0), st.MaxDegree(), st.MinDegree())
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) should error")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g, err := CompleteBinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 15 || g.M() != 14 {
		t.Errorf("tree: n=%d m=%d, want 15/14", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("tree should be connected")
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d, want 2", g.Degree(0))
	}
	if _, err := CompleteBinaryTree(-1); err == nil {
		t.Error("negative depth should error")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d int }{{16, 3}, {32, 4}, {50, 5}, {64, 3}} {
		if tc.n*tc.d%2 != 0 {
			continue
		}
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for i := 0; i < g.N(); i++ {
			if g.Degree(i) != tc.d {
				t.Fatalf("n=%d d=%d: Degree(%d) = %d", tc.n, tc.d, i, g.Degree(i))
			}
		}
		if !g.IsConnected() {
			t.Errorf("n=%d d=%d: not connected", tc.n, tc.d)
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d should error")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n should error")
	}
	if _, err := RandomRegular(4, 0, rng); err == nil {
		t.Error("d < 1 should error")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := ErdosRenyi(100, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("N = %d, want 100", g.N())
	}
	if !g.IsConnected() {
		t.Error("ErdosRenyi must return a connected graph")
	}
	// Even a sparse draw must be connected via bridging edges.
	sparse, err := ErdosRenyi(50, 0.001, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsConnected() {
		t.Error("sparse ErdosRenyi must still be connected")
	}
	if _, err := ErdosRenyi(10, 1.5, rng); err == nil {
		t.Error("p > 1 should error")
	}
	if _, err := ErdosRenyi(0, 0.5, rng); err == nil {
		t.Error("n = 0 should error")
	}
}

func TestLollipop(t *testing.T) {
	g, err := Lollipop(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Errorf("N = %d, want 8", g.N())
	}
	if g.M() != 10+3 {
		t.Errorf("M = %d, want 13", g.M())
	}
	if !g.IsConnected() {
		t.Error("lollipop should be connected")
	}
	if g.Degree(7) != 1 {
		t.Errorf("path end degree = %d, want 1", g.Degree(7))
	}
	if _, err := Lollipop(1, 1); err == nil {
		t.Error("cliqueSize < 2 should error")
	}
}

// TestRandomRegularSimpleProperty checks, over random (n, d, seed) draws,
// that the generator always yields simple d-regular connected graphs.
func TestRandomRegularSimpleProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 10 + int(nRaw)%40
		d := 3 + int(dRaw)%3
		if n*d%2 != 0 {
			n++
		}
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomRegular(n, d, rng)
		if err != nil {
			return false
		}
		if !g.IsConnected() {
			return false
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges() {
			if e[0] == e[1] || seen[e] {
				return false
			}
			seen[e] = true
		}
		for i := 0; i < g.N(); i++ {
			if g.Degree(i) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
