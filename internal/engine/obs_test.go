package engine

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/obs"
)

// scrape renders the engine's registry and returns the parsed series map.
func scrape(t *testing.T, e *Engine) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := e.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := obs.SampleMap([]byte(b.String()))
	if err != nil {
		t.Fatalf("engine exposition invalid: %v\n%s", err, b.String())
	}
	return m
}

// TestStepInstrumentation checks the engine's own metrics after a short
// run: round and event counters, per-stage timing histograms, and the
// published point-in-time gauges.
func TestStepInstrumentation(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N())})
	if err := e.Schedule(Arrival(0, 3, 5)); err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	for i := 0; i < rounds; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	e.PublishMetrics()
	m := scrape(t, e)

	if got := m["engine_rounds_total"]; got != rounds {
		t.Errorf("engine_rounds_total = %v, want %d", got, rounds)
	}
	if got := m[`engine_events_applied_total{kind="arrival"}`]; got != 1 {
		t.Errorf("arrival counter = %v, want 1", got)
	}
	if got := m["engine_step_seconds_count"]; got != rounds {
		t.Errorf("engine_step_seconds_count = %v, want %d", got, rounds)
	}
	for _, stage := range []string{"round_flows", "round_decide", "round_deliver", "round_update", "gate_maintain", "sample"} {
		want := float64(rounds)
		if stage == "gate_maintain" && !e.GateEnabled() {
			want = 0 // ENGINE_GATE=off leg: the full-scan round never observes it
		}
		key := MetricStepStageSeconds + `_count{stage="` + stage + `"}`
		if got := m[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	if got := m[MetricStepStageSeconds+`_count{stage="event_apply"}`]; got != 1 {
		t.Errorf("event_apply count = %v, want 1 (one non-empty batch)", got)
	}
	if got := m["engine_nodes"]; got != float64(g.N()) {
		t.Errorf("engine_nodes = %v, want %d", got, g.N())
	}
	if got := m["engine_round"]; got != rounds {
		t.Errorf("engine_round = %v, want %d", got, rounds)
	}
	if got := m["engine_bound"]; got <= 0 {
		t.Errorf("engine_bound = %v, want the positive Theorem 3 bound", got)
	}
}

// TestStepInstrumentationRejected: an event that fails at apply time must
// tick the rejected counter while leaving the engine usable.
func TestStepInstrumentationRejected(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N())})
	if err := e.Schedule(Leave(0, 999)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("Step applied a leave for a node that does not exist")
	}
	m := scrape(t, e)
	if got := m["engine_events_rejected_total"]; got != 1 {
		t.Errorf("engine_events_rejected_total = %v, want 1", got)
	}
	if err := e.Step(); err != nil {
		t.Fatalf("engine unusable after rejected event: %v", err)
	}
}

// TestEngineFlightRecorder checks the bounded trace ring: event and round
// records in order, eviction at the configured window.
func TestEngineFlightRecorder(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N()), FlightWindow: 4})
	if err := e.Schedule(Arrival(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	recs := e.Trace(0)
	if len(recs) != 4 {
		t.Fatalf("trace has %d records, want the window of 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Type != "round" {
			// The arrival record was evicted rounds ago.
			t.Errorf("record %d type = %q, want round", i, rec.Type)
		}
		if i > 0 && rec.Seq != recs[i-1].Seq+1 {
			t.Errorf("record %d seq %d does not follow %d", i, rec.Seq, recs[i-1].Seq)
		}
	}
	e.PublishMetrics()
	m := scrape(t, e)
	// 1 event + 10 rounds through a window of 4 leaves 7 evicted.
	if got := m["engine_trace_dropped_records"]; got != 7 {
		t.Errorf("engine_trace_dropped_records = %v, want 7", got)
	}
}

// TestPromEndpoint scrapes a live server: the exposition must parse, carry
// the engine and ingest families, and refresh gauges under the lock.
func TestPromEndpoint(t *testing.T) {
	ts, _ := startTestServer(t)
	status, _ := postJSON(t, ts.URL+"/events", map[string]any{"kind": "arrival", "node": 1, "tokens": 3})
	if status != http.StatusAccepted {
		t.Fatalf("event injection: status %d", status)
	}
	resp, err := http.Post(ts.URL+"/step?rounds=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	raw := []byte(sb.String())
	m, err := obs.SampleMap(raw)
	if err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, raw)
	}
	for _, family := range []string{
		"engine_rounds_total", "engine_max_avg", "engine_bound", "engine_dummies_created",
		"engine_ingest_lines_total", "go_goroutines",
	} {
		if _, ok := m[family]; !ok {
			t.Errorf("scrape missing family %s", family)
		}
	}
	if got := m["engine_rounds_total"]; got != 2 {
		t.Errorf("engine_rounds_total = %v, want 2", got)
	}
	if got := m[MetricStepSeconds+"_count"]; got != 2 {
		t.Errorf("step histogram count = %v, want 2", got)
	}
	if got := m[`engine_events_applied_total{kind="arrival"}`]; got != 1 {
		t.Errorf("arrival counter = %v, want 1", got)
	}

	if resp, err := http.Post(ts.URL+"/metrics/prom", "", nil); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics/prom: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestTraceEndpoint checks the JSONL flight-recorder dump over HTTP.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := startTestServer(t)
	if status, _ := postJSON(t, ts.URL+"/events", map[string]any{"kind": "arrival", "node": 0, "tokens": 1}); status != http.StatusAccepted {
		t.Fatalf("event injection: status %d", status)
	}
	resp, err := http.Post(ts.URL+"/step?rounds=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var recs []TraceRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 4 { // 1 event + 3 round summaries
		t.Fatalf("trace has %d records, want 4: %+v", len(recs), recs)
	}
	if recs[0].Type != "event" || recs[0].Kind != "arrival" {
		t.Errorf("first record = %+v, want the applied arrival", recs[0])
	}
	for _, rec := range recs[1:] {
		if rec.Type != "round" {
			t.Errorf("record = %+v, want a round summary", rec)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	body, n := resp.Body, 0
	sc = bufio.NewScanner(body)
	for sc.Scan() {
		n++
	}
	body.Close()
	if n != 1 {
		t.Errorf("trace?n=1 returned %d lines", n)
	}

	resp, err = http.Get(ts.URL + "/debug/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trace?n=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestRingConcurrentReads pins the documented concurrency contract of the
// metrics ring: Samples and LastSample may run concurrently with Step.
// Under -race this test is the proof.
func TestRingConcurrentReads(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N()), MetricsWindow: 16})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = e.Samples(8)
				if s, ok := e.LastSample(); ok && s.Round < 0 {
					t.Error("negative round in sample")
					return
				}
				_ = e.Trace(8)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
