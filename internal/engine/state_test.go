package engine

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// churnedEngine builds a 4x4-torus engine, drives it through rounds of
// seeded churn-storm events, and returns it mid-flight — a state with
// recycled slots, dummies in play and heterogeneous weights, i.e. the
// hardest case for a byte-identical round trip.
func churnedEngine(t *testing.T, rounds int, workers int) *Engine {
	t.Helper()
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	speeds := make(load.Speeds, g.N())
	for i := range speeds {
		speeds[i] = 1 + int64(i%3)
	}
	rng := rand.New(rand.NewSource(11))
	tasks, err := load.NewTokens(workload.UniformRandom(g.N(), 400, rng))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: speeds, Tasks: tasks, Workers: workers})
	scn := scenarioFor(t, g.N())
	for r := 0; r < rounds; r++ {
		scheduleScenario(t, scn, 3, e)
		if err := e.Step(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	return e
}

func scenarioFor(t *testing.T, n int) workload.Scenario {
	t.Helper()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	scn, err := workload.NewScenario("churn-storm")
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Init(workload.ScenarioParams{
		Nodes: nodes, Seed: 42, Tokens: 3, Wmax: 4, ChurnEvery: 6,
	}); err != nil {
		t.Fatal(err)
	}
	return scn
}

// scheduleScenario feeds the next count scenario events — through the same
// wire decoding path the NDJSON stream and the WAL use — into every engine.
func scheduleScenario(t *testing.T, scn workload.Scenario, count int, engines ...*Engine) {
	t.Helper()
	for k := 0; k < count; k++ {
		w := scn.Next()
		ev, err := FromWire(&w)
		if err != nil {
			t.Fatalf("scenario event %+v: %v", w, err)
		}
		for _, e := range engines {
			if err := e.Schedule(ev); err != nil {
				t.Fatalf("schedule: %v", err)
			}
		}
	}
}

func TestEncodeStateRoundTrip(t *testing.T) {
	e := churnedEngine(t, 12, 4)
	st := e.EncodeState()

	// Worker count is a runtime knob, not state: restoring with a
	// different sharding must still be byte-identical.
	r, err := NewFromState(st, Config{Workers: 1})
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	t.Cleanup(r.Close)
	if !bytes.Equal(r.EncodeState(), st) {
		t.Fatalf("encode→restore→encode is not byte-identical")
	}
	if r.StateHash() != e.StateHash() {
		t.Fatalf("state hashes differ after restore")
	}
	if r.Round() != e.Round() || r.RealTotal() != e.RealTotal() || r.Wmax() != e.Wmax() {
		t.Fatalf("restored scalars diverge: round %d/%d real %d/%d wmax %d/%d",
			r.Round(), e.Round(), r.RealTotal(), e.RealTotal(), r.Wmax(), e.Wmax())
	}

	// The restored engine must not merely look identical — it must BEHAVE
	// identically under further shared churn, round by round.
	scn := scenarioFor(t, 16)
	for round := 0; round < 10; round++ {
		scheduleScenario(t, scn, 2, e, r)
		errE, errR := e.Step(), r.Step()
		if (errE == nil) != (errR == nil) {
			t.Fatalf("round %d: step outcomes diverge: %v vs %v", round, errE, errR)
		}
		if e.StateHash() != r.StateHash() {
			t.Fatalf("round %d: original and restored engines diverged", round)
		}
	}
	if err := r.AuditFull(); err != nil {
		t.Fatalf("restored engine fails conservation: %v", err)
	}
}

func TestNewFromStateRejectsCorruptInput(t *testing.T) {
	e := churnedEngine(t, 6, 2)
	st := e.EncodeState()

	if _, err := NewFromState(nil, Config{}); err == nil {
		t.Fatalf("nil state accepted")
	}
	bad := append([]byte(nil), st...)
	bad[0] ^= 0xff
	if _, err := NewFromState(bad, Config{}); err == nil {
		t.Fatalf("bad magic accepted")
	}
	bad = append([]byte(nil), st...)
	bad[8] = 99
	if _, err := NewFromState(bad, Config{}); err == nil {
		t.Fatalf("unknown version accepted")
	}
	// Every truncation must fail cleanly — a torn snapshot file must never
	// produce a half-restored engine.
	for cut := 9; cut < len(st); cut += 13 {
		if eng, err := NewFromState(st[:cut], Config{Workers: 1}); err == nil {
			eng.Close()
			t.Fatalf("truncation at %d/%d accepted", cut, len(st))
		}
	}
	// Bit flips must never panic; they either fail validation or decode to
	// some other fully consistent state.
	for off := 9; off < len(st); off += 7 {
		mut := append([]byte(nil), st...)
		mut[off] ^= 0x04
		eng, err := NewFromState(mut, Config{Workers: 1})
		if err == nil {
			if err := eng.AuditFull(); err != nil {
				eng.Close()
				t.Fatalf("flip at %d restored an inconsistent engine: %v", off, err)
			}
			eng.Close()
		}
	}
}

// TestStateGolden pins the snapshot encoding: a fixed engine history must
// encode to the exact bytes checked in under testdata/. A diff here means
// the format changed — bump stateVer and write a migration before
// regenerating with -update, or old logs become unreadable.
func TestStateGolden(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	speeds := load.Speeds{1, 2, 3, 1, 2, 3, 1, 2, 3}
	tasks, err := load.NewTokens([]int64{5, 0, 3, 2, 0, 0, 1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: speeds, Tasks: tasks, Workers: 2})
	script := [][]Event{
		{ArrivalTasks(0, 0, []load.Task{{Weight: 3}, {Weight: 1}, {Weight: 2}})},
		{Join(1, 2, 0, 4), Completion(1, 0, 1)},
		{EdgeChange(2, [][2]int{{0, 4}}, nil)},
		{Leave(3, 5)},
		nil,
		nil,
	}
	for round, events := range script {
		for _, ev := range events {
			if err := e.Schedule(ev); err != nil {
				t.Fatalf("round %d: schedule: %v", round, err)
			}
		}
		if err := e.Step(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	got := e.EncodeState()

	golden := filepath.Join("testdata", "state_small_torus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/engine -run TestStateGolden -update` to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot encoding drifted from golden file (%d bytes vs %d): if intentional, bump stateVer and regenerate with -update", len(got), len(want))
	}

	// The checked-in bytes themselves round-trip byte-exactly.
	r, err := NewFromState(want, Config{Workers: 1})
	if err != nil {
		t.Fatalf("golden snapshot rejected: %v", err)
	}
	t.Cleanup(r.Close)
	if !bytes.Equal(r.EncodeState(), want) {
		t.Fatalf("golden snapshot does not round-trip byte-exactly")
	}
}
