package engine

import "sync"

// workerPool is the engine's bounded sharding pool: a fixed set of
// long-lived goroutines executing index-range chunks of the per-node hot
// path. The per-chunk functions the engine submits touch disjoint state
// (each node's pool, each edge's single writer), so a chunked parallel-for
// with a completion barrier is all the coordination the round needs.
type workerPool struct {
	workers int
	jobs    chan poolJob
}

type poolJob struct {
	lo, hi int
	fn     func(i int)
	wg     *sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{
		workers: workers,
		jobs:    make(chan poolJob, workers),
	}
	for w := 0; w < workers; w++ {
		go func() {
			for j := range p.jobs {
				for i := j.lo; i < j.hi; i++ {
					j.fn(i)
				}
				j.wg.Done()
			}
		}()
	}
	return p
}

// forEach runs fn(i) for every i in [0, n), sharded across the pool, and
// returns when all calls have finished. Small inputs run inline.
func (p *workerPool) forEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n < 2*p.workers {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + p.workers - 1) / p.workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.jobs <- poolJob{lo: lo, hi: hi, fn: fn, wg: &wg}
	}
	wg.Wait()
}

// close releases the worker goroutines. The pool must not be used after.
func (p *workerPool) close() { close(p.jobs) }
