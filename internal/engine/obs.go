package engine

import (
	"repro/internal/obs"
)

// Metric and label names exported for scrapers and tests; every series
// lives on the registry returned by Engine.Registry (lbserve serves it at
// GET /metrics/prom).
const (
	// MetricStepStageSeconds is the per-stage step-timing histogram family,
	// labeled by stage: event_apply, ledger, round_flows, round_decide,
	// round_deliver, round_update, gate_maintain, sample.
	MetricStepStageSeconds = "engine_step_stage_seconds"
	// MetricStepSeconds times whole Step calls (events + round + sample).
	MetricStepSeconds = "engine_step_seconds"
)

// StageNames lists the stage label values of MetricStepStageSeconds in
// execution order.
func StageNames() []string {
	return []string{"event_apply", "ledger", "round_flows", "round_decide", "round_deliver", "round_update", "gate_maintain", "sample"}
}

// instruments is the engine's handle bundle on its obs registry. All
// fields are pre-registered at engine construction so a scrape sees every
// family (at zero) before the first Step.
type instruments struct {
	reg *obs.Registry

	stepSeconds *obs.Histogram
	stage       map[string]*obs.Histogram

	roundsTotal    *obs.Counter
	eventsApplied  [6]*obs.Counter // indexed by Kind (1..5)
	eventsRejected *obs.Counter
	traceDropped   *obs.Gauge

	// Point-in-time gauges, refreshed by publish.
	round      *obs.Gauge
	nodes      *obs.Gauge
	edges      *obs.Gauge
	pending    *obs.Gauge
	wmax       *obs.Gauge
	realTotal  *obs.Gauge
	dummies    *obs.Gauge
	fullAudits *obs.Gauge
	maxAvg     *obs.Gauge
	maxMin     *obs.Gauge
	bound      *obs.Gauge
	potential  *obs.Gauge
	hotNodes   *obs.Gauge
	hotEdges   *obs.Gauge
}

func newInstruments(reg *obs.Registry) *instruments {
	in := &instruments{
		reg:         reg,
		stepSeconds: reg.Histogram(MetricStepSeconds, "Wall time of whole engine Step calls (event batch, balancing round, metrics sample).", nil),
		stage:       make(map[string]*obs.Histogram, 8),
		roundsTotal: reg.Counter("engine_rounds_total", "Completed balancing rounds."),
		eventsRejected: reg.Counter("engine_events_rejected_total",
			"Events rejected at apply time (invalid node, topology conflict); the engine stays usable."),
		traceDropped: reg.Gauge("engine_trace_dropped_records",
			"Flight-recorder records evicted by the bounded ring so far."),
		round:      reg.Gauge("engine_round", "Current round index."),
		nodes:      reg.Gauge("engine_nodes", "Active nodes in the topology."),
		edges:      reg.Gauge("engine_edges", "Active edges in the topology."),
		pending:    reg.Gauge("engine_pending_events", "Scheduled, not yet applied events."),
		wmax:       reg.Gauge("engine_wmax", "Current maximum task weight."),
		realTotal:  reg.Gauge("engine_real_total", "Conserved non-dummy task weight W."),
		dummies:    reg.Gauge("engine_dummies_created", "Cumulative dummy weight drawn from the infinite source."),
		fullAudits: reg.Gauge("engine_full_audits", "Stop-the-world conservation recounts run so far."),
		maxAvg: reg.Gauge("engine_max_avg",
			"Max-avg discrepancy of the real load, the quantity Theorem 3 bounds."),
		maxMin:    reg.Gauge("engine_max_min", "Max-min discrepancy of the real load."),
		bound:     reg.Gauge("engine_bound", "Theorem 3 discrepancy bound 2*d*wmax+2 for the current topology."),
		potential: reg.Gauge("engine_potential", "Quadratic potential of the real load."),
		hotNodes: reg.Gauge("engine_hot_nodes",
			"Activity-gate hot-set node occupancy of the last executed round (all active nodes when gating is off)."),
		hotEdges: reg.Gauge("engine_hot_edges",
			"Activity-gate hot-set edge occupancy of the last executed round (all active edges when gating is off)."),
	}
	for _, stage := range StageNames() {
		in.stage[stage] = reg.Histogram(MetricStepStageSeconds,
			"Wall time per Step stage: event application, ledger validation, the four balancing-round phases, metrics sampling.",
			nil, obs.Label{Key: "stage", Value: stage})
	}
	for k := KindTaskArrival; k <= KindEdgeChange; k++ {
		in.eventsApplied[k] = reg.Counter("engine_events_applied_total",
			"Events applied, by kind.", obs.Label{Key: "kind", Value: k.String()})
	}
	return in
}

// publish refreshes the point-in-time gauges. The discrepancy triple is
// passed in so callers that already computed it (sample) do not pay the
// O(n) scan twice.
func (in *instruments) publish(e *Engine, maxAvg, maxMin, potential float64) {
	in.round.SetInt(e.round)
	in.nodes.SetInt(int64(e.topo.NumNodes()))
	in.edges.SetInt(int64(e.topo.NumEdges()))
	in.pending.SetInt(int64(len(e.queue)))
	in.wmax.SetInt(e.wmax)
	in.realTotal.SetInt(e.expectedReal)
	in.dummies.SetInt(e.ledCreated)
	in.fullAudits.SetInt(e.fullAudits)
	in.maxAvg.Set(maxAvg)
	in.maxMin.Set(maxMin)
	in.bound.Set(e.Bound())
	in.potential.Set(potential)
	in.hotNodes.SetInt(int64(e.HotNodes()))
	in.hotEdges.SetInt(int64(e.HotEdges()))
	in.traceDropped.SetInt(e.flight.Dropped())
}

// TraceRecord is one flight-recorder entry: an applied event or a round
// summary, in the order they happened. GET /debug/trace on lbserve dumps
// the ring as JSONL — the seed of the deterministic replay log (ROADMAP
// item 5): the event records carry enough to re-schedule the recent input
// stream, the round records anchor it to observed discrepancy.
type TraceRecord struct {
	// Seq is the engine-assigned monotonically increasing record number.
	Seq int64 `json:"seq"`
	// Type is "event" for an applied event, "round" for a round summary.
	Type string `json:"type"`
	// Round is the round index the record was taken at.
	Round int64 `json:"round"`

	// Event fields.
	Kind   string `json:"kind,omitempty"`
	Node   int    `json:"node,omitempty"`
	Count  int    `json:"count,omitempty"`
	Weight int64  `json:"weight,omitempty"`

	// Round-summary fields. HotNodes/HotEdges is the activity-gate hot-set
	// occupancy of the round (the full active counts when gating is off).
	Nodes     int     `json:"nodes,omitempty"`
	Edges     int     `json:"edges,omitempty"`
	Events    int64   `json:"events,omitempty"`
	Pending   int     `json:"pending,omitempty"`
	MaxAvg    float64 `json:"max_avg,omitempty"`
	StepNanos int64   `json:"step_nanos,omitempty"`
	HotNodes  int     `json:"hot_nodes,omitempty"`
	HotEdges  int     `json:"hot_edges,omitempty"`
}

// recordEvent appends an applied event to the flight recorder.
func (e *Engine) recordEvent(ev Event) {
	rec := TraceRecord{Type: "event", Round: e.round, Kind: ev.Kind.String(), Node: ev.Node}
	switch ev.Kind {
	case KindTaskArrival:
		rec.Count = len(ev.Tasks)
		for _, q := range ev.Tasks {
			rec.Weight += q.Weight
		}
	case KindTaskCompletion:
		rec.Count = ev.Count
	case KindNodeJoin:
		rec.Count = len(ev.Peers)
		rec.Weight = ev.Speed
	case KindEdgeChange:
		rec.Count = len(ev.AddEdges) + len(ev.RemoveEdges)
	}
	e.traceSeq++
	rec.Seq = e.traceSeq
	e.flight.Append(rec)
}

// recordRound appends a round summary to the flight recorder.
func (e *Engine) recordRound(s Sample) {
	e.traceSeq++
	e.flight.Append(TraceRecord{
		Seq: e.traceSeq, Type: "round", Round: s.Round,
		Nodes: s.Nodes, Edges: s.Edges, Events: s.Events,
		Pending: len(e.queue), MaxAvg: s.MaxAvg, StepNanos: s.StepNanos,
		HotNodes: s.HotNodes, HotEdges: s.HotEdges,
	})
}

// Registry returns the engine's metrics registry (lbserve serves it at
// GET /metrics/prom). Instrument updates are atomic, so reading/serving
// the registry needs no engine lock; PublishMetrics refreshes the
// point-in-time gauges first and does need it.
func (e *Engine) Registry() *obs.Registry { return e.instr.reg }

// PublishMetrics refreshes the point-in-time gauges (topology size, queue
// depth, the Theorem 3 discrepancy quantities) into the registry. It runs
// the O(n) discrepancy scan, and like every other engine method it must be
// serialized with Step — lbserve's /metrics/prom handler calls it under
// the server mutex before writing the exposition.
func (e *Engine) PublishMetrics() {
	maxAvg, maxMin, potential := e.discrepancies()
	e.instr.publish(e, maxAvg, maxMin, potential)
}

// Trace returns up to max flight-recorder records, oldest first (all when
// max <= 0). Like Samples, the recorder is internally locked, but the
// records themselves are only appended under the engine's serialization
// domain.
func (e *Engine) Trace(max int) []TraceRecord { return e.flight.Records(max) }
