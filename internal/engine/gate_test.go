package engine

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/wal"
	"repro/internal/workload"
)

// gatedPair builds two engines on the same torus with the same seeded
// load, one gated and one not. It uses New directly — not mustEngine — so
// the ENGINE_GATE matrix override cannot collapse the pair onto one side
// and make the comparison vacuous.
func gatedPair(t *testing.T, rows, cols int, seed int64) (gated, full *Engine) {
	t.Helper()
	build := func(mode GateMode) *Engine {
		g, err := graph.Torus(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		speeds := make(load.Speeds, g.N())
		for i := range speeds {
			speeds[i] = 1 + int64(i%3)
		}
		rng := rand.New(rand.NewSource(seed))
		tasks, err := load.NewTokens(workload.UniformRandom(g.N(), int64(40*g.N()), rng))
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{Graph: g, Speeds: speeds, Tasks: tasks, Workers: 4, Gate: mode})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e
	}
	return build(GateOn), build(GateOff)
}

// TestGateBitIdentityUnderChurn is the gate's core property: on random
// churn streams (arrivals, completions, joins/leaves, edge-change storms)
// the gated engine is bit-identical to the ungated one round by round —
// same state hash, same ledger totals, same dummy draws — and the final
// encodings are byte-equal.
func TestGateBitIdentityUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		gated, full := gatedPair(t, 8, 8, seed)
		if !gated.GateEnabled() || full.GateEnabled() {
			t.Fatalf("pair misconfigured: gate %v/%v", gated.GateEnabled(), full.GateEnabled())
		}

		nodes := make([]int, 64)
		for i := range nodes {
			nodes[i] = i
		}
		scn, err := workload.NewScenario("churn-storm")
		if err != nil {
			t.Fatal(err)
		}
		if err := scn.Init(workload.ScenarioParams{
			Nodes: nodes, Seed: seed, Tokens: 3, Wmax: 4, ChurnEvery: 5,
		}); err != nil {
			t.Fatal(err)
		}

		for r := 0; r < 30; r++ {
			scheduleScenario(t, scn, 3, gated, full)
			errG, errF := gated.Step(), full.Step()
			if (errG == nil) != (errF == nil) {
				t.Fatalf("seed %d round %d: gating changed execution: %v vs %v", seed, r, errG, errF)
			}
			if gated.StateHash() != full.StateHash() {
				t.Fatalf("seed %d round %d: gated state diverged from ungated", seed, r)
			}
			if gated.DummiesCreated() != full.DummiesCreated() {
				t.Fatalf("seed %d round %d: dummy draws diverged: %d vs %d",
					seed, r, gated.DummiesCreated(), full.DummiesCreated())
			}
			if gated.RealTotal() != full.RealTotal() {
				t.Fatalf("seed %d round %d: ledger diverged: %d vs %d",
					seed, r, gated.RealTotal(), full.RealTotal())
			}
		}
		if !bytes.Equal(gated.EncodeState(), full.EncodeState()) {
			t.Fatalf("seed %d: final encodings differ", seed)
		}
		if err := gated.AuditFull(); err != nil {
			t.Fatalf("seed %d: gated engine fails conservation: %v", seed, err)
		}
	}
}

// TestGateToggleMidRun: flipping the gate on and off mid-run must never
// change behaviour — WithGate(true) reconstructs the hot set by waking
// everything, so every toggle point is a valid resume.
func TestGateToggleMidRun(t *testing.T) {
	toggled, full := gatedPair(t, 6, 6, 7)
	scn := scenarioFor(t, 36)
	for r := 0; r < 24; r++ {
		if r%5 == 0 {
			toggled.WithGate(r%2 == 0)
		}
		scheduleScenario(t, scn, 2, toggled, full)
		if err := toggled.Step(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := full.Step(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if toggled.StateHash() != full.StateHash() {
			t.Fatalf("round %d: toggling the gate changed the state", r)
		}
	}
}

// quiescedEngine builds an exactly-uniform torus engine (equal speeds,
// identical loads) and steps it until the hot set drains — the first round
// processes the construction-time blanket wake, finds the bitwise fixed
// point everywhere, and puts the whole graph to sleep.
func quiescedEngine(t *testing.T, rows, cols int) *Engine {
	t.Helper()
	g, err := graph.Torus(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]int64, g.N())
	for i := range vec {
		vec[i] = 8
	}
	tasks, err := load.NewTokens(vec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(g.N()), Tasks: tasks, Workers: 2, Gate: GateOn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for r := 0; r < 4; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.HotEdges() == 0 {
			return e
		}
	}
	t.Fatalf("uniform engine did not quiesce: %d hot edges after 4 rounds", e.HotEdges())
	return nil
}

// TestGateWakeLocality pins the wake rule: a single event into a fully
// quiesced graph marks exactly the touched node's one-hop neighbourhood
// hot, the imbalance ball grows by at most one hop per round, and a
// load-neutral perturbation cools back to zero.
func TestGateWakeLocality(t *testing.T) {
	t.Run("paired-arrival-completion", func(t *testing.T) {
		e := quiescedEngine(t, 8, 8)
		const node = 27
		deg := len(e.Topology().Neighbors(node))
		if err := e.Schedule(Arrival(e.Round(), node, 4)); err != nil {
			t.Fatal(err)
		}
		if err := e.Schedule(Completion(e.Round(), node, 4)); err != nil {
			t.Fatal(err)
		}
		// The wake round processes exactly the touched neighbourhood.
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.HotEdges() != deg || e.HotNodes() != deg+1 {
			t.Fatalf("wake round hot set = %d edges / %d nodes, want %d / %d",
				e.HotEdges(), e.HotNodes(), deg, deg+1)
		}
		// The perturbation was load-neutral (x returns to its exact bits),
		// so the neighbourhood must go right back to sleep.
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.HotEdges() != 0 || e.HotNodes() != 0 {
			t.Fatalf("load-neutral perturbation left %d edges / %d nodes hot",
				e.HotEdges(), e.HotNodes())
		}
	})

	t.Run("single-arrival-ball", func(t *testing.T) {
		e := quiescedEngine(t, 8, 8)
		const node = 27
		if err := e.Schedule(Arrival(e.Round(), node, 3)); err != nil {
			t.Fatal(err)
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		deg := len(e.Topology().Neighbors(node))
		if e.HotEdges() != deg || e.HotNodes() != deg+1 {
			t.Fatalf("wake round hot set = %d edges / %d nodes, want only the 1-hop neighbourhood %d / %d",
				e.HotEdges(), e.HotNodes(), deg, deg+1)
		}
		// Imbalance propagates at most one hop per round: after k further
		// rounds the hot set fits inside the radius-(k+1) ball around the
		// arrival. (It stays non-empty: 3 extra tokens keep x off its old
		// fixed point.)
		for k := 1; k <= 3; k++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			nodes, edges := ballSize(e, node, k+1)
			if e.HotNodes() > nodes || e.HotEdges() > edges {
				t.Fatalf("round +%d: hot set %d nodes / %d edges exceeds radius-%d ball %d / %d",
					k, e.HotNodes(), e.HotEdges(), k+1, nodes, edges)
			}
			if e.HotEdges() == 0 {
				t.Fatalf("round +%d: imbalanced region went to sleep", k)
			}
		}
	})
}

// ballSize returns the node count of the radius-r BFS ball around start
// and the number of edges with both endpoints inside it.
func ballSize(e *Engine, start, r int) (nodes, edges int) {
	depth := map[int]int{start: 0}
	frontier := []int{start}
	for d := 0; d < r; d++ {
		var next []int
		for _, i := range frontier {
			for _, a := range e.Topology().Neighbors(i) {
				if _, ok := depth[a.To]; !ok {
					depth[a.To] = d + 1
					next = append(next, a.To)
				}
			}
		}
		frontier = next
	}
	seen := map[int]bool{}
	for i := range depth {
		for _, a := range e.Topology().Neighbors(i) {
			if _, ok := depth[a.To]; ok && !seen[a.Edge] {
				seen[a.Edge] = true
			}
		}
	}
	return len(depth), len(seen)
}

// TestRecoveryIdentityGatedCuts extends the recovery property to the gate:
// cut-and-recover runs of a gated engine land on the same hash as the
// uninterrupted gated AND ungated runs at every committed batch boundary,
// whether the restored engine itself gates or not — gate state is
// reconstructed at restore, never read from disk.
func TestRecoveryIdentityGatedCuts(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{Dir: dir, Sync: wal.SyncNever, SegmentBytes: 2048, RetainSnapshots: 1000}
	w, rec, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	if rec.HasState() {
		t.Fatalf("fresh dir already holds a log")
	}

	build := func(mode GateMode, sink WALSink) *Engine {
		g, err := graph.Torus(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		speeds := make(load.Speeds, g.N())
		for i := range speeds {
			speeds[i] = 1 + int64(i%2)
		}
		tasks, err := load.NewTokens([]int64{30, 0, 12, 5, 0, 9, 0, 0, 21, 3, 0, 7, 0, 16, 2, 0})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Graph: g, Speeds: speeds, Tasks: tasks, Workers: 2, Gate: mode, SnapshotEvery: 7, WAL: sink}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e
	}
	logged := build(GateOn, w) // the gated run that writes the log
	bareGated := build(GateOn, nil)
	bareFull := build(GateOff, nil)

	hashes := map[int64][sha256.Size]byte{logged.Round(): logged.StateHash()}
	scn := scenarioFor(t, 16)
	for r := 0; r < 30; r++ {
		scheduleScenario(t, scn, 3, logged, bareGated, bareFull)
		errL, errG, errF := logged.Step(), bareGated.Step(), bareFull.Step()
		if (errL == nil) != (errG == nil) || (errL == nil) != (errF == nil) {
			t.Fatalf("round %d: executions disagree: %v / %v / %v", r, errL, errG, errF)
		}
		if logged.StateHash() != bareGated.StateHash() {
			t.Fatalf("round %d: logging perturbed the gated engine", r)
		}
		if logged.StateHash() != bareFull.StateHash() {
			t.Fatalf("round %d: gated run diverged from ungated", r)
		}
		hashes[logged.Round()] = logged.StateHash()
	}
	finalRound := logged.Round()
	logged.Close()
	bareGated.Close()
	bareFull.Close()
	if err := w.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	recov, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if recov.LastRound != finalRound {
		t.Fatalf("log tip at round %d, engine finished at %d", recov.LastRound, finalRound)
	}
	for _, mode := range []struct {
		name string
		gate GateMode
	}{{"restore-gated", GateOn}, {"restore-ungated", GateOff}} {
		t.Run(mode.name, func(t *testing.T) {
			for cut := 0; cut <= len(recov.Batches); cut++ {
				sub := *recov
				sub.Batches = recov.Batches[:cut]
				e, err := Restore(&sub, Config{Workers: 1, Gate: mode.gate})
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				want, ok := hashes[e.Round()]
				if !ok {
					t.Fatalf("cut %d: recovered to round %d the live run never visited", cut, e.Round())
				}
				if e.StateHash() != want {
					t.Fatalf("cut %d (round %d): recovered state differs from the uninterrupted runs", cut, e.Round())
				}
				e.Close()
			}
		})
	}
}
