package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
)

func startTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N())})
	sv := NewServer(eng)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestServerEndToEnd drives a live engine entirely over HTTP: inject a
// burst, step, and watch the snapshot and metrics react.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := startTestServer(t)

	var health struct {
		OK    bool  `json:"ok"`
		Round int64 `json:"round"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || health.Round != 0 {
		t.Fatalf("healthz = %+v", health)
	}

	status, resp := postJSON(t, ts.URL+"/events", map[string]any{
		"kind": "arrival", "node": 0, "tokens": 500,
	})
	if status != http.StatusAccepted {
		t.Fatalf("event injection status %d: %v", status, resp)
	}

	status, resp = postJSON(t, ts.URL+"/step?rounds=50", nil)
	if status != http.StatusOK {
		t.Fatalf("step status %d: %v", status, resp)
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/snapshot?loads=1", &snap)
	if snap.Round != 50 {
		t.Fatalf("snapshot round %d, want 50", snap.Round)
	}
	if snap.RealTotal != 500 {
		t.Fatalf("snapshot real total %d, want 500", snap.RealTotal)
	}
	if len(snap.RealLoads) != snap.Nodes || len(snap.NodeIDs) != snap.Nodes {
		t.Fatalf("snapshot loads length %d/%d, want %d", len(snap.RealLoads), len(snap.NodeIDs), snap.Nodes)
	}
	var total int64
	for _, v := range snap.RealLoads {
		total += v
	}
	if total != 500 {
		t.Fatalf("snapshot real loads sum %d, want 500", total)
	}

	var metrics struct {
		Samples []Sample `json:"samples"`
	}
	getJSON(t, ts.URL+"/metrics", &metrics)
	if len(metrics.Samples) != 50 {
		t.Fatalf("metrics samples %d, want 50", len(metrics.Samples))
	}
	last := metrics.Samples[len(metrics.Samples)-1]
	if last.Round != 50 || last.RealTotal != 500 {
		t.Fatalf("last sample %+v", last)
	}
	getJSON(t, ts.URL+"/metrics?n=5", &metrics)
	if len(metrics.Samples) != 5 || metrics.Samples[4].Round != 50 {
		t.Fatalf("windowed metrics %+v", metrics.Samples)
	}

	// Churn over HTTP: join a node, then make the new node's slot leave.
	status, resp = postJSON(t, ts.URL+"/events", map[string]any{
		"kind": "join", "peers": []int{0, 1},
	})
	if status != http.StatusAccepted {
		t.Fatalf("join status %d: %v", status, resp)
	}
	if status, resp = postJSON(t, ts.URL+"/step", nil); status != http.StatusOK {
		t.Fatalf("step status %d: %v", status, resp)
	}
	getJSON(t, ts.URL+"/snapshot", &snap)
	if snap.Nodes != 37 {
		t.Fatalf("nodes after join %d, want 37", snap.Nodes)
	}
	status, resp = postJSON(t, ts.URL+"/events", map[string]any{
		"kind": "leave", "node": 36,
	})
	if status != http.StatusAccepted {
		t.Fatalf("leave status %d: %v", status, resp)
	}
	if status, resp = postJSON(t, ts.URL+"/step", nil); status != http.StatusOK {
		t.Fatalf("step status %d: %v", status, resp)
	}
	getJSON(t, ts.URL+"/snapshot", &snap)
	if snap.Nodes != 36 {
		t.Fatalf("nodes after leave %d, want 36", snap.Nodes)
	}
}

// TestServerRejectsBadRequests covers the HTTP validation paths.
func TestServerRejectsBadRequests(t *testing.T) {
	ts, _ := startTestServer(t)

	for name, body := range map[string]map[string]any{
		"unknown-kind":   {"kind": "explode"},
		"zero-tokens":    {"kind": "arrival", "node": 0},
		"bad-weight":     {"kind": "arrival", "node": 0, "tokens": 5, "weight": -3},
		"zero-count":     {"kind": "completion", "node": 0},
		"empty-edge":     {"kind": "edge-change"},
		"inactive-wired": {"kind": "arrival", "node": 10_000, "tokens": 5},
	} {
		status, resp := postJSON(t, ts.URL+"/events", body)
		if name == "inactive-wired" {
			// Bad node ids pass schedule-time checks and surface as a
			// step-time failure.
			if status != http.StatusAccepted {
				t.Fatalf("%s: status %d: %v", name, status, resp)
			}
			if status, resp = postJSON(t, ts.URL+"/step", nil); status != http.StatusInternalServerError {
				t.Fatalf("%s: step status %d: %v", name, status, resp)
			}
			continue
		}
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%v)", name, status, resp)
		}
	}

	// Method and query validation.
	if resp, err := http.Get(ts.URL + "/step"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /step status %d", resp.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/step?rounds=-4", nil); status != http.StatusBadRequest {
		t.Fatalf("negative rounds status %d", status)
	}
	if resp, err := http.Get(ts.URL + "/metrics?n=zero"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad metrics window status %d", resp.StatusCode)
	}
}

// TestServerDo exercises the locked driver hook lbserve's -rate loop uses.
func TestServerDo(t *testing.T) {
	_, sv := startTestServer(t)
	if err := sv.Do(func(eng *Engine) error {
		if err := eng.Schedule(Arrival(0, 3, 10)); err != nil {
			return err
		}
		return eng.Run(3)
	}); err != nil {
		t.Fatal(err)
	}
	if err := sv.Do(func(eng *Engine) error {
		if eng.Round() != 3 || eng.RealTotal() != 10 {
			return fmt.Errorf("round %d total %d", eng.Round(), eng.RealTotal())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
