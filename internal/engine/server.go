package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server exposes a live Engine over HTTP: snapshots, the streaming metrics
// ring, event injection, and manual stepping. All handlers serialize on an
// internal mutex, so a Server is the one goroutine-safe facade of an
// engine.
//
//	GET  /healthz            liveness + current round
//	GET  /snapshot[?loads=1] point-in-time summary (optionally with loads)
//	GET  /metrics[?n=K]      last K ring samples (all buffered by default)
//	GET  /metrics/prom       Prometheus text exposition of the registry
//	GET  /debug/trace[?n=K]  flight recorder dump as JSONL, oldest first
//	POST /events             inject one event (JSON body, see WireEvent)
//	POST /events/stream      ingest an NDJSON event stream (one WireEvent
//	                         per line) with batching and backpressure
//	POST /step[?rounds=N]    execute N balancing rounds (default 1)
type Server struct {
	mu  sync.Mutex
	eng *Engine

	// limits bounds the streaming ingest path; limiter, when set, paces
	// admission (a pulse-shaped token bucket in lbserve). drainPoll is
	// how often a backpressured stream re-checks the queue depth.
	limits    StreamLimits
	limiter   Limiter
	drainPoll time.Duration

	// ingest holds the streaming-ingest instruments, registered eagerly
	// on the engine's registry so a scrape sees them before any stream.
	ingest *ingestInstruments
}

// NewServer wraps an engine. The caller must not use the engine directly
// while the server is live except through Do.
func NewServer(eng *Engine) *Server {
	return &Server{
		eng:       eng,
		limits:    DefaultStreamLimits(),
		drainPoll: 2 * time.Millisecond,
		ingest:    newIngestInstruments(eng.Registry()),
	}
}

// WithStreamLimits sets the streaming ingest bounds (zero fields keep
// their defaults) and returns the server.
func (s *Server) WithStreamLimits(lim StreamLimits) *Server {
	s.limits = lim.normalize()
	return s
}

// WithIngestLimiter installs an admission limiter on the streaming
// ingest path (nil removes it) and returns the server.
func (s *Server) WithIngestLimiter(l Limiter) *Server {
	s.limiter = l
	return s
}

// Do runs fn with the engine lock held — the hook for drivers that step
// the engine continuously (lbserve's -rate loop) next to live HTTP
// traffic.
func (s *Server) Do(fn func(eng *Engine) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.eng)
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/prom", s.handleProm)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/events/stream", s.handleEventStream)
	mux.HandleFunc("/step", s.handleStep)
	return mux
}

// handleProm serves the metrics registry in Prometheus text exposition
// format. The point-in-time gauges (topology, queue depth, Theorem 3
// discrepancies) are refreshed under the engine lock first; the exposition
// itself reads only atomics, so the lock is released before writing.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.mu.Lock()
	s.eng.PublishMetrics()
	reg := s.eng.Registry()
	s.mu.Unlock()
	publishRuntimeMetrics(reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// handleTrace dumps the flight recorder — recent applied events and round
// summaries — as JSONL, oldest first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		max = v
	}
	// The recorder is internally locked; the snapshot is consistent
	// without the server mutex, and encoding happens outside any lock.
	recs := s.eng.Trace(max)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return
		}
	}
}

// publishRuntimeMetrics refreshes a few Go runtime gauges on the shared
// registry at scrape time.
func publishRuntimeMetrics(reg *obs.Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("go_goroutines", "Live goroutines.").SetInt(int64(runtime.NumGoroutine()))
	reg.Gauge("go_heap_alloc_bytes", "Heap bytes currently allocated.").SetInt(int64(ms.HeapAlloc))
	reg.Gauge("go_gc_cycles", "Completed GC cycles.").SetInt(int64(ms.NumGC))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	round := s.eng.Round()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "round": round})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	includeLoads := r.URL.Query().Get("loads") == "1"
	s.mu.Lock()
	snap := s.eng.Snapshot(includeLoads)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		max = v
	}
	s.mu.Lock()
	samples := s.eng.Samples(max)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"samples": samples})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req WireEvent
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode event: %w", err))
		return
	}
	ev, err := FromWire(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	err = s.eng.Schedule(ev)
	round := s.eng.Round()
	pending := s.eng.PendingEvents()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	at := ev.At
	if at < round {
		at = round
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"scheduled": true, "kind": req.Kind, "at": at, "pending": pending,
	})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	rounds := 1
	if q := r.URL.Query().Get("rounds"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 100_000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid rounds %q (1..100000)", q))
			return
		}
		rounds = v
	}
	// A full-cap request legitimately runs for minutes on large graphs;
	// lift the server's write deadline for this response so the sample is
	// not lost to a global WriteTimeout after the rounds already ran
	// (best-effort: not every ResponseWriter supports deadlines).
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	// Step in small chunks, releasing the lock between them, so health
	// probes and snapshots stay responsive during long runs.
	var last Sample
	for done := 0; done < rounds; {
		chunk := rounds - done
		if chunk > 64 {
			chunk = 64
		}
		s.mu.Lock()
		err := s.eng.Run(chunk)
		last, _ = s.eng.LastSample()
		s.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		done += chunk
	}
	writeJSON(w, http.StatusOK, map[string]any{"stepped": rounds, "sample": last})
}
