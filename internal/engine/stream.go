package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/wire"
)

// maxArrivalTokens caps the task count a single wire arrival may carry.
// Tokens is an amplification factor (a few bytes of JSON expand into an
// allocated task slice), so an unchecked value would let one line of a
// stream allocate gigabytes; genuine bursts far above this cap should be
// split across lines.
const maxArrivalTokens = 1 << 20

// WireEvent is the JSON wire form of an injected event: the body of
// POST /events and one NDJSON line of POST /events/stream. It aliases
// wire.Event so workload generators can emit the format without
// importing the engine.
type WireEvent = wire.Event

// FromWire converts the wire form into a runtime event, validating the
// fields the Kind requires. Semantic checks that need engine state (node
// liveness, topology) still happen at apply time.
func FromWire(req *WireEvent) (Event, error) {
	switch req.Kind {
	case "arrival":
		if len(req.Weights) > 0 {
			// Explicit per-task weight list (the lossless form the WAL
			// records for heterogeneous arrivals). Tokens, when set, must
			// agree with it.
			if req.Tokens != 0 && req.Tokens != len(req.Weights) {
				return Event{}, fmt.Errorf("arrival tokens %d != weights length %d", req.Tokens, len(req.Weights))
			}
			if len(req.Weights) > maxArrivalTokens {
				return Event{}, fmt.Errorf("arrival weights length %d exceeds cap %d", len(req.Weights), maxArrivalTokens)
			}
			tasks := make([]load.Task, len(req.Weights))
			for i, w := range req.Weights {
				if w < 1 {
					return Event{}, fmt.Errorf("arrival weight %d at index %d must be >= 1", w, i)
				}
				tasks[i] = load.Task{Weight: w}
			}
			return ArrivalTasks(req.At, req.Node, tasks), nil
		}
		if req.Tokens < 1 {
			return Event{}, fmt.Errorf("arrival needs tokens >= 1, got %d", req.Tokens)
		}
		if req.Tokens > maxArrivalTokens {
			return Event{}, fmt.Errorf("arrival tokens %d exceeds cap %d", req.Tokens, maxArrivalTokens)
		}
		weight := req.Weight
		if weight == 0 {
			weight = 1
		}
		if weight < 1 {
			return Event{}, fmt.Errorf("arrival weight %d must be >= 1", weight)
		}
		tasks := make([]load.Task, req.Tokens)
		for i := range tasks {
			tasks[i] = load.Task{Weight: weight}
		}
		return ArrivalTasks(req.At, req.Node, tasks), nil
	case "completion":
		if req.Count < 1 {
			return Event{}, fmt.Errorf("completion needs count >= 1, got %d", req.Count)
		}
		return Completion(req.At, req.Node, req.Count), nil
	case "join":
		return Join(req.At, req.Speed, req.Peers...), nil
	case "leave":
		return Leave(req.At, req.Node), nil
	case "edge-change":
		if len(req.Add) == 0 && len(req.Remove) == 0 {
			return Event{}, fmt.Errorf("edge-change needs add or remove entries")
		}
		return EdgeChange(req.At, req.Add, req.Remove), nil
	default:
		return Event{}, fmt.Errorf("unknown event kind %q", req.Kind)
	}
}

// ParseEventLine decodes one NDJSON line into a runtime event. It
// rejects trailing data after the JSON value, so a concatenation of two
// events on one line is an error rather than a silent drop.
func ParseEventLine(line []byte) (Event, error) {
	var req WireEvent
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&req); err != nil {
		return Event{}, fmt.Errorf("decode event: %w", err)
	}
	if dec.More() {
		return Event{}, errors.New("trailing data after event")
	}
	return FromWire(&req)
}

// StreamLimits bounds the NDJSON ingest path of POST /events/stream.
type StreamLimits struct {
	// MaxLineBytes caps one NDJSON line; longer lines fail the stream
	// with 400 (default 64 KiB).
	MaxLineBytes int
	// MaxBatch is how many decoded events accumulate before they are
	// scheduled under the engine lock in one window (default 512).
	MaxBatch int
	// MaxPending bounds the engine's event queue: in step=auto mode the
	// handler drains the queue through a Step once it reaches the bound;
	// in step=off mode the handler stops reading the request body until
	// whoever drives the engine has drained below it (default 16384).
	MaxPending int
}

// DefaultStreamLimits returns the limits NewServer starts with.
func DefaultStreamLimits() StreamLimits {
	return StreamLimits{MaxLineBytes: 64 << 10, MaxBatch: 512, MaxPending: 16384}
}

// normalize replaces non-positive fields with their defaults.
func (l StreamLimits) normalize() StreamLimits {
	def := DefaultStreamLimits()
	if l.MaxLineBytes < 1 {
		l.MaxLineBytes = def.MaxLineBytes
	}
	if l.MaxBatch < 1 {
		l.MaxBatch = def.MaxBatch
	}
	if l.MaxPending < 1 {
		l.MaxPending = def.MaxPending
	}
	return l
}

// Limiter admits ingest work: Wait blocks until n units may proceed or
// the context ends. workload.TokenBucket is the production
// implementation (pulse-shaped token bucket); the engine only sees this
// interface so the packages stay decoupled.
type Limiter interface {
	Wait(ctx context.Context, n int) error
}

// ingestInstruments are the streaming-ingest metrics: how many lines and
// events came in, how many were rejected, and where a stream's time went —
// token-bucket admission waits vs. queue-bound backpressure stalls. They
// make the soak equilibrium (PR 6) measurable: at saturation the stall and
// limiter histograms carry exactly the time the TCP window pushed back.
type ingestInstruments struct {
	lines         *obs.Counter
	rejectedLines *obs.Counter
	events        *obs.Counter
	batches       *obs.Counter
	streams       *obs.Counter
	inlineRounds  *obs.Counter
	stalls        *obs.Counter
	stallSeconds  *obs.Histogram
	limiterWait   *obs.Histogram
}

func newIngestInstruments(reg *obs.Registry) *ingestInstruments {
	return &ingestInstruments{
		lines:         reg.Counter("engine_ingest_lines_total", "NDJSON lines read from POST /events/stream bodies (blank lines included)."),
		rejectedLines: reg.Counter("engine_ingest_rejected_lines_total", "Stream lines rejected as malformed or invalid."),
		events:        reg.Counter("engine_ingest_events_total", "Events scheduled into the engine from streams."),
		batches:       reg.Counter("engine_ingest_batches_total", "Stream batches applied under the engine lock."),
		streams:       reg.Counter("engine_ingest_streams_total", "POST /events/stream requests started."),
		inlineRounds:  reg.Counter("engine_ingest_inline_rounds_total", "Balancing rounds stepped inline by step=auto backpressure."),
		stalls:        reg.Counter("engine_ingest_backpressure_stalls_total", "Times a step=off stream stopped reading at the pending-queue bound."),
		stallSeconds:  reg.Histogram("engine_ingest_backpressure_seconds", "Time step=off streams spent stalled at the pending-queue bound.", nil),
		limiterWait:   reg.Histogram("engine_ingest_limiter_wait_seconds", "Time stream batches waited for token-bucket admission.", nil),
	}
}

// handleEventStream ingests an NDJSON event stream: one WireEvent per
// line, scheduled in batches of at most MaxBatch under the engine lock.
//
// Backpressure: with step=auto (the default) the handler applies the
// queue itself — once PendingEvents reaches MaxPending it runs one
// engine Step, which drains every due event as a single batch and
// executes one balancing round. With step=off the handler never steps;
// instead it stops reading the request body while the queue is at the
// bound, so the TCP window pushes back on the client until the -rate
// loop (or POST /step) catches up.
//
// A malformed or oversized line fails the stream with 400 after the
// lines before it were scheduled (and possibly applied): the
// partial-progress contract of Engine.Step extends to the stream, and
// the applied prefix remains ledger-consistent. The response reports how
// far the stream got (lines read, events scheduled, rounds stepped).
func (s *Server) handleEventStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	stepMode := r.URL.Query().Get("step")
	switch stepMode {
	case "":
		stepMode = "auto"
	case "auto", "off":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid step mode %q (auto|off)", stepMode))
		return
	}
	// A long-lived stream must outlive the server's global ReadTimeout
	// (lbserve sets 30s); lift the read deadline for this connection only
	// (best-effort: not every ResponseWriter supports deadlines).
	_ = http.NewResponseController(w).SetReadDeadline(time.Time{})

	ctx := r.Context()
	lim := s.limits
	sc := bufio.NewScanner(r.Body)
	initial := 64 << 10
	if lim.MaxLineBytes < initial {
		initial = lim.MaxLineBytes
	}
	sc.Buffer(make([]byte, initial), lim.MaxLineBytes)

	var (
		lines     int
		scheduled int64
		rounds    int64
		batch     []Event
	)
	// fail maps an ingest error to a status: a corrupt or closed engine
	// is a server-side failure, anything else (malformed line, rejected
	// event) is the client's stream.
	fail := func(err error) {
		status := http.StatusBadRequest
		if errors.Is(err, ErrInconsistent) || errors.Is(err, ErrClosed) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, map[string]any{
			"error": err.Error(), "lines": lines, "events": scheduled, "rounds": rounds,
		})
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if s.limiter != nil {
			t0 := nowMetric()
			if err := s.limiter.Wait(ctx, len(batch)); err != nil {
				return fmt.Errorf("ingest limiter: %w", err)
			}
			s.ingest.limiterWait.ObserveDuration(sinceMetric(t0))
		}
		if stepMode == "off" {
			// Stop reading until the external driver drains the queue.
			stalled := false
			t0 := nowMetric()
			for {
				s.mu.Lock()
				pending := s.eng.PendingEvents()
				s.mu.Unlock()
				if pending < lim.MaxPending {
					break
				}
				if !stalled {
					stalled = true
					s.ingest.stalls.Inc()
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(s.drainPoll): //lb:statefree backpressure poll pacing; event content and order come from the stream, timing only delays admission
				}
			}
			if stalled {
				s.ingest.stallSeconds.ObserveDuration(sinceMetric(t0))
			}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for k, ev := range batch {
			if err := s.eng.Schedule(ev); err != nil {
				scheduled += int64(k)
				s.ingest.events.Add(int64(k))
				batch = batch[:0]
				return err
			}
		}
		scheduled += int64(len(batch))
		s.ingest.events.Add(int64(len(batch)))
		s.ingest.batches.Inc()
		batch = batch[:0]
		if stepMode == "auto" && s.eng.PendingEvents() >= lim.MaxPending {
			if err := s.eng.Step(); err != nil {
				return err
			}
			rounds++
			s.ingest.inlineRounds.Inc()
		}
		return nil
	}
	s.ingest.streams.Inc()
	for sc.Scan() {
		lines++
		s.ingest.lines.Inc()
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := ParseEventLine(line)
		if err != nil {
			s.ingest.rejectedLines.Inc()
			// The prefix before the bad line stays: flush it first so the
			// response's counts describe exactly what the engine kept.
			if ferr := flush(); ferr != nil {
				fail(ferr)
				return
			}
			fail(fmt.Errorf("line %d: %w", lines, err))
			return
		}
		batch = append(batch, ev)
		if len(batch) >= lim.MaxBatch {
			if err := flush(); err != nil {
				fail(err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ferr := flush(); ferr != nil {
			fail(ferr)
			return
		}
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("line %d exceeds %d bytes", lines+1, lim.MaxLineBytes)
		}
		fail(err)
		return
	}
	if err := flush(); err != nil {
		fail(err)
		return
	}
	s.mu.Lock()
	pending := s.eng.PendingEvents()
	round := s.eng.Round()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"lines": lines, "events": scheduled, "rounds": rounds,
		"pending": pending, "round": round,
	})
}
