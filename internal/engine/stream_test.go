package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/load"
)

// startStreamServer builds a live server with tight stream limits so a
// modest test stream exercises batching, inline stepping and
// backpressure the way a large production stream would.
func startStreamServer(t *testing.T, lim StreamLimits) (*httptest.Server, *Server, *Engine) {
	t.Helper()
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(g.N())})
	sv := NewServer(eng).WithStreamLimits(lim)
	sv.drainPoll = 200 * time.Microsecond
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv, eng
}

// ndjson renders events as one NDJSON body.
func ndjson(t *testing.T, events []WireEvent) []byte {
	t.Helper()
	buf := &bytes.Buffer{}
	enc := json.NewEncoder(buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func pumpEvents(n int) []WireEvent {
	events := make([]WireEvent, 0, n)
	for i := 0; len(events) < n; i++ {
		events = append(events, WireEvent{Kind: "arrival", Node: i % 36, Tokens: 4})
		if len(events) < n {
			events = append(events, WireEvent{Kind: "completion", Node: (i + 7) % 36, Count: 4})
		}
	}
	return events
}

type streamResp struct {
	Error   string `json:"error"`
	Lines   int    `json:"lines"`
	Events  int64  `json:"events"`
	Rounds  int64  `json:"rounds"`
	Pending int    `json:"pending"`
	Round   int64  `json:"round"`
}

func postStream(t *testing.T, url string, body io.Reader) (int, streamResp) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out streamResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestStreamEndToEnd pushes a stream large enough to overflow the
// pending bound many times: the handler must keep the queue bounded by
// stepping inline, and the ledger must hold without a single full
// recount.
func TestStreamEndToEnd(t *testing.T) {
	ts, sv, _ := startStreamServer(t, StreamLimits{MaxBatch: 8, MaxPending: 16})

	events := pumpEvents(1000)
	status, out := postStream(t, ts.URL+"/events/stream", bytes.NewReader(ndjson(t, events)))
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %+v", status, out)
	}
	if out.Lines != 1000 || out.Events != 1000 {
		t.Fatalf("stream consumed %d lines / %d events, want 1000/1000", out.Lines, out.Events)
	}
	if out.Rounds == 0 {
		t.Fatal("step=auto never stepped despite MaxPending=16 and 1000 events")
	}
	if out.Pending > 16+8 {
		t.Fatalf("stream left %d events pending, bound is 16 (+ one batch)", out.Pending)
	}

	var audited error
	var snap Snapshot
	err := sv.Do(func(e *Engine) error {
		snap = e.Snapshot(false) // before AuditFull bumps the counter
		audited = e.AuditFull()
		return nil
	})
	if err != nil || audited != nil {
		t.Fatalf("post-stream audit: do=%v audit=%v", err, audited)
	}
	// In default (ledger) mode the stream must never need a full recount;
	// the ENGINE_DEEP_AUDIT leg forces one per event by design.
	if os.Getenv("ENGINE_DEEP_AUDIT") != "1" && snap.FullAudits != 0 {
		t.Fatalf("stream tripped %d full audits, ledger mode should need none", snap.FullAudits)
	}
	if snap.Events == 0 {
		t.Fatal("no events were applied by the inline steps")
	}
}

// TestStreamMalformedMidStream pins the partial-progress contract: a
// garbage line fails the stream with 400 naming the line, but the valid
// prefix before it is flushed, applied, and ledger-consistent.
func TestStreamMalformedMidStream(t *testing.T) {
	ts, sv, _ := startStreamServer(t, StreamLimits{MaxBatch: 4, MaxPending: 4})

	body := ndjson(t, pumpEvents(10))
	body = append(body, []byte("{\"kind\": \"arrival\", NOT JSON}\n")...)
	body = append(body, ndjson(t, pumpEvents(6))...)

	status, out := postStream(t, ts.URL+"/events/stream", bytes.NewReader(body))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed stream status %d: %+v", status, out)
	}
	if !strings.Contains(out.Error, "line 11") {
		t.Fatalf("error %q does not name line 11", out.Error)
	}
	if out.Events != 10 {
		t.Fatalf("stream kept %d events, want the 10-line valid prefix", out.Events)
	}

	var applied int64
	var audited error
	if err := sv.Do(func(e *Engine) error {
		for e.PendingEvents() > 0 {
			if err := e.Step(); err != nil {
				return err
			}
		}
		applied = e.EventsApplied()
		audited = e.AuditFull()
		return nil
	}); err != nil || audited != nil {
		t.Fatalf("draining after failed stream: do=%v audit=%v", err, audited)
	}
	if applied != 10 {
		t.Fatalf("engine applied %d events, want exactly the valid prefix of 10", applied)
	}
}

// TestStreamRejectedEventMidBatch covers a line that parses but carries
// an invalid event: the decode error path and the schedule error path
// must both leave a consistent engine.
func TestStreamRejectedEventMidBatch(t *testing.T) {
	ts, sv, _ := startStreamServer(t, StreamLimits{MaxBatch: 4, MaxPending: 4})

	body := ndjson(t, pumpEvents(4))
	body = append(body, []byte(`{"kind":"arrival","node":0,"tokens":0}`+"\n")...)
	status, out := postStream(t, ts.URL+"/events/stream", bytes.NewReader(body))
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %+v", status, out)
	}
	if !strings.Contains(out.Error, "line 5") || !strings.Contains(out.Error, "tokens") {
		t.Fatalf("error %q should name line 5 and the tokens rule", out.Error)
	}
	if out.Events != 4 {
		t.Fatalf("kept %d events, want 4", out.Events)
	}
	var audited error
	if err := sv.Do(func(e *Engine) error { audited = e.AuditFull(); return nil }); err != nil || audited != nil {
		t.Fatalf("audit after rejected event: do=%v audit=%v", err, audited)
	}
}

// TestStreamOversizedLine bounds memory per line: a line beyond
// MaxLineBytes fails the stream with 400 instead of buffering it.
func TestStreamOversizedLine(t *testing.T) {
	ts, _, _ := startStreamServer(t, StreamLimits{MaxLineBytes: 128})

	big := fmt.Sprintf(`{"kind":"arrival","node":0,"tokens":1,"peers":[%s1]}`,
		strings.Repeat("1,", 200))
	body := append(ndjson(t, pumpEvents(2)), []byte(big+"\n")...)
	status, out := postStream(t, ts.URL+"/events/stream", bytes.NewReader(body))
	if status != http.StatusBadRequest {
		t.Fatalf("oversized line status %d: %+v", status, out)
	}
	if !strings.Contains(out.Error, "exceeds 128 bytes") {
		t.Fatalf("error %q should report the line limit", out.Error)
	}
	if out.Events != 2 {
		t.Fatalf("kept %d events, want the 2-line prefix", out.Events)
	}
}

// TestStreamStepOffBackpressure pins the step=off contract: the handler
// never steps the engine itself; once the queue reaches MaxPending it
// stops reading until an external driver drains, then finishes.
func TestStreamStepOffBackpressure(t *testing.T) {
	ts, sv, _ := startStreamServer(t, StreamLimits{MaxBatch: 16, MaxPending: 8})

	body := ndjson(t, pumpEvents(100))
	type result struct {
		status int
		out    streamResp
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/events/stream?step=off", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			done <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		var out streamResp
		_ = json.NewDecoder(resp.Body).Decode(&out)
		done <- result{status: resp.StatusCode, out: out}
	}()

	// With nobody stepping, the stream must stall at the pending bound
	// rather than complete: the queue is the only buffer it may fill.
	select {
	case r := <-done:
		t.Fatalf("step=off stream completed without an external driver: %+v", r)
	case <-time.After(300 * time.Millisecond):
	}

	// Drain from outside, as lbserve's -rate loop would.
	deadline := time.After(10 * time.Second)
	for {
		if err := sv.Do(func(e *Engine) error { return e.Step() }); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-done:
			if r.status != http.StatusOK {
				t.Fatalf("step=off stream status %d: %+v", r.status, r.out)
			}
			if r.out.Events != 100 {
				t.Fatalf("delivered %d events, want 100", r.out.Events)
			}
			if r.out.Rounds != 0 {
				t.Fatalf("step=off handler stepped %d rounds itself", r.out.Rounds)
			}
			return
		case <-deadline:
			t.Fatal("stream did not finish while being drained externally")
		case <-time.After(time.Millisecond):
		}
	}
}

// countingLimiter records admission requests; failLimiter refuses them.
type countingLimiter struct {
	calls  atomic.Int64
	admits atomic.Int64
}

func (l *countingLimiter) Wait(ctx context.Context, n int) error {
	l.calls.Add(1)
	l.admits.Add(int64(n))
	return nil
}

type failLimiter struct{}

func (failLimiter) Wait(ctx context.Context, n int) error {
	return errors.New("admission refused")
}

func TestStreamLimiter(t *testing.T) {
	ts, sv, _ := startStreamServer(t, StreamLimits{MaxBatch: 10})
	lim := &countingLimiter{}
	sv.WithIngestLimiter(lim)

	status, out := postStream(t, ts.URL+"/events/stream", bytes.NewReader(ndjson(t, pumpEvents(95))))
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, out)
	}
	if got := lim.admits.Load(); got != 95 {
		t.Fatalf("limiter admitted %d events, want 95", got)
	}
	if got := lim.calls.Load(); got != 10 {
		t.Fatalf("limiter saw %d batches, want 10 (9 full + remainder)", got)
	}

	sv.WithIngestLimiter(failLimiter{})
	status, out = postStream(t, ts.URL+"/events/stream", bytes.NewReader(ndjson(t, pumpEvents(5))))
	if status != http.StatusBadRequest {
		t.Fatalf("refused stream status %d: %+v", status, out)
	}
	if !strings.Contains(out.Error, "admission refused") {
		t.Fatalf("error %q should surface the limiter failure", out.Error)
	}
}

func TestStreamRequestValidation(t *testing.T) {
	ts, _, _ := startStreamServer(t, StreamLimits{})

	resp, err := http.Get(ts.URL + "/events/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	status, out := postStream(t, ts.URL+"/events/stream?step=bogus", strings.NewReader(""))
	if status != http.StatusBadRequest || !strings.Contains(out.Error, "step mode") {
		t.Fatalf("bad step mode: status %d, %+v", status, out)
	}

	// An empty stream is a valid no-op.
	status, out = postStream(t, ts.URL+"/events/stream", strings.NewReader("\n\n"))
	if status != http.StatusOK || out.Events != 0 {
		t.Fatalf("blank stream: status %d, %+v", status, out)
	}
}

func TestParseEventLine(t *testing.T) {
	valid := []struct {
		name string
		line string
		kind Kind
	}{
		{"arrival", `{"kind":"arrival","node":3,"tokens":5}`, KindTaskArrival},
		{"weighted arrival", `{"kind":"arrival","node":3,"tokens":2,"weight":7}`, KindTaskArrival},
		{"completion", `{"kind":"completion","node":1,"count":4}`, KindTaskCompletion},
		{"join", `{"kind":"join","speed":2,"peers":[0,1]}`, KindNodeJoin},
		{"leave", `{"kind":"leave","node":9}`, KindNodeLeave},
		{"edge add", `{"kind":"edge-change","add":[[0,5]]}`, KindEdgeChange},
		{"edge remove", `{"kind":"edge-change","remove":[[0,1]]}`, KindEdgeChange},
		{"deferred", `{"kind":"arrival","at":40,"node":0,"tokens":1}`, KindTaskArrival},
	}
	for _, tc := range valid {
		ev, err := ParseEventLine([]byte(tc.line))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if ev.Kind != tc.kind {
			t.Errorf("%s: kind %v, want %v", tc.name, ev.Kind, tc.kind)
		}
	}
	ev, err := ParseEventLine([]byte(`{"kind":"arrival","node":3,"tokens":2,"weight":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Tasks) != 2 || ev.Tasks[0].Weight != 7 {
		t.Fatalf("weighted arrival expanded to %+v", ev.Tasks)
	}

	invalid := []struct {
		name string
		line string
	}{
		{"garbage", `{{{`},
		{"trailing data", `{"kind":"leave","node":1} {"kind":"leave","node":2}`},
		{"unknown kind", `{"kind":"reboot"}`},
		{"zero tokens", `{"kind":"arrival","node":0,"tokens":0}`},
		{"negative tokens", `{"kind":"arrival","node":0,"tokens":-4}`},
		{"tokens over cap", fmt.Sprintf(`{"kind":"arrival","node":0,"tokens":%d}`, maxArrivalTokens+1)},
		{"negative weight", `{"kind":"arrival","node":0,"tokens":1,"weight":-2}`},
		{"zero count", `{"kind":"completion","node":0,"count":0}`},
		{"empty edge change", `{"kind":"edge-change"}`},
		{"no kind", `{"node":4}`},
	}
	for _, tc := range invalid {
		if _, err := ParseEventLine([]byte(tc.line)); err == nil {
			t.Errorf("%s: ParseEventLine accepted %s", tc.name, tc.line)
		}
	}
}

// FuzzParseEventLine fuzzes the NDJSON decoder: any input must either
// fail cleanly or produce a structurally valid event — no panics, no
// dummy tasks, no unbounded allocations from a short line.
func FuzzParseEventLine(f *testing.F) {
	f.Add([]byte(`{"kind":"arrival","node":3,"tokens":5}`))
	f.Add([]byte(`{"kind":"arrival","node":0,"tokens":2,"weight":9,"at":17}`))
	f.Add([]byte(`{"kind":"completion","node":1,"count":4}`))
	f.Add([]byte(`{"kind":"join","speed":2,"peers":[0,1,2]}`))
	f.Add([]byte(`{"kind":"leave","node":9}`))
	f.Add([]byte(`{"kind":"edge-change","add":[[0,5]],"remove":[[1,2]]}`))
	f.Add([]byte(`{"kind":"arrival","tokens":1} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := ParseEventLine(line)
		if err != nil {
			return
		}
		switch ev.Kind {
		case KindTaskArrival:
			if len(ev.Tasks) < 1 || len(ev.Tasks) > maxArrivalTokens {
				t.Fatalf("arrival with %d tasks from %q", len(ev.Tasks), line)
			}
			for _, task := range ev.Tasks {
				if task.Weight < 1 {
					t.Fatalf("task weight %d from %q", task.Weight, line)
				}
				if task.Dummy {
					t.Fatalf("dummy task from the wire: %q", line)
				}
			}
		case KindTaskCompletion:
			if ev.Count < 1 {
				t.Fatalf("completion count %d from %q", ev.Count, line)
			}
		case KindNodeJoin, KindNodeLeave:
		case KindEdgeChange:
			if len(ev.AddEdges) == 0 && len(ev.RemoveEdges) == 0 {
				t.Fatalf("empty edge change accepted: %q", line)
			}
		default:
			t.Fatalf("invalid kind %v from %q", ev.Kind, line)
		}
	})
}
