package engine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
)

// TestEngineLedgerMatchesAuditFull is the ledger property test: under
// random event streams — weighted bursts, oversized completions that drain
// pools, joins, leaves that redistribute load and retire dummy counters,
// edge flips — the O(1) incremental ledger must agree with the
// stop-the-world recount at every probe point. The initial distribution
// carries imported dummy tokens so real and total weight differ from the
// start and the dummy tasks themselves get forwarded, drained and
// redistributed by the stream.
func TestEngineLedgerMatchesAuditFull(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.Torus(6, 6)
		if err != nil {
			t.Fatal(err)
		}
		s := load.UniformSpeeds(g.N())
		d := make(load.TaskDist, g.N())
		for i := range d {
			for k := 0; k < 20; k++ {
				d[i] = append(d[i], load.Task{Weight: 1})
			}
			if i%5 == 0 {
				d[i] = append(d[i], load.Task{Weight: 1, Dummy: true})
			}
		}
		e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d, Workers: 4})

		var leaves, probes int
		for iter := 0; iter < 200; iter++ {
			round := e.Round()
			topo := e.Topology()
			nodes := topo.ActiveNodes()
			switch rng.Intn(6) {
			case 0:
				n := nodes[rng.Intn(len(nodes))]
				tasks := make([]load.Task, 1+rng.Intn(60))
				for i := range tasks {
					tasks[i] = load.Task{Weight: 1 + rng.Int63n(3)}
				}
				if err := e.Schedule(ArrivalTasks(round, n, tasks)); err != nil {
					t.Fatal(err)
				}
			case 1:
				// Oversized completions drain pools to empty, so later
				// rounds draw dummy tokens from the infinite source.
				if err := e.Schedule(Completion(round, nodes[rng.Intn(len(nodes))], 1+rng.Intn(400))); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := e.Schedule(Join(round, 1+rng.Int63n(2), nodes[rng.Intn(len(nodes))])); err != nil {
					t.Fatal(err)
				}
			case 3:
				cand := nodes[rng.Intn(len(nodes))]
				if topo.NumNodes() > 2 && leaveKeepsConnected(topo, cand) {
					if err := e.Schedule(Leave(round, cand)); err != nil {
						t.Fatal(err)
					}
					leaves++
				}
			case 4:
				u, v := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
				if u == v {
					break
				}
				if topo.HasEdge(u, v) {
					if edgeRemovalKeepsConnected(topo, u, v) {
						if err := e.Schedule(EdgeChange(round, nil, [][2]int{{u, v}})); err != nil {
							t.Fatal(err)
						}
					}
				} else if err := e.Schedule(EdgeChange(round, [][2]int{{u, v}}, nil)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Step(); err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, iter, err)
			}
			if iter%10 == 0 {
				probes++
				if err := e.AuditFull(); err != nil {
					t.Fatalf("seed %d iter %d: ledger != recount: %v", seed, iter, err)
				}
			}
		}
		if err := e.AuditFull(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		if e.DummiesCreated() == 0 {
			t.Fatalf("seed %d: no imported dummies counted; property not exercised", seed)
		}
		if leaves == 0 {
			t.Fatalf("seed %d: stream had no leaves; redistribution/retirement not exercised", seed)
		}
		t.Logf("seed %d: %d events, %d leaves, %d dummies, %d audit probes all consistent",
			seed, e.EventsApplied(), leaves, e.DummiesCreated(), probes)
	}
}

// TestEngineDummyDrawsAndRetirement forces genuine dummy draws through the
// public event API and checks the ledger through draw, forward and
// retirement. FOS almost never draws dummies from a consistent state, so
// the test manufactures the one divergence events can create: a leave
// splits the departing node's continuous load into equal shares while its
// tasks are bucketed round-robin by count — craft the pool so one
// recipient gets nearly all the weight, then complete every real task on
// both recipients. The under-weighted recipient is left with positive
// continuous load and an empty pool facing a neighbour with negative
// continuous load, so its edge gap keeps growing and Forward must draw
// from the infinite source. The drawing node then leaves, moving its draw
// counter into the retired ledger.
func TestEngineDummyDrawsAndRetirement(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(2)})

	// Round 0: node 2 joins attached to {0, 1} and receives an alternating
	// light/heavy pool: round-robin sends the weight-1 tasks to node 0 and
	// the weight-9 tasks to node 1, while each inherits half the
	// continuous load when node 2 leaves at round 1.
	if err := e.Schedule(Join(0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	var burst []load.Task
	for k := 0; k < 8; k++ {
		burst = append(burst, load.Task{Weight: 1}, load.Task{Weight: 9})
	}
	if err := e.Schedule(ArrivalTasks(0, 2, burst)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Leave(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Round 2: drain every real task from both survivors. Discrete load is
	// gone; the continuous imbalance the leave created remains.
	if err := e.Schedule(Completion(2, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Completion(2, 1, 1000)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if err := e.AuditFull(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if e.DummiesCreated() == 0 {
		t.Fatal("stream drew no dummy tokens; the forcing scenario regressed")
	}

	// Retirement: whichever node drew the dummies leaves; its draw counter
	// moves to the retired side of the ledger and its pool (dummy tokens
	// included) drains to the survivor.
	drew := 0
	if e.st[1].Dummies() > e.st[0].Dummies() {
		drew = 1
	}
	before := e.DummiesCreated()
	if err := e.Schedule(Leave(e.Round(), drew)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if got := e.DummiesCreated(); got != before {
		t.Fatalf("retirement changed cumulative dummies: %d -> %d", before, got)
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBurstNoFullRecount is the regression test for the tentpole: a
// 10k-event burst applied in a single round must not trigger a single full
// pool recount in default mode — conservation is validated by the O(1)
// ledger at the batch boundary. (Built via New directly so the
// ENGINE_DEEP_AUDIT CI leg does not force recounts on.)
func TestEngineBurstNoFullRecount(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const events = 10_000
	for k := 0; k < events; k++ {
		if err := e.Schedule(Arrival(0, k%g.N(), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if got := e.EventsApplied(); got != events {
		t.Fatalf("events applied %d, want %d", got, events)
	}
	if got := e.FullAudits(); got != 0 {
		t.Fatalf("burst round performed %d full recounts, want 0", got)
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
	if got := e.FullAudits(); got != 1 {
		t.Fatalf("explicit audit not counted: %d", got)
	}
}

// TestEngineDeepAuditMode: with deep audit on, every applied event runs
// the full recount; WithDeepAudit(false) switches back to the ledger.
func TestEngineDeepAuditMode(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(2), DeepAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for k := 0; k < 3; k++ {
		if err := e.Schedule(Arrival(0, k%2, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if got := e.FullAudits(); got != 3 {
		t.Fatalf("deep audit ran %d recounts for 3 events, want 3", got)
	}
	e.WithDeepAudit(false)
	if err := e.Schedule(Arrival(e.Round(), 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if got := e.FullAudits(); got != 3 {
		t.Fatalf("recounts after disabling deep audit: %d, want still 3", got)
	}
}

// TestEngineLedgerMismatchDiagnostic: a ledger mismatch at the batch
// boundary fails the Step and falls back to AuditFull for the diagnostic.
// The corruption is injected directly into the counters (white-box).
func TestEngineLedgerMismatchDiagnostic(t *testing.T) {
	build := func() *Engine {
		g := graph.MustNew(2, [][2]int{{0, 1}})
		e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(2)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		if err := e.Schedule(Arrival(0, 0, 10)); err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Event accounting disagrees with the pools: AuditFull pinpoints it.
	e := build()
	e.expectedReal++
	err := e.Step()
	if err == nil || !strings.Contains(err.Error(), "conservation violated") {
		t.Fatalf("corrupted expectedReal: err = %v", err)
	}
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("ledger failure not marked ErrInconsistent: %v", err)
	}
	if e.FullAudits() == 0 {
		t.Fatal("ledger mismatch did not trigger the diagnostic recount")
	}

	// The failure is latched: with the queue drained, the next Step must
	// not quietly succeed and advance the round on corrupt state.
	round := e.Round()
	if err := e.Step(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("poisoned engine stepped again: err = %v", err)
	}
	if e.Round() != round {
		t.Fatalf("poisoned engine advanced round %d -> %d", round, e.Round())
	}

	// Ledger drifts from the pools: AuditFull reports the drift.
	e2 := build()
	e2.ledTotal++
	err = e2.Step()
	if err == nil || !strings.Contains(err.Error(), "ledger drift") {
		t.Fatalf("corrupted ledTotal: err = %v", err)
	}
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("drift failure not marked ErrInconsistent: %v", err)
	}

	// A rejection that stops the batch early must not skip validation of
	// the applied prefix: the violation surfaces as ErrInconsistent on
	// this Step, not misattributed to a later batch.
	e3 := build() // schedules a valid arrival at round 0
	if err := e3.Schedule(Arrival(0, 99, 1)); err != nil {
		t.Fatal(err)
	}
	e3.expectedReal++
	err = e3.Step()
	if err == nil || !errors.Is(err, ErrInconsistent) {
		t.Fatalf("violation hidden behind rejected event: err = %v", err)
	}
	if !strings.Contains(err.Error(), "batch stopped early") {
		t.Fatalf("rejection context dropped from ledger error: %v", err)
	}
}

// TestEngineStepErrorPartialProgress pins the documented partial-progress
// contract: when an event mid-batch fails, earlier events stay applied,
// the round does not advance, and a metrics sample is still emitted so
// /metrics reflects the state the engine stopped in.
func TestEngineStepErrorPartialProgress(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Schedule(Arrival(0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Arrival(0, 99, 1)); err != nil { // inactive node
		t.Fatal(err)
	}
	err = e.Step()
	if err == nil {
		t.Fatal("arrival at inactive node accepted")
	}
	if errors.Is(err, ErrInconsistent) {
		t.Fatalf("rejected event mislabelled as engine corruption: %v", err)
	}
	if e.Round() != 0 {
		t.Fatalf("round advanced to %d on a failed batch", e.Round())
	}
	if got := e.RealTotal(); got != 10 {
		t.Fatalf("earlier event not applied: real total %d, want 10", got)
	}
	last, ok := e.LastSample()
	if !ok {
		t.Fatal("no metrics sample emitted on the error path")
	}
	if last.Round != 0 || last.RealTotal != 10 || last.Events != 1 {
		t.Fatalf("error-path sample %+v, want round 0, real 10, events 1", last)
	}
	// The failure was a rejected event, not an inconsistency: the engine
	// keeps running and the next Step executes the round.
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.Round() != 1 {
		t.Fatalf("round %d after recovery step, want 1", e.Round())
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineImportedDummies: an initial distribution carrying dummy tokens
// (a handoff from a previous execution via ExportTasks) counts them as
// already drawn, and the audit accepts the seeded engine.
func TestEngineImportedDummies(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	d := load.TaskDist{
		{{Weight: 3}, {Weight: 1, Dummy: true}, {Weight: 1, Dummy: true}},
		{{Weight: 2}},
	}
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(2), Tasks: d})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.DummiesCreated(); got != 2 {
		t.Fatalf("imported dummies %d, want 2", got)
	}
	if got := e.RealTotal(); got != 5 {
		t.Fatalf("real total %d, want 5", got)
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
}
