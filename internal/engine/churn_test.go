package engine

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// leaveKeepsConnected reports whether the active topology stays connected
// after hypothetically removing node cand.
func leaveKeepsConnected(d *graph.Dynamic, cand int) bool {
	start := -1
	for _, i := range d.ActiveNodes() {
		if i != cand {
			start = i
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := map[int]bool{start: true, cand: true}
	queue := []int{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range d.Neighbors(u) {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				queue = append(queue, a.To)
			}
		}
	}
	return count == d.NumNodes()-1
}

// edgeRemovalKeepsConnected reports whether the active topology stays
// connected after hypothetically removing edge {u,v}.
func edgeRemovalKeepsConnected(d *graph.Dynamic, u, v int) bool {
	seen := map[int]bool{u: true}
	queue := []int{u}
	count := 1
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, a := range d.Neighbors(w) {
			if (w == u && a.To == v) || (w == v && a.To == u) {
				continue
			}
			if !seen[a.To] {
				seen[a.To] = true
				count++
				queue = append(queue, a.To)
			}
		}
	}
	return count == d.NumNodes()
}

// TestEngineChurnProperties is the property suite: under arbitrary
// (connectivity-preserving) event sequences, total non-dummy load is
// conserved modulo arrivals and completions at every event boundary —
// asserted by the engine itself after each event — and once the stream
// quiesces the max-avg discrepancy re-enters the Theorem 3 bound
// 2·d·wmax + 2.
func TestEngineChurnProperties(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.Torus(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		s := load.UniformSpeeds(g.N())
		d, err := load.NewTokens(workload.UniformRandom(g.N(), 3000, rng))
		if err != nil {
			t.Fatal(err)
		}
		e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d, Workers: 4})

		var arrived, completedBudget int64
		events := 0
		for iter := 0; iter < 150 && events < 80; iter++ {
			if rng.Float64() > 0.5 {
				if err := e.Step(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				continue
			}
			// Schedule at the engine's current round and step immediately,
			// so every event fires against the topology it was validated on.
			round := e.Round()
			topo := e.Topology()
			nodes := topo.ActiveNodes()
			switch rng.Intn(5) {
			case 0: // weighted burst
				n := nodes[rng.Intn(len(nodes))]
				count := 1 + rng.Intn(200)
				tasks := make([]load.Task, count)
				for i := range tasks {
					tasks[i] = load.Task{Weight: 1 + rng.Int63n(3)}
					arrived += tasks[i].Weight
				}
				if err := e.Schedule(ArrivalTasks(round, n, tasks)); err != nil {
					t.Fatal(err)
				}
			case 1: // completions
				n := nodes[rng.Intn(len(nodes))]
				c := 1 + rng.Intn(50)
				completedBudget += int64(c)
				if err := e.Schedule(Completion(round, n, c)); err != nil {
					t.Fatal(err)
				}
			case 2: // join with 1..3 peers
				k := 1 + rng.Intn(3)
				peers := make([]int, 0, k)
				seen := map[int]bool{}
				for len(peers) < k {
					p := nodes[rng.Intn(len(nodes))]
					if !seen[p] {
						seen[p] = true
						peers = append(peers, p)
					}
				}
				if err := e.Schedule(Join(round, 1+rng.Int63n(2), peers...)); err != nil {
					t.Fatal(err)
				}
			case 3: // leave, connectivity permitting
				cand := nodes[rng.Intn(len(nodes))]
				if topo.NumNodes() > 2 && leaveKeepsConnected(topo, cand) {
					if err := e.Schedule(Leave(round, cand)); err != nil {
						t.Fatal(err)
					}
				}
			case 4: // edge flip, connectivity permitting
				u := nodes[rng.Intn(len(nodes))]
				v := nodes[rng.Intn(len(nodes))]
				if u == v {
					break
				}
				if topo.HasEdge(u, v) {
					if edgeRemovalKeepsConnected(topo, u, v) {
						if err := e.Schedule(EdgeChange(round, nil, [][2]int{{u, v}})); err != nil {
							t.Fatal(err)
						}
					}
				} else if err := e.Schedule(EdgeChange(round, [][2]int{{u, v}}, nil)); err != nil {
					t.Fatal(err)
				}
			}
			events++
			// Drain this round's events immediately so scheduled leaves/edge
			// removals were validated against the topology they saw.
			if err := e.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		// Accounting: conservation modulo arrivals and completions. The
		// engine re-checks pool-level conservation at every event; here we
		// close the loop against the test's own ledger (completions may
		// remove fewer tasks than requested when pools run dry, and each
		// removed task weighs 1..3, so the real total must sit in the
		// bracketed range).
		if got, hi := e.RealTotal(), 3000+arrived; got > hi || got < hi-3*completedBudget {
			t.Fatalf("seed %d: real total %d outside [%d, %d]", seed, got, hi-3*completedBudget, hi)
		}
		if err := e.AuditFull(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Quiescence: the stream has ended; the discrepancy must re-enter
		// the Theorem 3 bound.
		rounds, ok, err := e.RunUntilBound(30_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: max-avg %.2f above bound %.1f after %d extra rounds",
				seed, e.MaxAvg(), e.Bound(), rounds)
		}
		t.Logf("seed %d: quiesced in %d extra rounds, max-avg %.2f <= bound %.1f, dummies %d, n=%d m=%d",
			seed, rounds, e.MaxAvg(), e.Bound(), e.DummiesCreated(), e.NumNodes(), e.NumEdges())
	}
}

// TestEngine10kTorusEndToEnd is the acceptance scenario: a 10 000-node
// torus sustains interleaved arrival bursts (Poisson background + a
// hotspot) and node churn (5 joins, 5 leaves, plus edge changes),
// conserves load at every event boundary (engine-asserted), and after the
// stream quiesces returns under the Theorem 3 bound.
func TestEngine10kTorusEndToEnd(t *testing.T) {
	const side = 100
	g, err := graph.Torus(side, side)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	s := load.UniformSpeeds(n)
	rng := rand.New(rand.NewSource(11))
	d, err := load.NewTokens(workload.UniformRandom(n, 4*int64(n), rng))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d})

	// Poisson background bursts over the first 40 rounds.
	bursts, err := workload.PoissonBursts(n, 40, 1.5, 200, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	var arrived int64
	for _, a := range bursts {
		for _, q := range a.Tasks {
			arrived += q.Weight
		}
		if err := e.Schedule(ArrivalTasks(a.Round, a.Node, a.Tasks)); err != nil {
			t.Fatal(err)
		}
	}
	// A hotspot ingress: 3 nodes receive steady traffic for 30 rounds.
	hot, err := workload.HotspotIngress([]int{0, n / 2, n - side}, 10, 30, 40, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range hot {
		for _, q := range a.Tasks {
			arrived += q.Weight
		}
		if err := e.Schedule(ArrivalTasks(a.Round, a.Node, a.Tasks)); err != nil {
			t.Fatal(err)
		}
	}
	// Node churn: 5 joins (attaching to 3 random nodes each) and 5 leaves
	// (torus minus a handful of interior nodes stays connected), plus a
	// couple of extra edges.
	for k := 0; k < 5; k++ {
		peers := []int{rng.Intn(n), n/3 + k*side, 2*n/3 + k}
		if err := e.Schedule(Join(int64(15+5*k), 1, peers...)); err != nil {
			t.Fatal(err)
		}
	}
	leave := []int{side + 1, 3*side + 7, n / 2, n/2 + 3*side, n - 2*side - 5}
	for k, node := range leave {
		if err := e.Schedule(Leave(int64(45+3*k), node)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Schedule(EdgeChange(50, [][2]int{{5, 5 + 2*side}, {7, 7 + 3}}, nil)); err != nil {
		t.Fatal(err)
	}
	// Completions drain some of the hotspot traffic again.
	for k := 0; k < 20; k++ {
		if err := e.Schedule(Completion(int64(60+k), rng.Intn(n-3*side), 40)); err != nil {
			t.Fatal(err)
		}
	}

	rounds, ok, err := e.RunUntilBound(4000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("10k torus: max-avg %.2f above bound %.1f after %d rounds (dummies %d)",
			e.MaxAvg(), e.Bound(), rounds, e.DummiesCreated())
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot(false)
	if snap.Nodes != n { // 5 joins − 5 leaves
		t.Fatalf("final node count %d, want %d", snap.Nodes, n)
	}
	if snap.Events == 0 || snap.Pending != 0 {
		t.Fatalf("events applied %d, pending %d", snap.Events, snap.Pending)
	}
	t.Logf("10k torus: quiesced at round %d (%d events, arrived %d, dummies %d): max-avg %.2f <= bound %.1f",
		snap.Round, snap.Events, arrived, snap.Dummies, snap.MaxAvg, snap.Bound)
}
