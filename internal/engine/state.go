package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/continuous"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/internal/wire"
)

// ErrWAL marks Step failures caused by the write-ahead log (an append or
// fsync error). The engine state itself is still consistent, but its
// durability can no longer be guaranteed, so the failure latches exactly
// like ErrInconsistent: every later Step returns it, and drivers must stop
// stepping. Read-only inspection stays available.
var ErrWAL = errors.New("engine: write-ahead log failure")

// WALSink is the durability hook the engine logs through: one AppendEvent
// per applied event, one AppendRound per completed balancing round (the
// batch commit record), and WriteSnapshot for periodic full-state
// checkpoints. *wal.Writer implements it; tests substitute failing or
// recording sinks. The event passed to AppendEvent is borrowed: the engine
// reuses one scratch value (slices included) across events, so a sink must
// finish encoding before returning and never retain the pointer or its
// Weights slice.
type WALSink interface {
	AppendEvent(ev *wire.Event) error
	AppendRound(m wal.RoundMark) error
	WriteSnapshot(round int64, state []byte) error
}

// Canonical state encoding. The encoding is the engine's identity: two
// engines are behaviourally identical iff their EncodeState bytes are
// equal, which is what the recovery property suite asserts. Everything
// that influences future behaviour is included — the full graph.Dynamic
// state (tombstones and slot-recycling order included), per-node speed,
// continuous load, pool contents in exact order, dummy counters, per-edge
// α and flow accumulators, and the conservation ledger. Deliberately
// excluded: the pending event queue (events are durable once applied and
// committed, not once scheduled), the metrics ring, the flight recorder,
// and diagnostic counters (fullAudits) — none of them feed back into
// balancing. Dead slot values the engine would never read again (the
// stale speed of a departed node) are canonicalized to zero so the hash
// is a function of behaviour, not of allocation history.
const (
	stateMagic = "LBENGST1"
	stateVer   = 1
)

// EncodeState serializes the engine's complete behavioural state into the
// canonical byte form WriteSnapshot persists and StateHash hashes.
func (e *Engine) EncodeState() []byte {
	gs := e.topo.ExportState()
	b := append([]byte(stateMagic), stateVer)

	// Graph section.
	b = binary.AppendUvarint(b, uint64(len(gs.Active)))
	for _, a := range gs.Active {
		if a {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, ids := range gs.Adj {
		b = binary.AppendUvarint(b, uint64(len(ids)))
		for _, id := range ids {
			b = binary.AppendVarint(b, int64(id))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(gs.Ends)))
	for _, ends := range gs.Ends {
		b = binary.AppendVarint(b, int64(ends[0])+1)
		b = binary.AppendVarint(b, int64(ends[1])+1)
	}
	b = binary.AppendUvarint(b, uint64(len(gs.FreeN)))
	for _, s := range gs.FreeN {
		b = binary.AppendVarint(b, int64(s))
	}
	b = binary.AppendUvarint(b, uint64(len(gs.FreeE)))
	for _, s := range gs.FreeE {
		b = binary.AppendVarint(b, int64(s))
	}

	// Scalar section.
	for _, v := range []int64{e.wmax, e.round, e.expectedReal, e.retiredDummies,
		e.eventsApplied, e.ledReal, e.ledTotal, e.ledCreated, e.speedSum} {
		b = binary.AppendVarint(b, v)
	}

	// Per-node section (active slots only; inactive slots are canonical
	// zero: x already zeroed on leave, stale s never read again).
	for i, a := range gs.Active {
		if !a {
			continue
		}
		st := e.st[i]
		b = binary.AppendVarint(b, e.s[i])
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.x[i]))
		b = binary.AppendVarint(b, st.Dummies())
		tasks := st.Tasks()
		b = binary.AppendUvarint(b, uint64(len(tasks)))
		for _, q := range tasks {
			u := uint64(q.Weight) << 1
			if q.Dummy {
				u |= 1
			}
			b = binary.AppendUvarint(b, u)
		}
	}

	// Per-edge section (live slots only; freed slots are zeroed by
	// clearEdge, so they are canonical zero on both sides).
	for id, ends := range gs.Ends {
		if ends[0] < 0 {
			continue
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.alpha[id]))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.fA[id]))
		b = binary.AppendVarint(b, e.fD[id])
	}
	return b
}

// StateHash returns the SHA-256 of the canonical state encoding — the
// identity the recovery tests compare across crash/replay boundaries.
func (e *Engine) StateHash() [sha256.Size]byte {
	return sha256.Sum256(e.EncodeState())
}

// stateReader decodes the canonical encoding with saturating error state.
type stateReader struct {
	b   []byte
	err error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("engine state: "+format, args...)
	}
}

func (r *stateReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count bounds a collection length by the remaining bytes (each element
// costs at least one byte) so corrupt input cannot drive huge allocations.
func (r *stateReader) count(v uint64) int {
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)) {
		r.fail("collection length %d exceeds remaining %d bytes", v, len(r.b))
		return 0
	}
	return int(v)
}

func (r *stateReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// NewFromState rebuilds an engine from a canonical state encoding (a WAL
// snapshot payload). cfg supplies only the runtime knobs — Workers,
// MetricsWindow, SampleEvery, DeepAudit, Registry, FlightWindow, WAL,
// SnapshotEvery; Graph/Speeds/Tasks are ignored, the state carries them.
// The restored engine is validated with a full conservation audit before
// it is returned, so a corrupt snapshot fails here, not rounds later.
func NewFromState(state []byte, cfg Config) (*Engine, error) {
	if len(state) < len(stateMagic)+1 || string(state[:len(stateMagic)]) != stateMagic {
		return nil, errors.New("engine state: bad magic")
	}
	if state[len(stateMagic)] != stateVer {
		return nil, fmt.Errorf("engine state: unsupported version %d", state[len(stateMagic)])
	}
	r := &stateReader{b: state[len(stateMagic)+1:]}

	// Graph section.
	nSlots := r.count(r.uvarint())
	gs := graph.DynamicState{
		Active: make([]bool, nSlots),
		Adj:    make([][]int, nSlots),
	}
	for i := 0; i < nSlots && r.err == nil; i++ {
		if len(r.b) == 0 {
			r.fail("truncated active flags")
			break
		}
		gs.Active[i] = r.b[0] != 0
		r.b = r.b[1:]
	}
	for i := 0; i < nSlots && r.err == nil; i++ {
		if n := r.count(r.uvarint()); n > 0 {
			gs.Adj[i] = make([]int, n)
			for k := range gs.Adj[i] {
				gs.Adj[i][k] = int(r.varint())
			}
		}
	}
	eSlots := r.count(r.uvarint())
	gs.Ends = make([][2]int, eSlots)
	for id := 0; id < eSlots && r.err == nil; id++ {
		gs.Ends[id] = [2]int{int(r.varint() - 1), int(r.varint() - 1)}
	}
	if n := r.count(r.uvarint()); n > 0 {
		gs.FreeN = make([]int, n)
		for k := range gs.FreeN {
			gs.FreeN[k] = int(r.varint())
		}
	}
	if n := r.count(r.uvarint()); n > 0 {
		gs.FreeE = make([]int, n)
		for k := range gs.FreeE {
			gs.FreeE[k] = int(r.varint())
		}
	}

	// Scalar section.
	wmax := r.varint()
	round := r.varint()
	expectedReal := r.varint()
	retiredDummies := r.varint()
	eventsApplied := r.varint()
	ledReal := r.varint()
	ledTotal := r.varint()
	ledCreated := r.varint()
	speedSum := r.varint()
	if r.err != nil {
		return nil, r.err
	}
	if round < 0 || eventsApplied < 0 {
		return nil, fmt.Errorf("engine state: negative round %d or event count %d", round, eventsApplied)
	}

	topo, err := graph.RestoreDynamic(gs)
	if err != nil {
		return nil, fmt.Errorf("engine state: %w", err)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lb:statefree worker-count default; restored engine is bit-identical for any worker count
	}
	window := cfg.MetricsWindow
	if window <= 0 {
		window = 1024
	}
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	flightWindow := cfg.FlightWindow
	if flightWindow <= 0 {
		flightWindow = 1024
	}
	e := &Engine{
		topo:           topo,
		s:              make([]int64, nSlots),
		x:              make([]float64, nSlots),
		st:             make([]*dist.SendState, nSlots),
		alpha:          make([]float64, eSlots),
		fA:             make([]float64, eSlots),
		fD:             make([]int64, eSlots),
		net:            make([]float64, eSlots),
		gap:            make([]float64, eSlots),
		outbox:         make([]outMsg, eSlots),
		wmax:           wmax,
		round:          round,
		expectedReal:   expectedReal,
		retiredDummies: retiredDummies,
		eventsApplied:  eventsApplied,
		ledReal:        ledReal,
		ledTotal:       ledTotal,
		ledCreated:     ledCreated,
		speedSum:       speedSum,
		ring:           newRing(window),
		sampleEvery:    sampleEvery,
		deepAudit:      cfg.DeepAudit,
		instr:          newInstruments(reg),
		flight:         obs.NewFlightRecorder[TraceRecord](flightWindow),
	}

	// Per-node section.
	var checkSpeed int64
	for i := 0; i < nSlots && r.err == nil; i++ {
		if !gs.Active[i] {
			continue
		}
		e.s[i] = r.varint()
		e.x[i] = r.f64()
		dummies := r.varint()
		nTasks := r.count(r.uvarint())
		tasks := make([]load.Task, nTasks)
		for k := range tasks {
			u := r.uvarint()
			tasks[k] = load.Task{Weight: int64(u >> 1), Dummy: u&1 == 1}
			if tasks[k].Weight < 1 && r.err == nil {
				r.fail("node %d task %d has weight %d", i, k, tasks[k].Weight)
			}
		}
		if r.err != nil {
			break
		}
		if e.s[i] < 1 {
			r.fail("node %d has speed %d", i, e.s[i])
			break
		}
		e.st[i] = dist.RestoreSendState(tasks, dummies)
		checkSpeed += e.s[i]
	}

	// Per-edge section.
	for id := 0; id < eSlots && r.err == nil; id++ {
		if gs.Ends[id][0] < 0 {
			continue
		}
		e.alpha[id] = r.f64()
		e.fA[id] = r.f64()
		e.fD[id] = r.varint()
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("engine state: %d trailing bytes", len(r.b))
	}
	if checkSpeed != speedSum {
		return nil, fmt.Errorf("engine state: speeds sum to %d but ledger says %d", checkSpeed, speedSum)
	}
	// α is a pure function of speeds and degrees; recompute and compare so
	// a snapshot from a diverging build (or a tampered one) fails loudly.
	for id := 0; id < eSlots; id++ {
		u, v := topo.EdgeEndpoints(id)
		if u < 0 {
			continue
		}
		if want := continuous.EdgeAlpha(e.s[u], e.s[v], topo.Degree(u), topo.Degree(v)); e.alpha[id] != want {
			return nil, fmt.Errorf("engine state: edge %d alpha %v != derived %v", id, e.alpha[id], want)
		}
	}
	if err := e.AuditFull(); err != nil {
		return nil, fmt.Errorf("engine state: conservation audit failed: %w", err)
	}
	e.fullAudits = 0 // the restore-time audit is not part of the run's history
	e.pool = newWorkerPool(workers)
	// Gate state is deliberately absent from the encoding: it is
	// reconstructed, never trusted from disk. Waking the whole graph is the
	// conservative reconstruction — over-waking is semantics-preserving, so
	// the restored engine is bit-identical to the one that encoded.
	e.initGate(cfg.Gate == GateOn)

	if cfg.WAL != nil {
		if err := e.AttachWAL(cfg.WAL, cfg.SnapshotEvery); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// Restore rebuilds an engine from a log recovery: the snapshot state plus
// a replay of every committed batch after it. The returned engine is
// byte-identical (EncodeState) to the engine that wrote the log, as of its
// last committed round. cfg is passed through to NewFromState; attach a
// WAL via cfg.WAL only after recovery succeeded if the same directory is
// being reopened for appending.
func Restore(rec *wal.Recovery, cfg Config) (*Engine, error) {
	if rec == nil || !rec.HasState() {
		return nil, errors.New("engine: recovery holds no snapshot")
	}
	walSink, snapEvery := cfg.WAL, cfg.SnapshotEvery
	cfg.WAL = nil // attach only after the replay reached the log's tip
	e, err := NewFromState(rec.Snapshot, cfg)
	if err != nil {
		return nil, err
	}
	for k := range rec.Batches {
		b := &rec.Batches[k]
		if err := e.ReplayStep(b.Events, b.Mark); err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: replaying batch %d/%d: %w", k+1, len(rec.Batches), err)
		}
	}
	if walSink != nil {
		if err := e.AttachWAL(walSink, snapEvery); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// wireToEvent converts a logged wire event back to a runtime event. It is
// FromWire plus the degenerate no-op forms the programmatic API can emit
// (an empty arrival, an empty edge-change) which the wire validators
// reject but the log must round-trip.
func wireToEvent(w *wire.Event) (Event, error) {
	switch {
	case w.Kind == "arrival" && w.Tokens == 0 && len(w.Weights) == 0:
		return ArrivalTasks(w.At, w.Node, nil), nil
	case w.Kind == "edge-change" && len(w.Add) == 0 && len(w.Remove) == 0:
		return EdgeChange(w.At, nil, nil), nil
	}
	return FromWire(w)
}

// ReplayStep re-executes one committed step from the log: it applies the
// batch's events directly in their logged order — bypassing the event
// queue, whose (At, kind, seq) ordering was already resolved when the
// events were applied the first time — then runs one balancing round and
// checks the engine against the batch's round marker. A mismatch means
// the replay diverged from the run that wrote the log; the failure is
// latched like any other inconsistency.
func (e *Engine) ReplayStep(events []wire.Event, mark wal.RoundMark) error {
	if e.closed {
		return ErrClosed
	}
	if e.poisoned != nil {
		return e.poisoned
	}
	for k := range events {
		ev, err := wireToEvent(&events[k])
		if err != nil {
			return fmt.Errorf("engine: replay round %d event %d: %w", e.round, k, err)
		}
		if err := e.applyEvent(ev); err != nil {
			return fmt.Errorf("engine: replay round %d %s event: %w", e.round, ev.Kind, err)
		}
		e.eventsApplied++
		e.instr.eventsApplied[ev.Kind].Inc()
		e.recordEvent(ev)
	}
	if len(events) > 0 {
		if err := e.checkLedger(); err != nil {
			err = fmt.Errorf("engine: replay round %d after %d-event batch: %w: %w", e.round, len(events), ErrInconsistent, err)
			e.poisoned = err
			return err
		}
	}
	e.runRound()
	if e.round != mark.Round || e.expectedReal != mark.Real || e.ledTotal != mark.Total ||
		e.ledCreated != mark.Created || e.wmax != mark.Wmax {
		err := fmt.Errorf("engine: %w: replay diverged at round marker %d: engine round=%d real=%d total=%d created=%d wmax=%d, log real=%d total=%d created=%d wmax=%d",
			ErrInconsistent, mark.Round, e.round, e.expectedReal, e.ledTotal, e.ledCreated, e.wmax,
			mark.Real, mark.Total, mark.Created, mark.Wmax)
		e.poisoned = err
		return err
	}
	return nil
}

// AttachWAL hooks a durability sink into the engine: from now on every
// applied event and round boundary is logged before Step returns, and a
// full-state snapshot is written every snapshotEvery rounds (0 means
// 1024). Attaching writes a baseline snapshot immediately so the log is
// always replayable from its newest snapshot — on a fresh log this is the
// genesis state, on a reopened one the post-recovery state.
func (e *Engine) AttachWAL(sink WALSink, snapshotEvery int) error {
	if e.closed {
		return ErrClosed
	}
	if snapshotEvery < 1 {
		snapshotEvery = 1024
	}
	if err := sink.WriteSnapshot(e.round, e.EncodeState()); err != nil {
		return fmt.Errorf("%w: baseline snapshot: %v", ErrWAL, err)
	}
	e.wal = sink
	e.walSnapEvery = snapshotEvery
	return nil
}

// SnapshotNow forces a durable full-state snapshot through the attached
// WAL (lbserve writes one at graceful shutdown so the next boot replays
// nothing).
func (e *Engine) SnapshotNow() error {
	if e.wal == nil {
		return errors.New("engine: no WAL attached")
	}
	if e.poisoned != nil {
		// A poisoned state must never become a recovery baseline.
		return fmt.Errorf("engine: refusing snapshot of poisoned state: %w", e.poisoned)
	}
	if err := e.wal.WriteSnapshot(e.round, e.EncodeState()); err != nil {
		return fmt.Errorf("%w: snapshot: %v", ErrWAL, err)
	}
	return nil
}

// logEvent appends one applied event to the WAL (called from Step after a
// successful apply). Failures poison the engine via ErrWAL: state and log
// can no longer be guaranteed to agree. The wire form is staged in a
// scratch field so the hot path (thousands of logged events per round)
// does not heap-allocate per event.
//
//lb:hotpath
func (e *Engine) logEvent(ev Event) error {
	if err := toWireInto(ev, &e.walScratch); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	if err := e.wal.AppendEvent(&e.walScratch); err != nil {
		return fmt.Errorf("%w: append event: %v", ErrWAL, err)
	}
	return nil
}

// walCommit appends the round marker committing this step's batch and, on
// the snapshot cadence, a full-state snapshot (called from Step right
// after runRound).
//
//lb:hotpath
func (e *Engine) walCommit() error {
	m := wal.RoundMark{
		Round:   e.round,
		Real:    e.expectedReal,
		Total:   e.ledTotal,
		Created: e.ledCreated,
		Wmax:    e.wmax,
	}
	if err := e.wal.AppendRound(m); err != nil {
		return fmt.Errorf("%w: append round %d marker: %v", ErrWAL, e.round, err)
	}
	if e.walSnapEvery > 0 && e.round%int64(e.walSnapEvery) == 0 {
		if err := e.wal.WriteSnapshot(e.round, e.EncodeState()); err != nil {
			return fmt.Errorf("%w: snapshot at round %d: %v", ErrWAL, e.round, err)
		}
	}
	return nil
}

// ToWire converts a runtime event to its wire form — the lossless record
// the WAL persists. Arrivals with uniform task weight compress to
// Tokens+Weight; heterogeneous batches carry the explicit Weights list.
func ToWire(ev Event) (wire.Event, error) {
	var w wire.Event
	if err := toWireInto(ev, &w); err != nil {
		return wire.Event{}, err
	}
	return w, nil
}

// errDummyArrival is hoisted so toWireInto's validation path allocates
// nothing when it fires inside the per-event hot path.
var errDummyArrival = errors.New("engine: dummy task in arrival")

// toWireInto fills w in place so hot callers (logEvent runs per applied
// event) can reuse one scratch value instead of copying the struct twice.
//
//lb:hotpath
func toWireInto(ev Event, w *wire.Event) error {
	// Keep the scratch value's Weights capacity across resets: logEvent
	// reuses one wire.Event per applied event, so heterogeneous arrivals
	// amortize to zero allocations once the buffer has grown.
	weights := w.Weights[:0]
	*w = wire.Event{Kind: ev.Kind.String(), At: ev.At}
	switch ev.Kind {
	case KindTaskArrival:
		w.Node = ev.Node
		w.Tokens = len(ev.Tasks)
		if len(ev.Tasks) == 0 {
			return nil
		}
		uniform := true
		for _, q := range ev.Tasks {
			if q.Dummy {
				return errDummyArrival
			}
			if q.Weight != ev.Tasks[0].Weight {
				uniform = false
			}
		}
		if uniform {
			w.Weight = ev.Tasks[0].Weight
		} else {
			for _, q := range ev.Tasks {
				weights = append(weights, q.Weight)
			}
			w.Weights = weights
		}
	case KindTaskCompletion:
		w.Node = ev.Node
		w.Count = ev.Count
	case KindNodeJoin:
		w.Speed = ev.Speed
		w.Peers = ev.Peers
	case KindNodeLeave:
		w.Node = ev.Node
	case KindEdgeChange:
		w.Add = ev.AddEdges
		w.Remove = ev.RemoveEdges
	default:
		return fmt.Errorf("engine: unencodable event kind %v", ev.Kind)
	}
	return nil
}
