package engine

import (
	"container/heap"
	"fmt"

	"repro/internal/load"
)

// Kind enumerates the event types the runtime consumes.
type Kind int

const (
	// KindTaskArrival injects tasks at a node (Definition 3 additivity: new
	// load simply starts balancing on top of the moving load).
	KindTaskArrival Kind = iota + 1
	// KindTaskCompletion removes up to Count finished (non-dummy) tasks
	// from a node, newest first.
	KindTaskCompletion
	// KindNodeJoin activates a new node with the given Speed and attaches
	// it to the Peers.
	KindNodeJoin
	// KindNodeLeave deactivates a node; its tasks are redistributed
	// round-robin to its neighbours (load conservation) and its continuous
	// mass follows.
	KindNodeLeave
	// KindEdgeChange removes the RemoveEdges and then adds the AddEdges.
	KindEdgeChange
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTaskArrival:
		return "arrival"
	case KindTaskCompletion:
		return "completion"
	case KindNodeJoin:
		return "join"
	case KindNodeLeave:
		return "leave"
	case KindEdgeChange:
		return "edge-change"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one unit of the runtime's input stream. At is the round index
// at which the event fires: all events with At <= Round() are applied, in
// (At, kind, insertion) order, before the next balancing round executes.
type Event struct {
	At   int64
	Kind Kind

	// Node is the target of arrivals, completions and leaves.
	Node int
	// Tasks are the arriving tasks (arrivals only; dummies are rejected).
	Tasks []load.Task
	// Count is the number of tasks to complete (completions only).
	Count int
	// Speed is the joining node's speed (joins only; 0 means 1).
	Speed int64
	// Peers are the joining node's initial neighbours (joins only).
	Peers []int
	// AddEdges and RemoveEdges are applied by edge-change events;
	// removals run first.
	AddEdges    [][2]int
	RemoveEdges [][2]int
}

// Arrival builds a TaskArrival of count unit-weight tokens.
func Arrival(at int64, node int, count int) Event {
	tasks := make([]load.Task, count)
	for i := range tasks {
		tasks[i] = load.Task{Weight: 1}
	}
	return Event{At: at, Kind: KindTaskArrival, Node: node, Tasks: tasks}
}

// ArrivalTasks builds a TaskArrival of explicit tasks.
func ArrivalTasks(at int64, node int, tasks []load.Task) Event {
	return Event{At: at, Kind: KindTaskArrival, Node: node, Tasks: tasks}
}

// Completion builds a TaskCompletion of count tasks.
func Completion(at int64, node int, count int) Event {
	return Event{At: at, Kind: KindTaskCompletion, Node: node, Count: count}
}

// Join builds a NodeJoin attaching to peers with the given speed.
func Join(at int64, speed int64, peers ...int) Event {
	return Event{At: at, Kind: KindNodeJoin, Speed: speed, Peers: peers}
}

// Leave builds a NodeLeave.
func Leave(at int64, node int) Event {
	return Event{At: at, Kind: KindNodeLeave, Node: node}
}

// EdgeChange builds an edge mutation; remove runs before add.
func EdgeChange(at int64, add, remove [][2]int) Event {
	return Event{At: at, Kind: KindEdgeChange, AddEdges: add, RemoveEdges: remove}
}

// kindRank orders events that fire in the same round: topology growth
// first (so same-round arrivals can target just-joined nodes), then work
// stream changes, then departures.
func kindRank(k Kind) int {
	switch k {
	case KindNodeJoin:
		return 0
	case KindEdgeChange:
		return 1
	case KindTaskArrival:
		return 2
	case KindTaskCompletion:
		return 3
	case KindNodeLeave:
		return 4
	default:
		return 5
	}
}

// queued is an Event with its insertion sequence number for stable ordering.
type queued struct {
	ev  Event
	seq int64
}

// eventQueue is a priority queue over (At, kindRank, seq).
type eventQueue []queued

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.ev.At != b.ev.At {
		return a.ev.At < b.ev.At
	}
	if ra, rb := kindRank(a.ev.Kind), kindRank(b.ev.Kind); ra != rb {
		return ra < rb
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(queued)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

var _ heap.Interface = (*eventQueue)(nil)
