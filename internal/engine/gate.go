package engine

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/load"
)

// Activity gating: run Algorithm 1 only over the hot frontier.
//
// The paper's additivity property (Definition 3) makes imbalance
// propagation strictly local: the continuous flow over an edge depends
// only on the endpoints' continuous loads x, the edge's diffusion
// parameter α and its accumulators f^A/f^D. The gate exploits that by
// keeping a hot set of edges and letting the rest of the graph sleep.
//
// Hot-set invariants (what makes sleeping provably safe):
//
//  1. An edge may go cold only after a round that PROCESSED it observed a
//     bitwise fixed point: no task crossed the edge (no send), the f^A
//     accumulator's bits did not change (the round's continuous flow was
//     zero or fully absorbed), and both endpoints' x bits did not change.
//     In that state the ungated engine would recompute the identical
//     flow, the identical (sub-threshold) residual gap and the identical
//     absorbed x update every following round — a bitwise no-op — until
//     one of the edge's inputs changes.
//  2. Every input change wakes the affected neighbourhood before the next
//     round runs: a send or f^A change re-wakes the edge itself; an x
//     change (balancing round or arrival/completion/leave redistribution)
//     wakes every edge incident to the node; a topology change wakes
//     every edge whose α was recomputed (refreshAlphas). wmax only ever
//     grows, and a growing send threshold keeps sleeping edges validly
//     asleep.
//  3. A node is hot iff it is an endpoint of a hot edge (plus the node an
//     event just touched), so the round's per-node phases cover the hot
//     frontier and its one-hop boundary: both endpoints of every hot
//     edge run their send/deliver phases even when only one side caused
//     the wake.
//  4. Over-waking is always semantics-preserving — a woken edge at a
//     fixed point is processed once, found cold, and put back to sleep —
//     so every reconstruction path (NewFromState, Restore, WithGate(true))
//     simply wakes everything. Gate state is never persisted and never
//     trusted from disk; EncodeState deliberately excludes it, which is
//     what makes a gated engine hash-identical to an ungated one.
//
// Storage is allocation-free in steady state: two-level membership
// bitmaps (one bit per edge/node slot plus a summary bit per 64-bit
// word, double-buffered current/pending) and a compact reused hot-node
// slice, in the spirit of the dist.SendState pool reuse. The summary
// level makes every sweep — iteration, clearing, occupancy — cost
// O(|hot| + slots/4096) instead of O(slots/64), which is what keeps a
// mostly-idle million-node round at microseconds instead of a bitmap
// scan. Word order gives the serial phases the ascending edge-slot
// iteration they need for bit-identical float accumulation, and gate
// maintenance is O(|hot|).
const (
	// gateHotNum/gateHotDen: above this hot-edge fraction the gated round
	// would touch nearly everything anyway, so the engine falls back to
	// the unconditional full scan and re-wakes the whole graph (skipping
	// per-edge bookkeeping entirely keeps the fully-hot regime within the
	// ungated round's cost).
	gateHotNum = 3
	gateHotDen = 4
	// gateProbeEvery: while in the fully-hot fallback, every this many
	// rounds one probe round runs full maintenance so a graph that
	// quiesced under the fallback is detected and put to sleep; without
	// the probe, the all-hot wake would be self-sustaining. The probe is
	// a dense full round plus linear-scan maintenance (runRoundFullProbe,
	// ~1.3× the plain full scan — no bitmap iteration), so the interval
	// trades a small amortized steady-hot overhead against the cool-down
	// latency after quiescing (≤ interval full rounds — exactly what an
	// ungated engine would spend anyway).
	gateProbeEvery = 64
)

// GateMode selects the engine's activity-gate posture (Config.Gate).
type GateMode int

const (
	// GateOn — the zero value, the default — runs balancing rounds over
	// the hot frontier only.
	GateOn GateMode = iota
	// GateOff forces every round to the ungated full scan over all nodes
	// and edges (lbserve -gate=false).
	GateOff
)

// hotSet is a two-level membership bitmap over slots: bit i of l1 marks
// slot i hot, bit w of l2 marks "word w of l1 may be non-zero". l2 is an
// over-approximation (clearing is done whole-word), so a set l2 bit over
// a zeroed l1 word costs one wasted probe, never a correctness error.
// Bits beyond the valid slot range n are never set — scans index engine
// arrays directly with decoded positions.
type hotSet struct {
	l1, l2 []uint64
	n      int
}

func newHotSet(n int) hotSet {
	w := (n + 63) / 64
	return hotSet{l1: make([]uint64, w), l2: make([]uint64, (w+63)/64), n: n}
}

//lb:hotpath
func (h *hotSet) set(i int) {
	w := i >> 6
	h.l1[w] |= 1 << (uint(i) & 63)
	h.l2[w>>6] |= 1 << (uint(w) & 63)
}

//lb:hotpath
func (h *hotSet) has(i int) bool { return h.l1[i>>6]&(1<<(uint(i)&63)) != 0 }

// grow extends the valid slot range to n (append-only, zero-filled).
func (h *hotSet) grow(n int) {
	if n > h.n {
		h.n = n
	}
	for len(h.l1) < (h.n+63)/64 {
		h.l1 = append(h.l1, 0)
	}
	for len(h.l2) < (len(h.l1)+63)/64 {
		h.l2 = append(h.l2, 0)
	}
}

// clear empties the set in O(|hot| + len(l2)) words.
//
//lb:hotpath
func (h *hotSet) clear() {
	for w2i, w2 := range h.l2 {
		for w2 != 0 {
			wi := w2i<<6 | bits.TrailingZeros64(w2)
			w2 &= w2 - 1
			h.l1[wi] = 0
		}
		h.l2[w2i] = 0
	}
}

// count returns the number of members in O(|hot| + len(l2)) words.
//
//lb:hotpath
func (h *hotSet) count() int {
	n := 0
	for w2i, w2 := range h.l2 {
		for w2 != 0 {
			wi := w2i<<6 | bits.TrailingZeros64(w2)
			w2 &= w2 - 1
			n += bits.OnesCount64(h.l1[wi])
		}
	}
	return n
}

// fill sets every one of the n valid slots, masking the tail words.
//
//lb:hotpath
func (h *hotSet) fill() {
	for i := range h.l1 {
		h.l1[i] = ^uint64(0)
	}
	if rem := h.n & 63; rem != 0 && len(h.l1) > 0 {
		h.l1[len(h.l1)-1] = 1<<rem - 1
	}
	for i := range h.l2 {
		h.l2[i] = ^uint64(0)
	}
	if rem := len(h.l1) & 63; rem != 0 && len(h.l2) > 0 {
		h.l2[len(h.l2)-1] = 1<<rem - 1
	}
}

// forEach calls fn for every member in ascending slot order.
//
//lb:hotpath
func (h *hotSet) forEach(fn func(i int)) {
	for w2i, w2 := range h.l2 {
		for w2 != 0 {
			wi := w2i<<6 | bits.TrailingZeros64(w2)
			w2 &= w2 - 1
			word := h.l1[wi]
			base := wi << 6
			for word != 0 {
				fn(base | bits.TrailingZeros64(word))
				word &= word - 1
			}
		}
	}
}

// gate is the engine's activity-gate state. The cur/pending pairs are
// double-buffered membership sets: cur is the worklist of the round in
// flight, pending accumulates wakes (gate maintenance plus applied
// events) for the next round and is swapped in when the round starts.
type gate struct {
	on bool

	edgeCur, edgePending hotSet
	nodeCur, nodePending hotSet

	// curNodes is the compact hot-node worklist of the current round,
	// rebuilt from nodeCur at swap time into a reused slice.
	curNodes []int32

	// fA0 holds the pre-round f^A bit patterns of the hot edges; x0 the
	// pre-round x of the hot nodes. Gate maintenance compares bits, not
	// values: EncodeState hashes raw float bits, so "unchanged" must mean
	// bitwise-unchanged (-0.0 vs +0.0 included).
	fA0 []uint64
	x0  []float64

	// hotEdges/hotNodes is the occupancy of the last executed round (the
	// full active counts when the round was an ungated full scan).
	hotEdges, hotNodes int

	// fullStreak counts consecutive rounds at or above the fallback
	// threshold; it schedules the periodic probe round.
	fullStreak int
}

// initGate sizes the gate storage for the current slot ranges and, when
// gating is enabled, wakes the whole graph — the conservative
// reconstruction every entry path (New, NewFromState, WithGate) uses.
func (e *Engine) initGate(on bool) {
	// Bind the per-phase shard callbacks once; the round phases reuse
	// these func values so the hot path allocates no closures (enforced by
	// lblint's hotalloc gate).
	e.decideFullFn = e.decideFullNode
	e.deliverFullFn = e.deliverFullNode
	e.decideGatedFn = e.decideGatedNode
	e.deliverGatedFn = e.deliverGatedNode
	g := &e.gate
	ns, es := e.topo.NodeSlots(), e.topo.EdgeSlots()
	g.edgeCur, g.edgePending = newHotSet(es), newHotSet(es)
	g.nodeCur, g.nodePending = newHotSet(ns), newHotSet(ns)
	g.fA0 = make([]uint64, es)
	g.x0 = make([]float64, ns)
	g.on = on
	if on {
		e.gateWakeAll()
	}
}

// gateWakeAll marks every node and edge slot pending-hot (freed slots
// included — the round skips them in O(1) and cools them right back).
func (e *Engine) gateWakeAll() {
	e.gate.edgePending.fill()
	e.gate.nodePending.fill()
}

// gateWakeNode wakes node i's whole neighbourhood: the node itself, every
// incident edge, and each edge's far endpoint (hot edges need both
// endpoints in the node worklist — invariant 3).
//
//lb:hotpath
func (e *Engine) gateWakeNode(i int) {
	g := &e.gate
	if !g.on {
		return
	}
	for _, a := range e.topo.Neighbors(i) {
		g.edgePending.set(a.Edge)
		g.nodePending.set(a.To)
	}
	g.nodePending.set(i)
}

// gateWakeEdge wakes one edge and both its endpoints.
//
//lb:hotpath
func (e *Engine) gateWakeEdge(id, u, v int) {
	g := &e.gate
	if !g.on {
		return
	}
	g.edgePending.set(id)
	g.nodePending.set(u)
	g.nodePending.set(v)
}

// growGateNode extends the per-node gate storage alongside growNode.
func (e *Engine) growGateNode(slot int) {
	g := &e.gate
	g.x0 = append(g.x0, 0)
	g.nodeCur.grow(slot + 1)
	g.nodePending.grow(slot + 1)
}

// growGateEdge extends the per-edge gate storage alongside growEdge.
func (e *Engine) growGateEdge(id int) {
	g := &e.gate
	g.fA0 = append(g.fA0, 0)
	g.edgeCur.grow(id + 1)
	g.edgePending.grow(id + 1)
}

// WithGate toggles activity gating at runtime and returns the engine.
// Enabling wakes the whole graph — gate state is always reconstructed,
// never assumed — so the next rounds are bit-identical to an engine that
// had the gate on from the start. Disabling makes every round a full
// scan. lbserve exposes this as -gate.
func (e *Engine) WithGate(on bool) *Engine {
	g := &e.gate
	if on && !g.on {
		g.on = true
		g.fullStreak = 0
		e.gateWakeAll()
	} else if !on {
		g.on = false
	}
	return e
}

// GateEnabled reports whether activity gating is on.
func (e *Engine) GateEnabled() bool { return e.gate.on }

// HotNodes returns the hot-set node occupancy of the last executed round
// (every active node when the gate is off or the round fell back to a
// full scan).
func (e *Engine) HotNodes() int {
	if !e.gate.on {
		return e.topo.NumNodes()
	}
	return e.gate.hotNodes
}

// HotEdges returns the hot-set edge occupancy of the last executed round
// (every active edge when the gate is off or the round fell back to a
// full scan).
func (e *Engine) HotEdges() int {
	if !e.gate.on {
		return e.topo.NumEdges()
	}
	return e.gate.hotEdges
}

// PendingHotEdges returns the number of edges already woken for the next
// round. Zero with an empty event queue means the next Step is a no-op
// round — lbserve's auto-step loop uses this to idle without scanning.
func (e *Engine) PendingHotEdges() int {
	if !e.gate.on {
		return e.topo.NumEdges()
	}
	return e.gate.edgePending.count()
}

// runRound executes one synchronous balancing round, dispatching between
// the gated hot-frontier path and the ungated full scan. With the gate on,
// a mostly-hot graph (≥ gateHotNum/gateHotDen of the edge slots pending)
// falls back to the full scan plus a blanket re-wake — cheaper than
// per-edge bookkeeping that would select nearly everything — with a
// periodic probe round so a quiescing graph still gets put to sleep.
func (e *Engine) runRound() {
	g := &e.gate
	if !g.on {
		e.runRoundFull()
		return
	}
	hot := g.edgePending.count()
	slots := e.topo.EdgeSlots()
	if slots > 0 && gateHotDen*hot >= gateHotNum*slots {
		probe := g.fullStreak%gateProbeEvery == 0
		g.fullStreak++
		if probe {
			e.runRoundFullProbe()
			return
		}
		e.runRoundFull()
		tMaint := nowMetric()
		e.gateWakeAll()
		g.hotEdges = e.topo.NumEdges()
		g.hotNodes = e.topo.NumNodes()
		e.instr.stage["gate_maintain"].ObserveDuration(sinceMetric(tMaint))
		return
	}
	g.fullStreak = 0
	e.runRoundGated(hot)
}

// runRoundFullProbe is the fallback path's periodic probe: a dense full
// round bracketed by linear-scan gate maintenance, so a graph that
// quiesced while fully hot is detected and put to sleep. It is
// equivalent to a gated round whose worklist is everything — the same
// wake rule over every edge and node — but costs only ~1.3× the plain
// full scan, because the snapshots and wake checks are straight array
// sweeps with no bitmap iteration. The blanket pending wakes left by the
// fallback rounds before it are discarded and replaced by the exact wake
// set the maintenance rule computes.
//
//lb:hotpath
func (e *Engine) runRoundFullProbe() {
	g := &e.gate

	tSnap := nowMetric()
	g.edgePending.clear()
	g.nodePending.clear()
	edgeSlots := e.topo.EdgeSlots()
	for id := 0; id < edgeSlots; id++ {
		g.fA0[id] = math.Float64bits(e.fA[id])
	}
	copy(g.x0, e.x)
	g.hotEdges = e.topo.NumEdges()
	g.hotNodes = e.topo.NumNodes()
	snapDur := sinceMetric(tSnap)

	e.runRoundFull()

	tMaint := nowMetric()
	for id := 0; id < edgeSlots; id++ {
		u, v := e.topo.EdgeEndpoints(id)
		if u < 0 {
			continue
		}
		if e.outbox[id].tasks != nil || math.Float64bits(e.fA[id]) != g.fA0[id] {
			g.edgePending.set(id)
			g.nodePending.set(u)
			g.nodePending.set(v)
		}
	}
	nodeSlots := e.topo.NodeSlots()
	for i := 0; i < nodeSlots; i++ {
		if !e.topo.Active(i) {
			continue
		}
		if math.Float64bits(e.x[i]) != math.Float64bits(g.x0[i]) {
			e.gateWakeNode(i)
		}
	}
	e.instr.stage["gate_maintain"].ObserveDuration(snapDur + sinceMetric(tMaint))
}

// runRoundGated is the hot-frontier round: the same four phases as
// runRoundFull, in the same per-edge and per-node order, restricted to
// the hot worklists, followed by gate maintenance. Bitmap word order
// makes the serial edge phases iterate in ascending slot order, so every
// float accumulation happens in exactly the ungated sequence and the
// result is bit-identical.
//
//lb:hotpath
func (e *Engine) runRoundGated(hotEdges int) {
	g := &e.gate

	// Swap in the pending wakes and rebuild the compact node worklist.
	tSwap := nowMetric()
	g.edgeCur, g.edgePending = g.edgePending, g.edgeCur
	g.nodeCur, g.nodePending = g.nodePending, g.nodeCur
	g.edgePending.clear()
	g.nodePending.clear()
	g.curNodes = g.curNodes[:0]
	g.nodeCur.forEach(func(i int) { g.curNodes = append(g.curNodes, int32(i)) })
	g.hotEdges = hotEdges
	g.hotNodes = len(g.curNodes)
	swapDur := sinceMetric(tSwap)

	// Phase 1: continuous flows, cumulative f^A and the residual-gap
	// snapshot over the hot edges (serial, ascending slot order). The
	// pre-round f^A bits are captured for maintenance.
	tFlows := nowMetric()
	g.edgeCur.forEach(func(id int) {
		e.outbox[id].tasks = nil
		g.fA0[id] = math.Float64bits(e.fA[id])
		u, v := e.topo.EdgeEndpoints(id)
		if u < 0 {
			e.net[id] = 0
			return
		}
		yuv := e.alpha[id] / float64(e.s[u]) * e.x[u]
		yvu := e.alpha[id] / float64(e.s[v]) * e.x[v]
		n := yuv - yvu
		e.net[id] = n
		e.fA[id] += n
		e.gap[id] = e.fA[id] - float64(e.fD[id])
	})

	// Phase 2: send decisions over the hot nodes, arcs filtered to hot
	// edges (a cold edge's residual is provably sub-threshold — invariant
	// 1 — so skipping it is the decision the full scan would make).
	// BeginRound runs lazily before the node's first hot arc; cold arcs
	// never Take, so the deferred reset is unobservable. Each hot node
	// also snapshots its own x for maintenance — phase 4 only moves x at
	// endpoints of hot edges, all of which are in the worklist.
	tDecide := nowMetric()
	e.roundWmaxF = float64(e.wmax) - core.RoundingEps
	e.pool.forEach(len(g.curNodes), e.decideGatedFn)
	if d := e.roundDummies.Swap(0); d != 0 {
		e.ledTotal += d
		e.ledCreated += d
	}

	// Phase 3: deliveries over the hot nodes. Arcs are filtered to hot
	// edges because only hot outbox slots were reset this round — a cold
	// edge may hold a stale batch from the round it last sent on.
	tDeliver := nowMetric()
	e.pool.forEach(len(g.curNodes), e.deliverGatedFn)

	// Phase 4: advance the continuous replica over the hot edges, in the
	// same ascending slot order as the full scan (x updates are float
	// additions; order is part of the bit-identity contract).
	tUpdate := nowMetric()
	g.edgeCur.forEach(func(id int) {
		if n := e.net[id]; n != 0 {
			u, v := e.topo.EdgeEndpoints(id)
			e.x[u] -= n
			e.x[v] += n
		}
	})

	// Gate maintenance: decide who stays hot. An edge that sent or whose
	// f^A bits moved re-wakes itself; a node whose x bits moved re-wakes
	// its whole neighbourhood. Everything else goes cold.
	tMaint := nowMetric()
	g.edgeCur.forEach(func(id int) {
		u, v := e.topo.EdgeEndpoints(id)
		if u < 0 {
			return
		}
		if e.outbox[id].tasks != nil || math.Float64bits(e.fA[id]) != g.fA0[id] {
			g.edgePending.set(id)
			g.nodePending.set(u)
			g.nodePending.set(v)
		}
	})
	for _, s32 := range g.curNodes {
		i := int(s32)
		if !e.topo.Active(i) {
			continue
		}
		if math.Float64bits(e.x[i]) != math.Float64bits(g.x0[i]) {
			e.gateWakeNode(i)
		}
	}

	e.round++
	now := nowMetric()
	e.instr.stage["round_flows"].ObserveDuration(tDecide.Sub(tFlows))
	e.instr.stage["round_decide"].ObserveDuration(tDeliver.Sub(tDecide))
	e.instr.stage["round_deliver"].ObserveDuration(tUpdate.Sub(tDeliver))
	e.instr.stage["round_update"].ObserveDuration(tMaint.Sub(tUpdate))
	e.instr.stage["gate_maintain"].ObserveDuration(swapDur + now.Sub(tMaint))
	e.instr.roundsTotal.Inc()
}

// decideGatedNode is runRoundGated's phase-2 body for one hot-worklist
// index: node i's send decisions with arcs filtered to hot edges (a cold
// edge's residual is provably sub-threshold — invariant 1 — so skipping
// it is the decision the full scan would make). BeginRound runs lazily
// before the node's first hot arc; cold arcs never Take, so the deferred
// reset is unobservable. The node also snapshots its own x for
// maintenance — phase 4 only moves x at endpoints of hot edges, all in
// the worklist. Bound once as e.decideGatedFn (initGate) so the fan-out
// allocates no closure per round.
//
//lb:hotpath
func (e *Engine) decideGatedNode(k int) {
	g := &e.gate
	i := int(g.curNodes[k])
	if !e.topo.Active(i) {
		return
	}
	g.x0[i] = e.x[i]
	st := e.st[i]
	began := false
	var dummies0 int64
	for _, a := range e.topo.Neighbors(i) {
		if !g.edgeCur.has(a.Edge) {
			continue
		}
		if !began {
			st.BeginRound()
			dummies0 = st.Dummies()
			began = true
		}
		gp := e.gap[a.Edge]
		if a.Out < 0 {
			gp = -gp
		}
		if gp < e.roundWmaxF {
			continue
		}
		var batch []load.Task
		sent := core.Forward(gp, e.wmax, st.Take, func(q load.Task) { batch = append(batch, q) })
		e.fD[a.Edge] += int64(a.Out) * sent
		e.outbox[a.Edge] = outMsg{to: a.To, tasks: batch}
	}
	if began {
		if d := st.Dummies() - dummies0; d != 0 {
			e.roundDummies.Add(d)
		}
	}
}

// deliverGatedNode is runRoundGated's phase-3 body for one hot-worklist
// index: consume the batches addressed to node i, arcs filtered to hot
// edges because only hot outbox slots were reset this round — a cold edge
// may hold a stale batch from the round it last sent on. Bound once as
// e.deliverGatedFn.
//
//lb:hotpath
func (e *Engine) deliverGatedNode(k int) {
	g := &e.gate
	i := int(g.curNodes[k])
	if !e.topo.Active(i) {
		return
	}
	for _, a := range e.topo.Neighbors(i) {
		if !g.edgeCur.has(a.Edge) {
			continue
		}
		m := &e.outbox[a.Edge]
		if m.tasks != nil && m.to == i {
			e.st[i].AddTasks(m.tasks)
		}
	}
}
