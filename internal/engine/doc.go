// Package engine runs the paper's Algorithm 1 as an always-on,
// event-driven load balancing runtime instead of a batch simulation.
//
// The batch executions (core.FlowImitation, dist.Cluster, sim.Run) fix a
// workload and a topology and run to quiescence. Two properties of the
// paper make the algorithm viable as a long-running service, and this
// package exploits both:
//
//   - Additivity (Definition 3): the continuous processes being imitated
//     are additive, so new load injected mid-run simply starts balancing
//     on top of the load already in motion — online task arrivals need no
//     restart of any kind.
//   - Locality (footnote 1): every quantity Algorithm 1 needs (the
//     continuous flows, the per-edge cumulative flows f^A and f^D, the
//     diffusion parameter α) depends only on an edge's endpoints, so a
//     topology change — a node joining or leaving, an edge appearing or
//     disappearing — only requires rebuilding the affected neighbourhood.
//
// An Engine therefore consumes a priority event stream (TaskArrival,
// TaskCompletion, NodeJoin, NodeLeave, EdgeChange) interleaved with
// balancing rounds over a mutable topology (graph.Dynamic). Load from
// departing nodes is redistributed to their neighbours, and conservation
// of non-dummy weight is enforced by an incremental ledger: every event
// folds the pool-counter deltas of the pools it touched into O(1) running
// totals, every round folds its dummy draws, and the event loop validates
// the totals once per event batch in O(1) — a burst of k arrivals costs
// O(k), not k stop-the-world recounts. The full recount survives as
// Engine.AuditFull: the opt-in deep-audit mode (Config.DeepAudit,
// WithDeepAudit, lbserve -audit) runs it after every applied event, tests
// invoke it at quiescence, and a ledger mismatch falls back to it for a
// precise per-node diagnostic. The per-node hot path (send decisions via
// core.Forward over dist.SendState pools) is
// sharded across a bounded worker pool, so large graphs step in parallel;
// results are bit-for-bit independent of the worker count, and on a static
// topology with no events identical to core.FlowImitation over FOS.
//
// A streaming metrics ring records discrepancy, potential Φ, dummy-token
// counts and per-round latency; cmd/lbserve exposes the ring, snapshots
// and event injection over HTTP.
package engine
