package engine

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// mustEngine builds an engine and registers cleanup. The CI deep-audit leg
// sets ENGINE_DEEP_AUDIT=1 to force the per-event full recount in every
// engine the suite builds, keeping the AuditFull path exercised under the
// whole test matrix; the gate matrix leg sets ENGINE_GATE=on (force the
// activity gate on in every engine, even ones the test configured off) or
// ENGINE_GATE=off (force the full-scan round everywhere).
func mustEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if os.Getenv("ENGINE_DEEP_AUDIT") == "1" {
		cfg.DeepAudit = true
	}
	switch os.Getenv("ENGINE_GATE") {
	case "on":
		cfg.Gate = GateOn
	case "off":
		cfg.Gate = GateOff
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestEngineMatchesFlowImitation: on a static topology with no events the
// engine must be bit-for-bit identical to the centralized Algorithm 1 over
// FOS with PolicyLIFO — same pools in the same order, same dummy totals.
func TestEngineMatchesFlowImitation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"torus-8x8", func() (*graph.Graph, error) { return graph.Torus(8, 8) }},
		{"hypercube-6", func() (*graph.Graph, error) { return graph.Hypercube(6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			s, err := workload.RandomSpeeds(g.N(), 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			d, err := workload.PointMassWeightedTasks(g.N(), 40*g.N(), 0, 4, rng)
			if err != nil {
				t.Fatal(err)
			}
			alpha, err := continuous.DefaultAlphas(g, s)
			if err != nil {
				t.Fatal(err)
			}
			central, err := core.NewFlowImitation(g, s, d, continuous.FOSFactory(g, s, alpha), core.PolicyLIFO)
			if err != nil {
				t.Fatal(err)
			}
			e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d, Workers: 4})
			for round := 0; round < 120; round++ {
				if err := e.Step(); err != nil {
					t.Fatal(err)
				}
				central.Step()
				_, _, got, err := e.ExportTasks()
				if err != nil {
					t.Fatal(err)
				}
				want := central.Tasks()
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("round %d node %d: %d tasks (engine) != %d (centralized)",
							round, i, len(got[i]), len(want[i]))
					}
					for k := range want[i] {
						if got[i][k] != want[i][k] {
							t.Fatalf("round %d node %d task %d: %+v != %+v",
								round, i, k, got[i][k], want[i][k])
						}
					}
				}
				if e.DummiesCreated() != central.DummiesCreated() {
					t.Fatalf("round %d: dummies %d (engine) != %d (centralized)",
						round, e.DummiesCreated(), central.DummiesCreated())
				}
			}
		})
	}
}

// TestEngineDeterministicAcrossWorkers: sharding must not change results.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	run := func(workers int) (load.TaskDist, int64) {
		d, err := load.NewTokens(workload.UniformRandom(g.N(), 2000, rand.New(rand.NewSource(5))))
		if err != nil {
			t.Fatal(err)
		}
		e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d, Workers: workers})
		// A churny schedule: bursts, completions, a join and a leave.
		events := []Event{
			Arrival(3, 7, 500),
			Completion(8, 7, 100),
			Join(10, 2, 0, 1, 6),
			Arrival(12, g.N(), 300), // arrives at the joined node's slot
			Leave(20, 9),
			EdgeChange(25, [][2]int{{2, 13}}, nil),
		}
		for _, ev := range events {
			if err := e.Schedule(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(60); err != nil {
			t.Fatal(err)
		}
		_, _, tasks, err := e.ExportTasks()
		if err != nil {
			t.Fatal(err)
		}
		return tasks, e.DummiesCreated()
	}
	want, wantDummies := run(1)
	for _, workers := range []int{2, 8} {
		got, gotDummies := run(workers)
		if gotDummies != wantDummies {
			t.Fatalf("workers=%d: dummies %d != %d", workers, gotDummies, wantDummies)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: node count %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d node %d: %d tasks != %d", workers, i, len(got[i]), len(want[i]))
			}
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("workers=%d node %d task %d: %+v != %+v", workers, i, k, got[i][k], want[i][k])
				}
			}
		}
	}
}

// TestEngineArrivalAdditivity: a burst injected mid-run balances back
// under the Theorem 3 bound (Definition 3 additivity in action).
func TestEngineArrivalAdditivity(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	e := mustEngine(t, Config{Graph: g, Speeds: s})
	if err := e.Schedule(Arrival(0, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Arrival(40, 17, 2000)); err != nil {
		t.Fatal(err)
	}
	rounds, ok, err := e.RunUntilBound(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("max-avg %.2f still above bound %.1f after %d rounds", e.MaxAvg(), e.Bound(), rounds)
	}
	if got := e.RealTotal(); got != 3000 {
		t.Fatalf("real total %d, want 3000", got)
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCompletionsShrinkLoad: completions remove real tasks only and
// keep conservation.
func TestEngineCompletionsShrinkLoad(t *testing.T) {
	g, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	d, err := load.NewTokens(workload.UniformRandom(g.N(), 800, rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, Config{Graph: g, Speeds: s, Tasks: d})
	for i := 0; i < g.N(); i++ {
		if err := e.Schedule(Completion(5, i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := e.RealTotal(); got >= 800 || got < 800-10*int64(g.N()) {
		t.Fatalf("real total %d after completions, want within [%d, 800)", got, 800-10*g.N())
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRejectsInvalidEvents covers event validation paths.
func TestEngineRejectsInvalidEvents(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(2)})
	for name, ev := range map[string]Event{
		"arrival-inactive":  Arrival(0, 99, 1),
		"arrival-dummy":     ArrivalTasks(0, 0, []load.Task{{Weight: 1, Dummy: true}}),
		"arrival-weight":    ArrivalTasks(0, 0, []load.Task{{Weight: 0}}),
		"completion-neg":    {Kind: KindTaskCompletion, Node: 0, Count: -1},
		"join-bad-peer":     Join(0, 1, 42),
		"leave-inactive":    Leave(0, 7),
		"edge-dup":          EdgeChange(0, [][2]int{{0, 1}}, nil),
		"edge-remove-miss":  EdgeChange(0, nil, [][2]int{{0, 0}}),
		"edge-remove-dup":   EdgeChange(0, nil, [][2]int{{0, 1}, {1, 0}}),
		"join-dup-peer":     Join(0, 1, 0, 0),
		"join-bad-speed":    {Kind: KindNodeJoin, Speed: -2},
		"unknown-kind-zero": {},
	} {
		eng := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(2)})
		if ev.Kind == 0 {
			if err := eng.Schedule(ev); err == nil {
				t.Fatalf("%s: schedule accepted unknown kind", name)
			}
			continue
		}
		if err := eng.Schedule(ev); err != nil {
			t.Fatalf("%s: schedule rejected: %v", name, err)
		}
		if err := eng.Step(); err == nil {
			t.Fatalf("%s: Step accepted invalid event", name)
		}
	}
	// The outer engine is still usable.
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineEventAtomicity: rejected events leave the engine unchanged (no
// half-joined nodes, no half-applied edge changes), and a remove+re-add of
// the same pair within one event is legal.
func TestEngineEventAtomicity(t *testing.T) {
	g := graph.MustNew(3, [][2]int{{0, 1}, {1, 2}})
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(3)})
	if err := e.Schedule(Join(0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("duplicate join peer accepted")
	}
	if e.NumNodes() != 3 || e.NumEdges() != 2 {
		t.Fatalf("rejected join mutated topology: n=%d m=%d", e.NumNodes(), e.NumEdges())
	}
	if err := e.AuditFull(); err != nil {
		t.Fatal(err)
	}

	e2 := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(3)})
	if err := e2.Schedule(EdgeChange(0, [][2]int{{0, 1}}, [][2]int{{0, 1}})); err != nil {
		t.Fatal(err)
	}
	if err := e2.Step(); err != nil {
		t.Fatalf("remove+re-add of the same pair rejected: %v", err)
	}
	if e2.NumEdges() != 2 {
		t.Fatalf("edges after remove+re-add: %d, want 2", e2.NumEdges())
	}

	// A rejected batch with a valid prefix must not be partially applied.
	e3 := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(3)})
	if err := e3.Schedule(EdgeChange(0, [][2]int{{0, 2}, {1, 1}}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := e3.Step(); err == nil {
		t.Fatal("self loop in batch accepted")
	}
	if e3.Topology().HasEdge(0, 2) {
		t.Fatal("rejected edge-change batch partially applied")
	}
}

// TestEngineLastNodeCannotLeave guards the empty-cluster edge case.
func TestEngineLastNodeCannotLeave(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e := mustEngine(t, Config{Graph: g, Speeds: load.UniformSpeeds(2)})
	if err := e.Schedule(Leave(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Leave(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err == nil {
		t.Fatal("last node left the cluster")
	}
}

// TestEngineClosed: operations after Close fail cleanly.
func TestEngineClosed(t *testing.T) {
	g := graph.MustNew(2, [][2]int{{0, 1}})
	e, err := New(Config{Graph: g, Speeds: load.UniformSpeeds(2)})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Step(); err == nil {
		t.Fatal("Step on closed engine succeeded")
	}
	if err := e.Schedule(Arrival(0, 0, 1)); err == nil {
		t.Fatal("Schedule on closed engine succeeded")
	}
}

// TestEngineHandoffToCluster: ExportTasks seeds a batch execution that
// picks up exactly where the engine stopped.
func TestEngineHandoffToCluster(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	e := mustEngine(t, Config{Graph: g, Speeds: s})
	if err := e.Schedule(Arrival(0, 0, 600)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Join(5, 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(Leave(15, 12)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(30); err != nil {
		t.Fatal(err)
	}
	g2, s2, d2, err := e.ExportTasks()
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != e.NumNodes() {
		t.Fatalf("snapshot n=%d, want %d", g2.N(), e.NumNodes())
	}
	var w int64
	for _, tasks := range d2 {
		for _, q := range tasks {
			if !q.Dummy {
				w += q.Weight
			}
		}
	}
	if w != e.RealTotal() {
		t.Fatalf("exported real weight %d, want %d", w, e.RealTotal())
	}
	alpha, err := continuous.DefaultAlphas(g2, s2)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := core.NewFlowImitation(g2, s2, d2, continuous.FOSFactory(g2, s2, alpha), core.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fi.Step()
	}
	maxAvg, err := load.MaxAvgDiscrepancy(fi.LoadExcludingDummies(), s2, w)
	if err != nil {
		t.Fatal(err)
	}
	if bound := float64(2*int64(g2.MaxDegree())*fi.Wmax() + 2); maxAvg > bound {
		t.Fatalf("handed-off run stuck at max-avg %.2f > bound %.1f", maxAvg, bound)
	}
}

// TestRingWindow exercises the metrics ring eviction.
func TestRingWindow(t *testing.T) {
	r := newRing(4)
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring has a last sample")
	}
	for i := int64(1); i <= 6; i++ {
		r.append(Sample{Round: i})
	}
	if r.Len() != 4 {
		t.Fatalf("ring length %d, want 4", r.Len())
	}
	got := r.Samples(0)
	for k, want := range []int64{3, 4, 5, 6} {
		if got[k].Round != want {
			t.Fatalf("sample %d round %d, want %d", k, got[k].Round, want)
		}
	}
	if last, _ := r.Last(); last.Round != 6 {
		t.Fatalf("last round %d, want 6", last.Round)
	}
	if got := r.Samples(2); len(got) != 2 || got[0].Round != 5 {
		t.Fatalf("Samples(2) = %+v", got)
	}
}
