package engine

import "sync"

// Sample is one round's streamed measurements: the discrepancy metrics the
// paper bounds, the dummy-token count, the workload totals, topology size,
// and the wall-clock latency of the round.
type Sample struct {
	// Round is the round index the sample was taken after.
	Round int64 `json:"round"`
	// Nodes and Edges are the active topology size.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// MaxAvg is the max-avg discrepancy of the real (dummy-eliminated)
	// load, the quantity Theorem 3 bounds by 2·d·wmax+2 at the continuous
	// balancing time.
	MaxAvg float64 `json:"max_avg"`
	// MaxMin is the max-min discrepancy of the real load.
	MaxMin float64 `json:"max_min"`
	// Potential is the quadratic potential Φ of the real load.
	Potential float64 `json:"potential"`
	// Dummies is the cumulative dummy weight drawn from the infinite
	// source (including by nodes that have since left).
	Dummies int64 `json:"dummies"`
	// RealTotal is the conserved non-dummy task weight W.
	RealTotal int64 `json:"real_total"`
	// Events is the cumulative number of events applied.
	Events int64 `json:"events"`
	// StepNanos is the wall-clock duration of the round, event application
	// and metrics included.
	StepNanos int64 `json:"step_nanos"`
	// HotNodes and HotEdges are the activity-gate hot-set occupancy of the
	// round (the full active counts when gating is off).
	HotNodes int `json:"hot_nodes"`
	HotEdges int `json:"hot_edges"`
}

// Ring is a fixed-capacity ring buffer of samples — the engine's streaming
// metrics window. The zero value is unusable; use newRing.
//
// Concurrency contract: the Ring is internally locked, so Len/Last/Samples
// may be called concurrently with the engine's Step (which appends) —
// Engine.Samples and Engine.LastSample are the one read surface that does
// NOT require the server mutex. Every other Engine method still does: the
// lock here protects only the sample buffer, not the engine state the
// samples are computed from.
type Ring struct {
	mu   sync.Mutex
	buf  []Sample
	next int
	full bool
}

func newRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Sample, capacity)}
}

// append adds a sample, evicting the oldest when full.
func (r *Ring) append(s Sample) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of stored samples.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *Ring) lenLocked() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Last returns the most recent sample and whether one exists.
func (r *Ring) Last() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lenLocked() == 0 {
		return Sample{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.buf) - 1
	}
	return r.buf[i], true
}

// Samples returns up to max samples in chronological order (all when
// max <= 0).
func (r *Ring) Samples(max int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	if max > 0 && max < n {
		n = max
	}
	out := make([]Sample, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for k := 0; k < n; k++ {
		out = append(out, r.buf[(start+k)%len(r.buf)])
	}
	return out
}
