package engine

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config configures a runtime instance.
type Config struct {
	// Graph is the initial topology (required).
	Graph *graph.Graph
	// Speeds are the initial node speeds (required, one per node).
	Speeds load.Speeds
	// Tasks is the initial task distribution; nil starts empty.
	Tasks load.TaskDist
	// Workers bounds the sharding pool for the per-node hot path;
	// 0 means GOMAXPROCS.
	Workers int
	// MetricsWindow is the capacity of the streaming metrics ring;
	// 0 means 1024.
	MetricsWindow int
	// SampleEvery takes a metrics sample every that many rounds;
	// 0 means every round.
	SampleEvery int
	// DeepAudit forces the stop-the-world conservation recount
	// (AuditFull) after every applied event, restoring the exhaustive
	// per-event diagnostics. The default is the O(1) incremental ledger
	// check once per event batch; see WithDeepAudit.
	DeepAudit bool
	// Registry receives the engine's metrics (per-stage step timings,
	// event counters, discrepancy gauges); nil gives the engine a private
	// registry, still reachable through Engine.Registry. Sharing one
	// registry lets a daemon expose engine and ingest metrics on a single
	// /metrics/prom endpoint.
	Registry *obs.Registry
	// FlightWindow is the capacity of the flight recorder — the bounded
	// ring of recent applied events and round summaries dumped by
	// GET /debug/trace; 0 means 1024.
	FlightWindow int
	// WAL, when non-nil, is the durability sink the engine logs through:
	// every applied event and every round boundary is appended before Step
	// returns (see AttachWAL). A log failure poisons the engine with ErrWAL.
	WAL WALSink
	// SnapshotEvery writes a full-state snapshot to the WAL every that many
	// rounds; 0 means 1024. Ignored without a WAL.
	SnapshotEvery int
	// Gate selects the activity-gate posture: GateOn (the zero value) runs
	// balancing rounds over the hot frontier only, GateOff forces the full
	// scan every round. Gating is semantics-preserving — a gated engine is
	// bit-identical to an ungated one on every event stream — so this is a
	// performance knob, exposed as lbserve -gate. See GateMode.
	Gate GateMode
}

// outMsg is one round's batch on an edge: the receiving node slot and the
// tasks. Exactly one endpoint (the sender) writes the slot during the
// decide phase and exactly the receiver consumes it during delivery.
type outMsg struct {
	to    int
	tasks []load.Task
}

// Engine runs Algorithm 1 as an always-on, event-driven runtime: a
// priority event loop consuming arrivals, completions, node churn and edge
// changes, interleaved with balancing rounds over a mutable topology.
//
// The continuous replica (per-node load x, per-edge diffusion parameter α)
// and the per-edge flow accumulators f^A/f^D live in engine-global arrays
// indexed by the stable node/edge slots of graph.Dynamic; a topology
// change rebuilds only the affected neighbourhood (the departing node's
// incident edges, the α of edges whose endpoint degrees changed). Task
// pools are dist.SendState values, and the per-edge send rule is
// core.Forward — the same code path as the centralized and distributed
// executions, so on a static topology with no events the engine is
// bit-for-bit identical to core.FlowImitation over FOS with PolicyLIFO.
//
// An Engine is not safe for concurrent use; the HTTP server serializes
// access. The exceptions are the internally locked read surfaces —
// Samples, LastSample and Trace (ring buffers) plus the registry's
// instruments (atomics) — which may be read while another goroutine holds
// the serialization domain and steps.
type Engine struct {
	topo *graph.Dynamic
	pool *workerPool

	// Per node slot.
	s  []int64
	x  []float64
	st []*dist.SendState

	// Per edge slot.
	alpha  []float64
	fA     []float64
	fD     []int64
	net    []float64
	gap    []float64
	outbox []outMsg

	wmax  int64
	round int64

	queue eventQueue
	seq   int64

	// expectedReal is the conserved non-dummy task weight: initial load
	// plus arrivals minus completions. retiredDummies preserves the
	// dummy-creation counters of departed nodes (plus any dummy tokens
	// imported with the initial distribution, e.g. a handoff from a
	// previous execution via ExportTasks).
	expectedReal   int64
	retiredDummies int64
	eventsApplied  int64

	// The incremental conservation ledger: ledReal and ledTotal aggregate
	// the dist.SendState weight counters over the active pools, ledCreated
	// is the cumulative dummy weight ever drawn (departed nodes and
	// imported dummies included). Every event application folds the pool
	// counter deltas of the pools it touched into the ledger in O(1), and
	// each balancing round folds the dummy draws its send phase
	// accumulated in roundDummies; checkLedger validates the conservation
	// invariants against expectedReal in O(1), with AuditFull as the
	// recount fallback that turns a mismatch into a precise diagnostic.
	ledReal      int64
	ledTotal     int64
	ledCreated   int64
	roundDummies atomic.Int64

	// speedSum is the total speed of the active nodes, maintained across
	// joins and leaves so the metrics path needs no per-node speed scan.
	speedSum int64

	// deepAudit runs AuditFull after every applied event; fullAudits
	// counts recounts (the default event path performs none).
	deepAudit  bool
	fullAudits int64

	ring        *Ring
	sampleEvery int
	closed      bool

	// instr holds the metrics-registry handles (pre-registered in New);
	// flight is the bounded recorder of applied events + round summaries.
	instr    *instruments
	flight   *obs.FlightRecorder[TraceRecord]
	traceSeq int64

	// poisoned latches the first ErrInconsistent Step failure so every
	// later Step fails with it too — the "must not be stepped further"
	// contract is enforced by the engine, not left to each driver.
	poisoned error

	// gate is the activity-gate state: the hot-frontier worklists that let
	// runRound skip provably-asleep regions. Never serialized — every
	// construction path reconstructs it conservatively (see initGate).
	gate gate

	// wal, when set (AttachWAL/Config.WAL), receives every applied event
	// and round boundary before Step returns; walSnapEvery is the snapshot
	// cadence in rounds. A sink failure poisons the engine with ErrWAL.
	wal          WALSink
	walSnapEvery int
	// walScratch stages the wire form of the event being logged so the
	// sink call does not force a heap allocation per event (see logEvent).
	walScratch wire.Event

	// Cached per-phase shard callbacks: bound once in initGate so the
	// round phases hand pool.forEach a preallocated func value instead of
	// allocating a closure every round (enforced by lblint's hotalloc
	// gate). roundWmaxF is the decide threshold of the round in flight,
	// published before the decide phase fans out.
	roundWmaxF     float64
	decideFullFn   func(int)
	deliverFullFn  func(int)
	decideGatedFn  func(int)
	deliverGatedFn func(int)
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("engine: closed")

// ErrInconsistent marks Step errors that mean the engine state itself is
// corrupt (a ledger mismatch or failed deep audit), as opposed to a
// rejected invalid event. Drivers must stop stepping an engine after an
// error matching errors.Is(err, ErrInconsistent); after a rejected event
// the engine stays fully usable.
var ErrInconsistent = errors.New("engine state inconsistent")

// New builds a runtime from the initial topology, speeds and tasks and
// starts its worker pool. Call Close to release the pool.
func New(cfg Config) (*Engine, error) {
	g := cfg.Graph
	if g == nil {
		return nil, errors.New("engine: nil graph")
	}
	if err := cfg.Speeds.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Speeds) != g.N() {
		return nil, fmt.Errorf("engine: speeds length %d != n %d", len(cfg.Speeds), g.N())
	}
	tasks := cfg.Tasks
	if tasks == nil {
		tasks = make(load.TaskDist, g.N())
	}
	if len(tasks) != g.N() {
		return nil, fmt.Errorf("engine: task distribution length %d != n %d", len(tasks), g.N())
	}
	if err := tasks.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		// Worker-count default. Round phases are sharded race-free (single
		// writer per slot, forEach barriers), so results are bit-identical
		// for any worker count — parallelism is a throughput knob only.
		workers = runtime.GOMAXPROCS(0) //lb:statefree worker-count default; sharded phases are bit-identical for any worker count
	}
	window := cfg.MetricsWindow
	if window <= 0 {
		window = 1024
	}
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	flightWindow := cfg.FlightWindow
	if flightWindow <= 0 {
		flightWindow = 1024
	}
	e := &Engine{
		topo:        graph.NewDynamic(g),
		pool:        newWorkerPool(workers),
		s:           make([]int64, g.N()),
		x:           make([]float64, g.N()),
		st:          make([]*dist.SendState, g.N()),
		alpha:       make([]float64, g.M()),
		fA:          make([]float64, g.M()),
		fD:          make([]int64, g.M()),
		net:         make([]float64, g.M()),
		gap:         make([]float64, g.M()),
		outbox:      make([]outMsg, g.M()),
		wmax:        tasks.MaxWeight(),
		ring:        newRing(window),
		sampleEvery: sampleEvery,
		deepAudit:   cfg.DeepAudit,
		instr:       newInstruments(reg),
		flight:      obs.NewFlightRecorder[TraceRecord](flightWindow),
	}
	copy(e.s, cfg.Speeds)
	for _, sp := range cfg.Speeds {
		e.speedSum += sp
	}
	for i := 0; i < g.N(); i++ {
		e.st[i] = dist.NewSendState(tasks[i], 0)
		total, real := e.st[i].Counters()
		e.x[i] = float64(total)
		e.expectedReal += real
		e.ledTotal += total
		e.ledReal += real
	}
	// Dummy tokens in the initial distribution (a handoff from a previous
	// execution) count as already drawn from the infinite source.
	e.retiredDummies = e.ledTotal - e.ledReal
	e.ledCreated = e.retiredDummies
	alpha, err := continuous.DefaultAlphas(g, cfg.Speeds)
	if err != nil {
		e.pool.close()
		return nil, err
	}
	copy(e.alpha, alpha)
	e.initGate(cfg.Gate == GateOn)
	if cfg.WAL != nil {
		if err := e.AttachWAL(cfg.WAL, cfg.SnapshotEvery); err != nil {
			e.pool.close()
			return nil, err
		}
	}
	return e, nil
}

// Close releases the worker pool. The engine's state stays readable; Step
// and Schedule fail afterwards.
func (e *Engine) Close() {
	if !e.closed {
		e.closed = true
		e.pool.close()
	}
}

// Round returns the number of completed balancing rounds.
func (e *Engine) Round() int64 { return e.round }

// Wmax returns the current maximum task weight (it grows when heavier
// tasks arrive).
func (e *Engine) Wmax() int64 { return e.wmax }

// NumNodes returns the number of active nodes.
func (e *Engine) NumNodes() int { return e.topo.NumNodes() }

// NumEdges returns the number of active edges.
func (e *Engine) NumEdges() int { return e.topo.NumEdges() }

// RealTotal returns the conserved non-dummy task weight W.
func (e *Engine) RealTotal() int64 { return e.expectedReal }

// PendingEvents returns the number of scheduled, not yet applied events.
func (e *Engine) PendingEvents() int { return len(e.queue) }

// EventsApplied returns the number of events applied so far.
func (e *Engine) EventsApplied() int64 { return e.eventsApplied }

// Topology returns the mutable topology (read-only use).
func (e *Engine) Topology() *graph.Dynamic { return e.topo }

// DummiesCreated returns the cumulative dummy weight drawn from the
// infinite source, including by nodes that have since left and dummy
// tokens imported with the initial distribution. It reads the incremental
// ledger, so it is O(1).
func (e *Engine) DummiesCreated() int64 { return e.ledCreated }

// WithDeepAudit toggles deep-audit mode and returns the engine. With deep
// audit on, every applied event is followed by the stop-the-world
// AuditFull recount — the exhaustive O(n·W) diagnostic posture. With it
// off (the default), the event loop validates the incremental conservation
// ledger in O(1) once per event batch and only falls back to AuditFull
// when the ledger disagrees. lbserve exposes this as -audit.
func (e *Engine) WithDeepAudit(on bool) *Engine {
	e.deepAudit = on
	return e
}

// FullAudits returns how many times the full conservation recount
// (AuditFull) has run — in default mode, zero unless a caller invoked it
// or a ledger mismatch forced a diagnostic.
func (e *Engine) FullAudits() int64 { return e.fullAudits }

// Bound returns the Theorem 3 discrepancy bound 2·d·wmax + 2 for the
// current topology and task weights.
func (e *Engine) Bound() float64 {
	return float64(2*int64(e.topo.MaxDegree())*e.wmax + 2)
}

// Schedule enqueues an event. Events in the past fire before the next
// round. The event's tasks are not copied; the caller must not reuse them.
func (e *Engine) Schedule(ev Event) error {
	if e.closed {
		return ErrClosed
	}
	switch ev.Kind {
	case KindTaskArrival, KindTaskCompletion, KindNodeJoin, KindNodeLeave, KindEdgeChange:
	default:
		return fmt.Errorf("engine: unknown event kind %v", ev.Kind)
	}
	if ev.At < e.round {
		ev.At = e.round
	}
	heap.Push(&e.queue, queued{ev: ev, seq: e.seq})
	e.seq++
	return nil
}

// Step drains every event due at the current round as one batch, executes
// one balancing round, and (per SampleEvery) appends a metrics sample.
//
// Each event in the batch is applied atomically — a rejected event (bad
// node, invalid topology change) mutates nothing — and conservation is
// validated against the incremental ledger in O(1) once at the batch
// boundary, so a burst of k arrivals costs O(k) before balancing rather
// than k full pool recounts. With deep audit enabled (Config.DeepAudit,
// WithDeepAudit), AuditFull runs after every applied event instead.
//
// Partial-progress contract: if an event mid-batch fails, the events
// applied before it in the same batch STAY applied, the remaining due
// events stay queued, and neither the balancing round nor the round
// counter advances — a subsequent Step picks up the rest of the batch.
// The applied prefix is still ledger-validated, so a conservation
// violation it caused surfaces as ErrInconsistent on this Step rather
// than being misattributed to a later batch.
// A metrics sample is always emitted on the error path so streaming
// consumers (/metrics) observe the state the engine stopped in instead of
// freezing at the pre-error round. A validation error from a rejected
// event leaves the engine fully usable; an error matching
// errors.Is(err, ErrInconsistent) (ledger mismatch, failed deep audit)
// means the engine state is corrupt: the failure is latched, and every
// subsequent Step returns it without stepping — read-only inspection
// (Snapshot, metrics, AuditFull) stays available for the postmortem.
func (e *Engine) Step() error {
	if e.closed {
		return ErrClosed
	}
	if e.poisoned != nil {
		return e.poisoned
	}
	start := nowMetric()
	applied := 0
	var stepErr error
	for len(e.queue) > 0 && e.queue[0].ev.At <= e.round {
		ev := heap.Pop(&e.queue).(queued).ev
		if err := e.applyEvent(ev); err != nil {
			e.instr.eventsRejected.Inc()
			stepErr = fmt.Errorf("engine: round %d %s event: %w", e.round, ev.Kind, err)
			break
		}
		e.eventsApplied++
		applied++
		e.instr.eventsApplied[ev.Kind].Inc()
		e.recordEvent(ev)
		if e.wal != nil {
			// Log the applied event before anything else can fail: the WAL
			// must hold every event the state absorbed, in apply order.
			// Rejected events are never logged — replay applies the log
			// unconditionally.
			if err := e.logEvent(ev); err != nil {
				stepErr = err
				break
			}
		}
		if e.deepAudit {
			if err := e.AuditFull(); err != nil {
				stepErr = fmt.Errorf("engine: round %d after %s event: %w: %w", e.round, ev.Kind, ErrInconsistent, err)
				break
			}
		}
	}
	if applied > 0 {
		e.instr.stage["event_apply"].ObserveDuration(sinceMetric(start))
	}
	if applied > 0 && !errors.Is(stepErr, ErrInconsistent) {
		// Validate even when a rejection stopped the batch early: the
		// applied prefix stays applied, so it must be ledger-checked now —
		// deferring to the next batch would let a violation hide behind a
		// "fully usable" rejection error and then be misattributed.
		tLedger := nowMetric()
		if err := e.checkLedger(); err != nil {
			ledErr := fmt.Errorf("engine: round %d after %d-event batch: %w: %w", e.round, applied, ErrInconsistent, err)
			if stepErr != nil {
				ledErr = fmt.Errorf("%w (batch stopped early by: %v)", ledErr, stepErr)
			}
			stepErr = ledErr
		}
		e.instr.stage["ledger"].ObserveDuration(sinceMetric(tLedger))
	}
	if stepErr != nil {
		if errors.Is(stepErr, ErrInconsistent) || errors.Is(stepErr, ErrWAL) {
			e.poisoned = stepErr
		}
		e.sample(sinceMetric(start))
		e.instr.stepSeconds.ObserveDuration(sinceMetric(start))
		return stepErr
	}
	e.runRound()
	if e.wal != nil {
		// The round marker commits this step's event batch (and any prefix
		// a rejection left uncommitted in an earlier step); it must reach
		// the log before Step returns so a crash never loses a completed
		// round beyond the fsync policy's window.
		if err := e.walCommit(); err != nil {
			e.poisoned = err
			e.sample(sinceMetric(start))
			e.instr.stepSeconds.ObserveDuration(sinceMetric(start))
			return err
		}
	}
	if e.round%int64(e.sampleEvery) == 0 {
		tSample := nowMetric()
		e.sample(sinceMetric(start))
		e.instr.stage["sample"].ObserveDuration(sinceMetric(tSample))
	}
	e.instr.stepSeconds.ObserveDuration(sinceMetric(start))
	return nil
}

// Run executes the given number of rounds.
func (e *Engine) Run(rounds int) error {
	for t := 0; t < rounds; t++ {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilBound steps until the event queue is drained and the max-avg
// discrepancy re-enters the Theorem 3 bound, executing at most maxRounds
// rounds. It returns the number of rounds executed and whether the bound
// was reached.
func (e *Engine) RunUntilBound(maxRounds int) (int, bool, error) {
	for t := 0; t < maxRounds; t++ {
		if len(e.queue) == 0 && e.MaxAvg() <= e.Bound() {
			return t, true, nil
		}
		if err := e.Step(); err != nil {
			return t, false, err
		}
	}
	return maxRounds, len(e.queue) == 0 && e.MaxAvg() <= e.Bound(), nil
}

// runRoundFull executes one synchronous balancing round over the whole
// current topology: continuous FOS flows and the residual-gap snapshot
// (serial, O(m)), then sharded per-node send decisions and deliveries,
// then the continuous load update. It is the ungated path; runRound (in
// gate.go) dispatches between it and the hot-frontier round.
//
//lb:hotpath
func (e *Engine) runRoundFull() {
	tFlows := nowMetric()
	edgeSlots := e.topo.EdgeSlots()
	// Phase 1: continuous flows, cumulative f^A, and the per-edge residual
	// snapshot. The snapshot is what makes the decide phase race-free:
	// only the sending endpoint of an edge writes f^D, and nobody reads it
	// until the next round.
	for id := 0; id < edgeSlots; id++ {
		e.outbox[id].tasks = nil
		u, v := e.topo.EdgeEndpoints(id)
		if u < 0 {
			e.net[id] = 0
			continue
		}
		yuv := e.alpha[id] / float64(e.s[u]) * e.x[u]
		yvu := e.alpha[id] / float64(e.s[v]) * e.x[v]
		n := yuv - yvu
		e.net[id] = n
		e.fA[id] += n
		e.gap[id] = e.fA[id] - float64(e.fD[id])
	}
	// Phase 2: per-node send decisions, sharded over the worker pool. Each
	// node touches only its own pool, the f^D of edges it sends on (single
	// writer), and its own outbox slots.
	tDecide := nowMetric()
	nodeSlots := e.topo.NodeSlots()
	e.roundWmaxF = float64(e.wmax) - core.RoundingEps
	e.pool.forEach(nodeSlots, e.decideFullFn)
	// Fold this round's dummy draws into the ledger (serial: forEach is a
	// completion barrier).
	if d := e.roundDummies.Swap(0); d != 0 {
		e.ledTotal += d
		e.ledCreated += d
	}
	// Phase 3: deliveries, sharded by receiver. The outbox is read-only in
	// this phase (slots are reset at the start of the next round), so both
	// endpoints may inspect an edge's slot concurrently; only the receiver
	// appends, and only to its own pool.
	tDeliver := nowMetric()
	e.pool.forEach(nodeSlots, e.deliverFullFn)
	// Phase 4: advance the continuous replica.
	tUpdate := nowMetric()
	for id := 0; id < edgeSlots; id++ {
		if n := e.net[id]; n != 0 {
			u, v := e.topo.EdgeEndpoints(id)
			e.x[u] -= n
			e.x[v] += n
		}
	}
	e.round++
	now := nowMetric()
	e.instr.stage["round_flows"].ObserveDuration(tDecide.Sub(tFlows))
	e.instr.stage["round_decide"].ObserveDuration(tDeliver.Sub(tDecide))
	e.instr.stage["round_deliver"].ObserveDuration(tUpdate.Sub(tDeliver))
	e.instr.stage["round_update"].ObserveDuration(now.Sub(tUpdate))
	e.instr.roundsTotal.Inc()
}

// decideFullNode is runRoundFull's phase-2 body for one node slot: node
// i's send decisions against this round's residual snapshot. Bound once
// as e.decideFullFn (initGate) so the fan-out allocates no closure per
// round.
//
//lb:hotpath
func (e *Engine) decideFullNode(i int) {
	if !e.topo.Active(i) {
		return
	}
	st := e.st[i]
	st.BeginRound()
	dummies0 := st.Dummies()
	for _, a := range e.topo.Neighbors(i) {
		g := e.gap[a.Edge]
		if a.Out < 0 {
			g = -g
		}
		if g < e.roundWmaxF {
			continue
		}
		var batch []load.Task
		sent := core.Forward(g, e.wmax, st.Take, func(q load.Task) { batch = append(batch, q) })
		e.fD[a.Edge] += int64(a.Out) * sent
		e.outbox[a.Edge] = outMsg{to: a.To, tasks: batch}
	}
	// Dummy draws are the only way a round changes total pool weight
	// (task forwards conserve it: every batch written here is consumed by
	// exactly its receiver in the delivery phase). Nodes that drew none —
	// the steady path — pay nothing.
	if d := st.Dummies() - dummies0; d != 0 {
		e.roundDummies.Add(d)
	}
}

// deliverFullNode is runRoundFull's phase-3 body for one node slot:
// consume the batches addressed to node i. Bound once as e.deliverFullFn.
//
//lb:hotpath
func (e *Engine) deliverFullNode(i int) {
	if !e.topo.Active(i) {
		return
	}
	for _, a := range e.topo.Neighbors(i) {
		m := &e.outbox[a.Edge]
		if m.tasks != nil && m.to == i {
			e.st[i].AddTasks(m.tasks)
		}
	}
}

// applyEvent dispatches one event. A returned error means the event was
// invalid (or the engine state is inconsistent); the engine should not be
// stepped further after an error.
func (e *Engine) applyEvent(ev Event) error {
	switch ev.Kind {
	case KindTaskArrival:
		return e.applyArrival(ev)
	case KindTaskCompletion:
		return e.applyCompletion(ev)
	case KindNodeJoin:
		_, err := e.applyJoin(ev)
		return err
	case KindNodeLeave:
		return e.applyLeave(ev)
	case KindEdgeChange:
		return e.applyEdgeChange(ev)
	default:
		return fmt.Errorf("unknown event kind %v", ev.Kind)
	}
}

// mutateLedgered runs mutate against node i's pool and folds the pool's
// counter deltas into the conservation ledger. Every event-path pool
// mutation goes through here so the fold cannot be forgotten. It returns
// the non-dummy weight delta (negative for removals).
func (e *Engine) mutateLedgered(i int, mutate func(st *dist.SendState)) (dReal int64) {
	st := e.st[i]
	total0, real0 := st.Counters()
	mutate(st)
	total, real := st.Counters()
	e.ledTotal += total - total0
	e.ledReal += real - real0
	return real - real0
}

// addTasksLedgered appends a batch to node i's pool and folds the pool's
// counter deltas into the conservation ledger — the one way event
// application may grow a pool.
func (e *Engine) addTasksLedgered(i int, batch []load.Task) {
	e.mutateLedgered(i, func(st *dist.SendState) { st.AddTasks(batch) })
}

func (e *Engine) applyArrival(ev Event) error {
	if !e.topo.Active(ev.Node) {
		return fmt.Errorf("arrival at inactive node %d", ev.Node)
	}
	// Validate the whole batch before mutating anything (wmax included),
	// so a rejected arrival is atomic.
	var w, maxW int64
	for _, q := range ev.Tasks {
		if q.Weight < 1 {
			return fmt.Errorf("arriving task has weight %d", q.Weight)
		}
		if q.Dummy {
			return errors.New("dummy tasks cannot arrive")
		}
		w += q.Weight
		if q.Weight > maxW {
			maxW = q.Weight
		}
	}
	if maxW > e.wmax {
		e.wmax = maxW
	}
	e.addTasksLedgered(ev.Node, ev.Tasks)
	e.x[ev.Node] += float64(w)
	e.expectedReal += w
	e.gateWakeNode(ev.Node)
	return nil
}

func (e *Engine) applyCompletion(ev Event) error {
	if !e.topo.Active(ev.Node) {
		return fmt.Errorf("completion at inactive node %d", ev.Node)
	}
	if ev.Count < 0 {
		return fmt.Errorf("negative completion count %d", ev.Count)
	}
	// RemoveNewestReal touches only non-dummy tasks, so the ledger's real
	// delta is exactly the weight completed.
	w := -e.mutateLedgered(ev.Node, func(st *dist.SendState) { st.RemoveNewestReal(ev.Count) })
	e.x[ev.Node] -= float64(w)
	e.expectedReal -= w
	e.gateWakeNode(ev.Node)
	return nil
}

// applyJoin activates a new node and returns its slot.
func (e *Engine) applyJoin(ev Event) (int, error) {
	speed := ev.Speed
	if speed == 0 {
		speed = 1
	}
	if speed < 1 {
		return 0, fmt.Errorf("joining node has speed %d", speed)
	}
	// Validate fully before mutating anything, so a rejected join leaves
	// no half-wired node behind.
	seen := make(map[int]bool, len(ev.Peers))
	for _, p := range ev.Peers {
		if !e.topo.Active(p) {
			return 0, fmt.Errorf("join peer %d is inactive", p)
		}
		if seen[p] {
			return 0, fmt.Errorf("duplicate join peer %d", p)
		}
		seen[p] = true
	}
	slot := e.topo.AddNode()
	e.growNode(slot)
	e.s[slot] = speed
	e.speedSum += speed
	e.x[slot] = 0
	e.st[slot] = dist.NewSendState(nil, 0)
	for _, p := range ev.Peers {
		id, err := e.topo.AddEdge(slot, p)
		if err != nil {
			return slot, err
		}
		e.growEdge(id)
		e.clearEdge(id)
	}
	e.refreshAlphas(append([]int{slot}, ev.Peers...))
	return slot, nil
}

func (e *Engine) applyLeave(ev Event) error {
	node := ev.Node
	if !e.topo.Active(node) {
		return fmt.Errorf("leave of inactive node %d", node)
	}
	if e.topo.NumNodes() == 1 {
		return errors.New("last node cannot leave")
	}
	neigh := append([]graph.Arc(nil), e.topo.Neighbors(node)...)
	// Drain zeroes the pool's weight counters (the cumulative dummy-draw
	// counter survives for retirement below); the ledger gives the weight
	// back as the redistribution buckets land on the recipients, so a
	// dropped bucket shows up as a ledger deficit at the batch boundary.
	var tasks []load.Task
	e.mutateLedgered(node, func(st *dist.SendState) { tasks = st.Drain() })
	e.retiredDummies += e.st[node].Dummies()
	removed, err := e.topo.RemoveNode(node)
	if err != nil {
		return err
	}
	for _, id := range removed {
		e.clearEdge(id)
		e.alpha[id] = 0
	}
	recipients := make([]int, 0, len(neigh))
	for _, a := range neigh {
		recipients = append(recipients, a.To)
	}
	if len(recipients) == 0 {
		// An isolated node leaving hands its load to the lowest active
		// slot so nothing is lost.
		recipients = e.topo.ActiveNodes()[:1]
	}
	buckets := make([][]load.Task, len(recipients))
	for k, q := range tasks {
		r := k % len(recipients)
		buckets[r] = append(buckets[r], q)
	}
	share := e.x[node] / float64(len(recipients))
	for r, b := range buckets {
		if len(b) > 0 {
			e.addTasksLedgered(recipients[r], b)
		}
		e.x[recipients[r]] += share
	}
	e.x[node] = 0
	e.st[node] = nil
	e.speedSum -= e.s[node]
	e.refreshAlphas(recipients)
	return nil
}

func (e *Engine) applyEdgeChange(ev Event) error {
	// Validate the whole change against the current topology before
	// mutating anything, so a rejected event is atomic. Removals run
	// first, so an add may legitimately re-create a pair removed by the
	// same event.
	norm := func(uv [2]int) [2]int {
		if uv[0] > uv[1] {
			uv[0], uv[1] = uv[1], uv[0]
		}
		return uv
	}
	removing := make(map[[2]int]bool, len(ev.RemoveEdges))
	for _, uv := range ev.RemoveEdges {
		if !e.topo.HasEdge(uv[0], uv[1]) {
			return fmt.Errorf("remove of missing edge (%d,%d)", uv[0], uv[1])
		}
		key := norm(uv)
		if removing[key] {
			return fmt.Errorf("duplicate removal of edge (%d,%d)", uv[0], uv[1])
		}
		removing[key] = true
	}
	adding := make(map[[2]int]bool, len(ev.AddEdges))
	for _, uv := range ev.AddEdges {
		if !e.topo.Active(uv[0]) || !e.topo.Active(uv[1]) {
			return fmt.Errorf("add of edge (%d,%d) with inactive endpoint", uv[0], uv[1])
		}
		if uv[0] == uv[1] {
			return fmt.Errorf("add of self loop (%d,%d)", uv[0], uv[1])
		}
		key := norm(uv)
		if adding[key] {
			return fmt.Errorf("duplicate addition of edge (%d,%d)", uv[0], uv[1])
		}
		if e.topo.HasEdge(uv[0], uv[1]) && !removing[key] {
			return fmt.Errorf("add of existing edge (%d,%d)", uv[0], uv[1])
		}
		adding[key] = true
	}
	touched := make([]int, 0, 2*(len(ev.AddEdges)+len(ev.RemoveEdges)))
	for _, uv := range ev.RemoveEdges {
		id, err := e.topo.RemoveEdge(uv[0], uv[1])
		if err != nil {
			return err
		}
		e.clearEdge(id)
		e.alpha[id] = 0
		touched = append(touched, uv[0], uv[1])
	}
	for _, uv := range ev.AddEdges {
		id, err := e.topo.AddEdge(uv[0], uv[1])
		if err != nil {
			return err
		}
		e.growEdge(id)
		e.clearEdge(id)
		touched = append(touched, uv[0], uv[1])
	}
	e.refreshAlphas(touched)
	return nil
}

// refreshAlphas recomputes the diffusion parameter of every edge incident
// to the given nodes — the affected neighbourhood of a topology change
// (α depends only on the endpoints' speeds and degrees). Every refreshed
// edge is woken: its flow inputs changed, and all topology-change paths
// (join, leave redistribution, edge change) hand exactly the affected
// neighbourhood here, so this is the gate's single churn wake point.
func (e *Engine) refreshAlphas(nodes []int) {
	for _, i := range nodes {
		if !e.topo.Active(i) {
			continue
		}
		for _, a := range e.topo.Neighbors(i) {
			u, v := e.topo.EdgeEndpoints(a.Edge)
			e.alpha[a.Edge] = continuous.EdgeAlpha(e.s[u], e.s[v], e.topo.Degree(u), e.topo.Degree(v))
			e.gateWakeEdge(a.Edge, u, v)
		}
	}
}

// growNode extends the per-node arrays when AddNode allocated a new slot.
func (e *Engine) growNode(slot int) {
	if slot == len(e.s) {
		e.s = append(e.s, 0)
		e.x = append(e.x, 0)
		e.st = append(e.st, nil)
		e.growGateNode(slot)
	}
}

// growEdge extends the per-edge arrays when AddEdge allocated a new slot.
func (e *Engine) growEdge(id int) {
	if id == len(e.alpha) {
		e.alpha = append(e.alpha, 0)
		e.fA = append(e.fA, 0)
		e.fD = append(e.fD, 0)
		e.net = append(e.net, 0)
		e.gap = append(e.gap, 0)
		e.outbox = append(e.outbox, outMsg{})
		e.growGateEdge(id)
	}
}

// clearEdge zeroes the flow state of an edge slot (fresh or freed). The
// residual |f^A−f^D| < wmax of a removed edge is dropped; task conservation
// is unaffected because tasks move only in whole units.
func (e *Engine) clearEdge(id int) {
	e.fA[id] = 0
	e.fD[id] = 0
	e.net[id] = 0
	e.gap[id] = 0
	e.outbox[id] = outMsg{}
}

// checkLedger validates the O(1) conservation invariants the incremental
// ledger maintains: the aggregated non-dummy pool weight must equal the
// event accounting (initial load plus arrivals minus completions), and the
// aggregated total weight must exceed it by exactly the dummy weight ever
// drawn. On a mismatch it runs AuditFull so the error pinpoints the node
// or counter that drifted.
func (e *Engine) checkLedger() error {
	if e.ledReal == e.expectedReal && e.ledTotal == e.ledReal+e.ledCreated {
		return nil
	}
	// The fast invariants failed, so the recount cannot pass: either a
	// pool disagrees with the ledger (drift) or the pools agree and the
	// aggregate itself violates conservation — AuditFull names which.
	return e.AuditFull()
}

// AuditFull is the stop-the-world conservation audit: it recounts every
// task in every active pool and verifies that (1) each pool's incremental
// weight counters match its contents, (2) the engine's conservation ledger
// matches the pool aggregates, (3) total non-dummy weight equals the
// initial load plus arrivals minus completions, and (4) total weight
// equals real weight plus every dummy token ever drawn.
//
// The default event path never calls it — Step validates the incremental
// ledger in O(1) per event batch and falls back to AuditFull only on a
// mismatch, to produce a precise diagnostic. Deep-audit mode
// (Config.DeepAudit, WithDeepAudit, lbserve -audit) restores the recount
// after every applied event; tests invoke it at quiescence.
func (e *Engine) AuditFull() error {
	e.fullAudits++
	var total, real int64
	created := e.retiredDummies
	for i := 0; i < e.topo.NodeSlots(); i++ {
		if !e.topo.Active(i) {
			continue
		}
		st := e.st[i]
		var t, r int64
		for _, q := range st.Tasks() {
			t += q.Weight
			if !q.Dummy {
				r += q.Weight
			}
		}
		if t != st.TotalWeight() || r != st.RealWeight() {
			return fmt.Errorf("node %d: pool holds total=%d real=%d but counters say total=%d real=%d",
				i, t, r, st.TotalWeight(), st.RealWeight())
		}
		total += t
		real += r
		created += st.Dummies()
	}
	if total != e.ledTotal || real != e.ledReal || created != e.ledCreated {
		return fmt.Errorf("ledger drift: pools hold total=%d real=%d created=%d but ledger says total=%d real=%d created=%d",
			total, real, created, e.ledTotal, e.ledReal, e.ledCreated)
	}
	if real != e.expectedReal {
		return fmt.Errorf("real load %d != expected %d (conservation violated)", real, e.expectedReal)
	}
	if total != e.expectedReal+created {
		return fmt.Errorf("total load %d != real %d + dummies %d", total, e.expectedReal, created)
	}
	return nil
}

// CheckConservation is the historical name of the full recount.
//
// Deprecated: use AuditFull (same behaviour); the per-event invocation it
// used to imply is now the opt-in deep-audit mode.
func (e *Engine) CheckConservation() error { return e.AuditFull() }

// MaxAvg returns the current max-avg discrepancy of the real load over the
// active nodes — the Theorem 3 quantity.
func (e *Engine) MaxAvg() float64 {
	maxAvg, _, _ := e.discrepancies()
	return maxAvg
}

// discrepancies computes max-avg, max-min and the quadratic potential of
// the real (dummy-eliminated) load over the active topology. The average
// reads the maintained speedSum and the ledger, so the only scan is the
// per-node RealWeight pass itself.
func (e *Engine) discrepancies() (maxAvg, maxMin, potential float64) {
	if e.speedSum == 0 {
		return 0, 0, 0
	}
	ratio := float64(e.expectedReal) / float64(e.speedSum)
	hi, lo := math.Inf(-1), math.Inf(1)
	for i := 0; i < e.topo.NodeSlots(); i++ {
		if !e.topo.Active(i) {
			continue
		}
		real := float64(e.st[i].RealWeight())
		m := real / float64(e.s[i])
		hi = math.Max(hi, m)
		lo = math.Min(lo, m)
		dev := real - float64(e.s[i])*ratio
		potential += dev * dev
	}
	return hi - ratio, hi - lo, potential
}

// sample appends one metrics sample to the ring, refreshes the registry
// gauges, and appends a round summary to the flight recorder.
func (e *Engine) sample(elapsed time.Duration) {
	maxAvg, maxMin, potential := e.discrepancies()
	s := Sample{
		Round:     e.round,
		Nodes:     e.topo.NumNodes(),
		Edges:     e.topo.NumEdges(),
		MaxAvg:    maxAvg,
		MaxMin:    maxMin,
		Potential: potential,
		Dummies:   e.DummiesCreated(),
		RealTotal: e.expectedReal,
		Events:    e.eventsApplied,
		StepNanos: elapsed.Nanoseconds(),
		HotNodes:  e.HotNodes(),
		HotEdges:  e.HotEdges(),
	}
	e.ring.append(s)
	e.instr.publish(e, maxAvg, maxMin, potential)
	e.recordRound(s)
}

// Samples returns up to max metrics samples in chronological order (all
// buffered samples when max <= 0). The sample ring is internally locked,
// so Samples and LastSample are safe to call concurrently with a Step
// running under the server mutex — they are the engine's only
// lock-free-read surface (see Ring's concurrency contract).
func (e *Engine) Samples(max int) []Sample { return e.ring.Samples(max) }

// LastSample returns the most recent metrics sample, if any. Safe to call
// concurrently with Step; see Samples.
func (e *Engine) LastSample() (Sample, bool) { return e.ring.Last() }

// Snapshot is a point-in-time summary of the runtime, JSON-friendly for
// the lbserve daemon.
type Snapshot struct {
	Round     int64 `json:"round"`
	Nodes     int   `json:"nodes"`
	Edges     int   `json:"edges"`
	MaxDegree int   `json:"max_degree"`
	Wmax      int64 `json:"wmax"`
	RealTotal int64 `json:"real_total"`
	Dummies   int64 `json:"dummies"`
	Pending   int   `json:"pending_events"`
	Events    int64 `json:"events_applied"`
	// FullAudits counts stop-the-world conservation recounts; in default
	// (ledger) mode it stays 0 unless a mismatch forced a diagnostic, so
	// load harnesses assert on it to prove a run never tripped the ledger.
	FullAudits int64   `json:"full_audits"`
	MaxAvg     float64 `json:"max_avg"`
	MaxMin     float64 `json:"max_min"`
	Bound      float64 `json:"bound"`
	// NodeIDs lists the active node slots; Loads and RealLoads align with
	// it. Only populated when requested.
	NodeIDs   []int       `json:"node_ids,omitempty"`
	Loads     load.Vector `json:"loads,omitempty"`
	RealLoads load.Vector `json:"real_loads,omitempty"`
}

// Snapshot summarizes the current state; includeLoads adds the per-node
// load vectors.
func (e *Engine) Snapshot(includeLoads bool) Snapshot {
	maxAvg, maxMin, _ := e.discrepancies()
	snap := Snapshot{
		Round:      e.round,
		Nodes:      e.topo.NumNodes(),
		Edges:      e.topo.NumEdges(),
		MaxDegree:  e.topo.MaxDegree(),
		Wmax:       e.wmax,
		RealTotal:  e.expectedReal,
		Dummies:    e.DummiesCreated(),
		Pending:    len(e.queue),
		Events:     e.eventsApplied,
		FullAudits: e.fullAudits,
		MaxAvg:     maxAvg,
		MaxMin:     maxMin,
		Bound:      e.Bound(),
	}
	if includeLoads {
		snap.NodeIDs = e.topo.ActiveNodes()
		snap.Loads = make(load.Vector, len(snap.NodeIDs))
		snap.RealLoads = make(load.Vector, len(snap.NodeIDs))
		for k, i := range snap.NodeIDs {
			snap.Loads[k] = e.st[i].TotalWeight()
			snap.RealLoads[k] = e.st[i].RealWeight()
		}
	}
	return snap
}

// ExportTasks returns the current task distribution compacted to the
// active nodes (in ActiveNodes order), together with the matching graph
// snapshot — the handoff point to the batch executions: the result can
// seed core.FlowImitation or a dist.Cluster to continue the run
// centralized or distributed.
func (e *Engine) ExportTasks() (*graph.Graph, load.Speeds, load.TaskDist, error) {
	g, slots, err := e.topo.Snapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	s := make(load.Speeds, len(slots))
	d := make(load.TaskDist, len(slots))
	for k, slot := range slots {
		s[k] = e.s[slot]
		d[k] = append([]load.Task(nil), e.st[slot].Tasks()...)
	}
	return g, s, d, nil
}
