package engine

import "time"

// nowMetric and sinceMetric are the engine's only ambient wall-clock reads.
// Every stage/step timing observation flows through this chokepoint, so
// lblint's nondet check can verify at a glance that the wall clock never
// feeds balancing state: the values below are consumed exclusively by
// ObserveDuration histograms and the rate sampler, all of which sit outside
// the replayed, hash-checked state. Code that needs time for a decision
// must not call these — it must take an injected clock so replay can
// substitute it.

// nowMetric returns the wall clock for stage-timing observations.
//
//lb:statefree metrics-only wall clock: feeds duration histograms and the rate sampler, never balancing state
func nowMetric() time.Time { return time.Now() }

// sinceMetric returns the elapsed wall time for stage-timing observations.
//
//lb:statefree metrics-only wall clock: feeds duration histograms and the rate sampler, never balancing state
func sinceMetric(t0 time.Time) time.Duration { return time.Since(t0) }
