package engine

import (
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/wal"
)

// walPair builds two identical engines on a 4x4 torus — one logging to a
// fresh WAL in dir, one bare as the uninterrupted reference — plus the
// writer so the test can control its lifecycle.
func walPair(t *testing.T, dir string, opts wal.Options, snapshotEvery int) (logged, bare *Engine, w *wal.Writer) {
	t.Helper()
	opts.Dir = dir
	w, rec, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	if rec.HasState() {
		t.Fatalf("fresh dir already holds a log")
	}
	build := func(sink WALSink) *Engine {
		g, err := graph.Torus(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		speeds := make(load.Speeds, g.N())
		for i := range speeds {
			speeds[i] = 1 + int64(i%2)
		}
		tasks, err := load.NewTokens([]int64{30, 0, 12, 5, 0, 9, 0, 0, 21, 3, 0, 7, 0, 16, 2, 0})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Graph: g, Speeds: speeds, Tasks: tasks, Workers: 2, SnapshotEvery: snapshotEvery}
		if sink != nil {
			cfg.WAL = sink
		}
		return mustEngine(t, cfg)
	}
	return build(w), build(nil), w
}

// TestRecoveryIdentityAtEveryCut is the headline property: cut the log at
// ANY batch boundary, recover, and the state hash equals the uninterrupted
// run's hash at that round. It also pins that logging itself never perturbs
// execution (WAL-on and WAL-off engines agree round by round).
func TestRecoveryIdentityAtEveryCut(t *testing.T) {
	dir := t.TempDir()
	const rounds = 30
	logged, bare, w := walPair(t, dir, wal.Options{
		Sync:            wal.SyncNever,
		SegmentBytes:    2048, // force rotations mid-history
		RetainSnapshots: 1000, // keep everything: the sweep needs the oldest
	}, 7)

	hashes := map[int64][sha256.Size]byte{logged.Round(): logged.StateHash()}
	scn := scenarioFor(t, 16)
	for r := 0; r < rounds; r++ {
		scheduleScenario(t, scn, 3, logged, bare)
		errL, errB := logged.Step(), bare.Step()
		if (errL == nil) != (errB == nil) {
			t.Fatalf("round %d: WAL changed execution: %v vs %v", r, errL, errB)
		}
		if logged.StateHash() != bare.StateHash() {
			t.Fatalf("round %d: logging perturbed the engine state", r)
		}
		hashes[logged.Round()] = logged.StateHash()
	}
	finalRound := logged.Round()
	logged.Close()
	bare.Close()
	if err := w.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	for _, from := range []struct {
		name    string
		recover func(string) (*wal.Recovery, error)
	}{
		{"newest", wal.Recover},
		{"oldest", wal.RecoverOldest},
	} {
		t.Run(from.name, func(t *testing.T) {
			rec, err := from.recover(dir)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rec.Corruption != nil || rec.TailEvents != 0 {
				t.Fatalf("clean shutdown reported damage: %+v", rec)
			}
			if rec.LastRound != finalRound {
				t.Fatalf("log tip at round %d, engine finished at %d", rec.LastRound, finalRound)
			}
			// Every cut point: replay the first k committed batches only.
			for cut := 0; cut <= len(rec.Batches); cut++ {
				sub := *rec
				sub.Batches = rec.Batches[:cut]
				e, err := Restore(&sub, Config{Workers: 1})
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				want, ok := hashes[e.Round()]
				if !ok {
					t.Fatalf("cut %d: recovered to round %d the live run never visited", cut, e.Round())
				}
				if e.StateHash() != want {
					t.Fatalf("cut %d (round %d): recovered state differs from the uninterrupted run", cut, e.Round())
				}
				e.Close()
			}
		})
	}
}

// copyDir clones the WAL directory so destructive crash injection can run
// against a scratch copy per offset.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		b, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoveryCrashInjectionSweep simulates a crash at EVERY byte offset of
// the live segment (and a stride of bit flips): recovery must either refuse
// loudly or land exactly on a state the uninterrupted run passed through —
// never a third thing.
func TestRecoveryCrashInjectionSweep(t *testing.T) {
	dir := t.TempDir()
	logged, bare, w := walPair(t, dir, wal.Options{Sync: wal.SyncNever, RetainSnapshots: 1000}, 4)

	hashes := map[int64][sha256.Size]byte{logged.Round(): logged.StateHash()}
	scn := scenarioFor(t, 16)
	for r := 0; r < 10; r++ {
		scheduleScenario(t, scn, 2, logged, bare)
		if err := logged.Step(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := bare.Step(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		hashes[logged.Round()] = logged.StateHash()
	}
	logged.Close()
	bare.Close()
	if err := w.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Base(segs[0])

	// verify recovers a mutated directory and checks the recovered state is
	// one the live run actually passed through. Returns whether recovery
	// succeeded with state.
	verify := func(t *testing.T, scratch, what string) bool {
		rec, err := wal.Recover(scratch)
		if err != nil {
			return false // refused loudly — acceptable
		}
		if !rec.HasState() {
			t.Fatalf("%s: recovery without error must carry a snapshot", what)
		}
		e, err := Restore(rec, Config{Workers: 1})
		if err != nil {
			t.Fatalf("%s: scan accepted a prefix the engine rejects: %v", what, err)
		}
		defer e.Close()
		if e.Round() != rec.LastRound {
			t.Fatalf("%s: restored round %d, scan promised %d", what, e.Round(), rec.LastRound)
		}
		want, ok := hashes[e.Round()]
		if !ok {
			t.Fatalf("%s: recovered to round %d the live run never visited", what, e.Round())
		}
		if e.StateHash() != want {
			t.Fatalf("%s: recovered state differs from live run at round %d", what, e.Round())
		}
		if err := e.AuditFull(); err != nil {
			t.Fatalf("%s: recovered engine fails conservation: %v", what, err)
		}
		return true
	}

	t.Run("truncate-at-every-offset", func(t *testing.T) {
		recovered := 0
		for off := 0; off <= len(raw); off++ {
			scratch := copyDir(t, dir)
			if err := os.Truncate(filepath.Join(scratch, seg), int64(off)); err != nil {
				t.Fatal(err)
			}
			if verify(t, scratch, "cut@"+seg) {
				recovered++
			}
		}
		// Sanity: the sweep must not have refused everything — at minimum
		// the untruncated copy and every committed prefix recover.
		if recovered < len(raw)/2 {
			t.Fatalf("only %d/%d crash points recovered", recovered, len(raw)+1)
		}
	})

	t.Run("bitflip-at-offsets", func(t *testing.T) {
		for off := 0; off < len(raw); off += 5 {
			scratch := copyDir(t, dir)
			mut := append([]byte(nil), raw...)
			mut[off] ^= 1 << (off % 8)
			if err := os.WriteFile(filepath.Join(scratch, seg), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			verify(t, scratch, "flip@"+seg)
		}
	})
}

// TestRecoveryAfterMidBatchRejection pins the commit semantics when a batch
// stops early: the applied prefix stays logged but uncommitted, and the
// NEXT successful round's marker commits it — replay must converge to the
// live engine's exact state.
func TestRecoveryAfterMidBatchRejection(t *testing.T) {
	dir := t.TempDir()
	logged, bare, w := walPair(t, dir, wal.Options{Sync: wal.SyncAlways}, 100)

	step := func(evs ...Event) {
		t.Helper()
		for _, e := range []*Engine{logged, bare} {
			for _, ev := range evs {
				if err := e.Schedule(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
		errL, errB := logged.Step(), bare.Step()
		if (errL == nil) != (errB == nil) {
			t.Fatalf("engines disagree: %v vs %v", errL, errB)
		}
	}

	step(Arrival(0, 0, 5))
	// Valid arrival, then an arrival at a slot that was never activated:
	// the batch stops early with the valid prefix applied and logged.
	step(Arrival(1, 1, 2), Arrival(1, 99, 1))
	// The next clean step's marker commits the orphaned prefix.
	step(Completion(2, 0, 3))
	if logged.StateHash() != bare.StateHash() {
		t.Fatalf("rejection handling diverged between engines")
	}
	want := logged.StateHash()
	wantRound := logged.Round()
	logged.Close()
	bare.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	e, err := Restore(rec, Config{Workers: 1})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer e.Close()
	if e.Round() != wantRound || e.StateHash() != want {
		t.Fatalf("replay after mid-batch rejection diverged: round %d vs %d", e.Round(), wantRound)
	}
}

// TestWALPoisonOnSinkFailure: a failing sink must poison the engine (state
// and log can no longer be proven to agree), and SnapshotNow must refuse to
// baseline a poisoned state.
func TestWALPoisonOnSinkFailure(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := load.NewTokens([]int64{4, 0, 0, 2, 0, 0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := &failingSink{}
	e := mustEngine(t, Config{
		Graph: g, Speeds: load.UniformSpeeds(g.N()), Tasks: tasks, Workers: 1, WAL: sink,
	})
	if err := e.Step(); err != nil {
		t.Fatalf("healthy sink: %v", err)
	}
	sink.fail = true
	if err := e.Schedule(Arrival(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	err = e.Step()
	if !errors.Is(err, ErrWAL) {
		t.Fatalf("failing sink: got %v, want ErrWAL", err)
	}
	if err2 := e.Step(); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("WAL failure not latched: %v", err2)
	}
	if err := e.SnapshotNow(); err == nil {
		t.Fatalf("SnapshotNow accepted a poisoned engine")
	}
}

type failingSink struct{ fail bool }

func (s *failingSink) AppendEvent(*WireEvent) error {
	if s.fail {
		return os.ErrClosed
	}
	return nil
}
func (s *failingSink) AppendRound(wal.RoundMark) error {
	if s.fail {
		return os.ErrClosed
	}
	return nil
}
func (s *failingSink) WriteSnapshot(int64, []byte) error {
	if s.fail {
		return os.ErrClosed
	}
	return nil
}
