package dist

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
)

// NetFlows is the minimal view of one round's continuous flows the send
// decision needs: the signed net flow per edge. *continuous.Flows
// implements it.
type NetFlows interface {
	Net(e int) float64
}

// SendState is the per-node flow-imitation bookkeeping shared by the
// channel-based execution in this package, the wire-based execution in
// package netsim, and the online runtime in package engine: the task pool,
// the cumulative continuous (fA) and discrete (fD) signed net flow of each
// incident edge, and the dummy counter. DecideSends is the per-node view of
// core.FlowImitation's edge loop; keeping it in one place is what keeps the
// distributed executions bit-for-bit identical to the centralized one.
//
// fA and fD are indexed like the node's adjacency list and use the edge's
// global U(e)->V(e) sign convention. Package engine keeps its flow
// accumulators globally (shared memory, mutable topology) and uses only the
// pool surface — BeginRound, Take, AddTasks, Drain, RemoveNewestReal and
// the weight counters.
type SendState struct {
	// tasks is the node's pool. During a round only the avail-prefix (the
	// tasks held at round start, minus those already sent) may be
	// forwarded; arrivals are appended by Receive/AddTasks, after all
	// sends.
	tasks   []load.Task
	avail   int
	fA      []float64
	fD      []int64
	dummies int64

	// wTotal and wReal track the pool's total and non-dummy task weight
	// incrementally, so per-node loads are O(1) instead of a pool scan.
	wTotal int64
	wReal  int64
}

// NewSendState builds the bookkeeping for one node holding the given
// initial tasks (copied) with the given degree. Executions that keep their
// flow accumulators elsewhere (package engine) pass degree 0.
func NewSendState(initial []load.Task, degree int) *SendState {
	st := &SendState{
		tasks: append([]load.Task(nil), initial...),
		fA:    make([]float64, degree),
		fD:    make([]int64, degree),
	}
	for _, q := range initial {
		st.wTotal += q.Weight
		if !q.Dummy {
			st.wReal += q.Weight
		}
	}
	return st
}

// RestoreSendState rebuilds a node's pool from persisted state: the exact
// task sequence (copied, pool order preserved — LIFO sends depend on it)
// and the cumulative dummy-draw counter, which NewSendState cannot carry.
// Degree-0 form, for engines that keep flow accumulators elsewhere.
func RestoreSendState(tasks []load.Task, dummies int64) *SendState {
	if dummies < 0 {
		dummies = 0
	}
	st := NewSendState(tasks, 0)
	st.dummies = dummies
	return st
}

// BeginRound marks the round boundary: every task currently in the pool
// becomes available for forwarding this round. DecideSends calls it
// implicitly; executions that drive Take directly (package engine) call it
// once per round before any send decision.
func (st *SendState) BeginRound() { st.avail = len(st.tasks) }

// DecideSends runs one node's send phase: it accumulates the round's
// continuous flows, then visits the incident arcs in adjacency-list order
// (which is increasing edge-index order, matching the centralized global
// edge loop) and builds one batch per arc (nil when nothing is sent),
// popping tasks LIFO from the round-start pool and drawing dummy tokens
// when the pool runs dry. batches[k] belongs on arc neigh[k].
func (st *SendState) DecideSends(neigh []graph.Arc, fl NetFlows, wmax int64) [][]load.Task {
	for k, arc := range neigh {
		st.fA[k] += fl.Net(arc.Edge)
	}
	st.BeginRound()
	batches := make([][]load.Task, len(neigh))
	var cur int
	emit := func(q load.Task) { batches[cur] = append(batches[cur], q) }
	for k, arc := range neigh {
		gap := st.fA[k] - float64(st.fD[k])
		if arc.Out < 0 {
			gap = -gap
		}
		cur = k
		sent := core.Forward(gap, wmax, st.take, emit)
		st.fD[k] += int64(arc.Out) * sent
	}
	return batches
}

// take pops the most recent unallocated round-start task (LIFO, the
// centralized PolicyLIFO), or draws a unit-weight dummy token from the
// infinite source when the pool is exhausted.
func (st *SendState) take() load.Task {
	if st.avail == 0 {
		st.dummies++
		return load.Task{Weight: 1, Dummy: true}
	}
	st.avail--
	q := st.tasks[st.avail]
	st.tasks = st.tasks[:st.avail]
	st.wTotal -= q.Weight
	if !q.Dummy {
		st.wReal -= q.Weight
	}
	return q
}

// Take is the exported form of the LIFO pop with infinite-source fallback,
// for executions that run the edge loop themselves via core.Forward.
func (st *SendState) Take() load.Task { return st.take() }

// Receive applies the batch that arrived over arc neigh[k]: it credits the
// edge's discrete flow and appends the tasks to the pool.
func (st *SendState) Receive(k int, arc graph.Arc, batch []load.Task) {
	var recv int64
	for _, q := range batch {
		recv += q.Weight
	}
	st.fD[k] -= int64(arc.Out) * recv
	st.AddTasks(batch)
}

// AddTasks appends tasks to the pool (online arrivals, or deliveries whose
// flow bookkeeping lives outside the state). Tasks added mid-round sit
// beyond the avail prefix and only become forwardable at the next
// BeginRound, matching the centralized "arrivals are appended after all
// edges are decided" rule.
func (st *SendState) AddTasks(batch []load.Task) {
	for _, q := range batch {
		st.wTotal += q.Weight
		if !q.Dummy {
			st.wReal += q.Weight
		}
	}
	st.tasks = append(st.tasks, batch...)
}

// Drain removes and returns the whole pool (a departing node handing its
// tasks to its neighbours). The returned slice is owned by the caller.
func (st *SendState) Drain() []load.Task {
	out := st.tasks
	st.tasks = nil
	st.avail = 0
	st.wTotal = 0
	st.wReal = 0
	return out
}

// RemoveNewestReal removes up to max non-dummy tasks from the pool,
// newest first (task completions). Dummy tokens are skipped — only the
// end-of-process measurement eliminates them. The remaining pool keeps its
// order. It returns the removed tasks.
func (st *SendState) RemoveNewestReal(max int) []load.Task {
	if max <= 0 {
		return nil
	}
	var removed []load.Task
	drop := make([]bool, len(st.tasks))
	for i := len(st.tasks) - 1; i >= 0 && len(removed) < max; i-- {
		if st.tasks[i].Dummy {
			continue
		}
		drop[i] = true
		removed = append(removed, st.tasks[i])
		st.wTotal -= st.tasks[i].Weight
		st.wReal -= st.tasks[i].Weight
	}
	if len(removed) == 0 {
		return nil
	}
	kept := st.tasks[:0]
	for i, q := range st.tasks {
		if !drop[i] {
			kept = append(kept, q)
		}
	}
	st.tasks = kept
	st.avail = 0
	return removed
}

// Tasks returns the node's pool. The slice is owned by the state and must
// not be modified.
func (st *SendState) Tasks() []load.Task { return st.tasks }

// Dummies returns the total dummy weight drawn at this node so far.
func (st *SendState) Dummies() int64 { return st.dummies }

// TotalWeight returns the pool's total task weight, dummy tokens included.
func (st *SendState) TotalWeight() int64 { return st.wTotal }

// RealWeight returns the pool's non-dummy task weight.
func (st *SendState) RealWeight() int64 { return st.wReal }

// Counters returns the pool's two incremental weight counters — total
// weight (dummy tokens included) and non-dummy weight — in one call. It
// is the hook engines use to fold a mutation's pool deltas into an
// aggregate conservation ledger in O(1), without rescanning the pool:
// read the counters, mutate the pool, read them again, ledger the
// difference.
func (st *SendState) Counters() (total, real int64) {
	return st.wTotal, st.wReal
}

// Loads returns the per-node total task weight, including dummy tokens,
// for a cluster's per-node states.
func Loads(states []*SendState) load.Vector {
	x := make(load.Vector, len(states))
	for i, st := range states {
		x[i] = st.wTotal
	}
	return x
}

// RealLoads returns the per-node non-dummy task weight (the real load
// after the paper's end-of-process dummy elimination).
func RealLoads(states []*SendState) load.Vector {
	x := make(load.Vector, len(states))
	for i, st := range states {
		x[i] = st.wReal
	}
	return x
}

// TotalDummies returns the dummy weight drawn across all states.
func TotalDummies(states []*SendState) int64 {
	var total int64
	for _, st := range states {
		total += st.dummies
	}
	return total
}

// CloneTasks returns a deep copy of the task distribution held by the
// states, in each node's exact pool order.
func CloneTasks(states []*SendState) load.TaskDist {
	out := make(load.TaskDist, len(states))
	for i, st := range states {
		out[i] = append([]load.Task(nil), st.tasks...)
	}
	return out
}
