package dist

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
)

// NetFlows is the minimal view of one round's continuous flows the send
// decision needs: the signed net flow per edge. *continuous.Flows
// implements it.
type NetFlows interface {
	Net(e int) float64
}

// SendState is the per-node flow-imitation bookkeeping shared by the
// channel-based execution in this package and the wire-based execution in
// package netsim: the task pool, the cumulative continuous (fA) and
// discrete (fD) signed net flow of each incident edge, and the dummy
// counter. DecideSends is the per-node view of core.FlowImitation's edge
// loop; keeping it in one place is what keeps the distributed executions
// bit-for-bit identical to the centralized one.
//
// fA and fD are indexed like the node's adjacency list and use the edge's
// global U(e)->V(e) sign convention.
type SendState struct {
	// tasks is the node's pool. During a round only the avail-prefix (the
	// tasks held at round start, minus those already sent) may be
	// forwarded; arrivals are appended by Receive, after all sends.
	tasks   []load.Task
	avail   int
	fA      []float64
	fD      []int64
	dummies int64
}

// NewSendState builds the bookkeeping for one node holding the given
// initial tasks (copied) with the given degree.
func NewSendState(initial []load.Task, degree int) *SendState {
	return &SendState{
		tasks: append([]load.Task(nil), initial...),
		fA:    make([]float64, degree),
		fD:    make([]int64, degree),
	}
}

// DecideSends runs one node's send phase: it accumulates the round's
// continuous flows, then visits the incident arcs in adjacency-list order
// (which is increasing edge-index order, matching the centralized global
// edge loop) and builds one batch per arc (nil when nothing is sent),
// popping tasks LIFO from the round-start pool and drawing dummy tokens
// when the pool runs dry. batches[k] belongs on arc neigh[k].
func (st *SendState) DecideSends(neigh []graph.Arc, fl NetFlows, wmax int64) [][]load.Task {
	for k, arc := range neigh {
		st.fA[k] += fl.Net(arc.Edge)
	}
	st.avail = len(st.tasks)
	wmaxF := float64(wmax)
	batches := make([][]load.Task, len(neigh))
	for k, arc := range neigh {
		gap := st.fA[k] - float64(st.fD[k])
		if arc.Out < 0 {
			gap = -gap
		}
		var sent int64
		for gap-float64(sent) >= wmaxF-core.RoundingEps {
			q := st.take()
			batches[k] = append(batches[k], q)
			sent += q.Weight
		}
		st.fD[k] += int64(arc.Out) * sent
	}
	return batches
}

// take pops the most recent unallocated round-start task (LIFO, the
// centralized PolicyLIFO), or draws a unit-weight dummy token from the
// infinite source when the pool is exhausted.
func (st *SendState) take() load.Task {
	if st.avail == 0 {
		st.dummies++
		return load.Task{Weight: 1, Dummy: true}
	}
	st.avail--
	q := st.tasks[st.avail]
	st.tasks = st.tasks[:st.avail]
	return q
}

// Receive applies the batch that arrived over arc neigh[k]: it credits the
// edge's discrete flow and appends the tasks to the pool.
func (st *SendState) Receive(k int, arc graph.Arc, batch []load.Task) {
	var recv int64
	for _, q := range batch {
		recv += q.Weight
	}
	st.fD[k] -= int64(arc.Out) * recv
	st.tasks = append(st.tasks, batch...)
}

// Tasks returns the node's pool. The slice is owned by the state and must
// not be modified.
func (st *SendState) Tasks() []load.Task { return st.tasks }

// Dummies returns the total dummy weight drawn so far.
func (st *SendState) Dummies() int64 { return st.dummies }

// Loads returns the per-node total task weight, including dummy tokens,
// for a cluster's per-node states.
func Loads(states []*SendState) load.Vector {
	x := make(load.Vector, len(states))
	for i, st := range states {
		for _, q := range st.tasks {
			x[i] += q.Weight
		}
	}
	return x
}

// RealLoads returns the per-node non-dummy task weight (the real load
// after the paper's end-of-process dummy elimination).
func RealLoads(states []*SendState) load.Vector {
	x := make(load.Vector, len(states))
	for i, st := range states {
		for _, q := range st.tasks {
			if !q.Dummy {
				x[i] += q.Weight
			}
		}
	}
	return x
}

// TotalDummies returns the dummy weight drawn across all states.
func TotalDummies(states []*SendState) int64 {
	var total int64
	for _, st := range states {
		total += st.dummies
	}
	return total
}

// CloneTasks returns a deep copy of the task distribution held by the
// states, in each node's exact pool order.
func CloneTasks(states []*SendState) load.TaskDist {
	out := make(load.TaskDist, len(states))
	for i, st := range states {
		out[i] = append([]load.Task(nil), st.tasks...)
	}
	return out
}
