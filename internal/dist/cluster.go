package dist

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
)

// ProcessMaker builds one node's private continuous replica from the initial
// load vector. Every node gets its own instance; instances must be
// independent (no shared mutable state) yet deterministic copies of one
// another, so that all replicas compute identical flows. A ProcessMaker is
// convertible to a continuous.Factory and vice versa.
type ProcessMaker func(x0 []float64) (continuous.Process, error)

// node is the state owned exclusively by one node goroutine. The
// coordinator reads it only between rounds (the done barrier orders those
// reads after the goroutine's writes).
type node struct {
	id   int
	cont continuous.Process
	st   *SendState

	// out and in are this node's send/receive endpoints of the per-edge
	// duplex channel pair, indexed like graph.Neighbors(id).
	out []chan []load.Task
	in  []chan []load.Task
}

// Cluster runs Algorithm 1 distributed: one goroutine per node, whole tasks
// as channel messages, barrier-synchronized rounds. A Cluster is not safe
// for concurrent use; call its methods from a single goroutine.
type Cluster struct {
	g      *graph.Graph
	s      load.Speeds
	wmax   int64
	nodes  []*node
	states []*SendState

	start []chan struct{}
	done  chan struct{}
	quit  chan struct{}
	once  sync.Once

	round   int
	stopped bool
}

// NewCluster builds a distributed Algorithm 1 run on graph g with speeds s
// and initial task distribution d. maker builds each node's continuous
// replica; all replicas are seeded with d's load vector. The cluster's node
// goroutines are started immediately and park between rounds; call Stop to
// release them when the cluster is no longer needed.
func NewCluster(g *graph.Graph, s load.Speeds, d load.TaskDist, maker ProcessMaker) (*Cluster, error) {
	if g == nil {
		return nil, errors.New("dist: nil graph")
	}
	if maker == nil {
		return nil, errors.New("dist: nil process maker")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s) != g.N() {
		return nil, fmt.Errorf("dist: speeds length %d != n %d", len(s), g.N())
	}
	if len(d) != g.N() {
		return nil, fmt.Errorf("dist: task distribution length %d != n %d", len(d), g.N())
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	x0 := d.Loads().Float()

	// One duplex channel pair per edge; fwd carries U(e)->V(e) batches.
	// Capacity 1 makes the single send of each direction per round
	// non-blocking, so every node finishes its send phase before any node
	// can stall in its receive phase — no deadlock, no extra goroutines.
	type duplex struct{ fwd, rev chan []load.Task }
	links := make([]duplex, g.M())
	for e := range links {
		links[e] = duplex{
			fwd: make(chan []load.Task, 1),
			rev: make(chan []load.Task, 1),
		}
	}

	c := &Cluster{
		g:      g,
		s:      s.Clone(),
		wmax:   d.MaxWeight(),
		nodes:  make([]*node, g.N()),
		states: make([]*SendState, g.N()),
		start:  make([]chan struct{}, g.N()),
		done:   make(chan struct{}, g.N()),
		quit:   make(chan struct{}),
	}
	for i := 0; i < g.N(); i++ {
		replica, err := maker(x0)
		if err != nil {
			return nil, fmt.Errorf("dist: replica for node %d: %w", i, err)
		}
		neigh := g.Neighbors(i)
		nd := &node{
			id:   i,
			cont: replica,
			st:   NewSendState(d[i], len(neigh)),
			out:  make([]chan []load.Task, len(neigh)),
			in:   make([]chan []load.Task, len(neigh)),
		}
		for k, arc := range neigh {
			if arc.Out > 0 {
				nd.out[k], nd.in[k] = links[arc.Edge].fwd, links[arc.Edge].rev
			} else {
				nd.out[k], nd.in[k] = links[arc.Edge].rev, links[arc.Edge].fwd
			}
		}
		c.nodes[i] = nd
		c.states[i] = nd.st
		c.start[i] = make(chan struct{}, 1)
	}
	for i, nd := range c.nodes {
		go c.serve(nd, c.start[i])
	}
	return c, nil
}

// serve is the per-node goroutine: it parks between rounds and executes one
// round per start signal until the cluster is stopped.
func (c *Cluster) serve(nd *node, start chan struct{}) {
	for {
		select {
		case <-c.quit:
			return
		case <-start:
			nd.runRound(c.g, c.wmax)
			c.done <- struct{}{}
		}
	}
}

// runRound executes one node's round: advance the private replica, decide
// and send one batch per incident edge, then receive the neighbours'
// batches.
func (nd *node) runRound(g *graph.Graph, wmax int64) {
	fl := nd.cont.Step()
	neigh := g.Neighbors(nd.id)
	batches := nd.st.DecideSends(neigh, fl, wmax)
	for k := range neigh {
		nd.out[k] <- batches[k]
	}
	for k, arc := range neigh {
		nd.st.Receive(k, arc, <-nd.in[k])
	}
}

// Step executes one synchronous round: it wakes every node goroutine and
// returns once all of them have finished the round. Step panics if the
// cluster has been stopped.
func (c *Cluster) Step() {
	if c.stopped {
		panic("dist: Step on a stopped Cluster")
	}
	for _, ch := range c.start {
		ch <- struct{}{}
	}
	for range c.nodes {
		<-c.done
	}
	c.round++
}

// Run executes the given number of rounds.
func (c *Cluster) Run(rounds int) {
	for t := 0; t < rounds; t++ {
		c.Step()
	}
}

// Stop terminates the node goroutines. It is idempotent; the cluster's
// state remains readable afterwards, but Step panics.
func (c *Cluster) Stop() {
	c.once.Do(func() {
		c.stopped = true
		close(c.quit)
	})
}

// Round returns the number of completed rounds.
func (c *Cluster) Round() int { return c.round }

// Graph returns the network.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Speeds returns the node speeds.
func (c *Cluster) Speeds() load.Speeds { return c.s }

// Wmax returns the maximum task weight the cluster was built with.
func (c *Cluster) Wmax() int64 { return c.wmax }

// Load returns the per-node total task weight, including dummy tokens.
func (c *Cluster) Load() load.Vector { return Loads(c.states) }

// LoadExcludingDummies returns the per-node real load after the paper's
// end-of-process dummy elimination.
func (c *Cluster) LoadExcludingDummies() load.Vector { return RealLoads(c.states) }

// DummiesCreated returns the total dummy weight drawn from the infinite
// source across all nodes.
func (c *Cluster) DummiesCreated() int64 { return TotalDummies(c.states) }

// Tasks returns a deep copy of the current task distribution, in each
// node's exact pool order.
func (c *Cluster) Tasks() load.TaskDist { return CloneTasks(c.states) }
