package dist_test

import (
	"math/rand"
	"testing"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// testGraphs returns the graph classes the identity tests run on: a
// hypercube, a 2-dimensional torus, and a connected random regular graph.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	hc, err := graph.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := graph.RandomRegular(24, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"hypercube": hc, "torus": torus, "random-regular": rr}
}

// testMakers returns all four maker kinds for (g, s).
func testMakers(t *testing.T, g *graph.Graph, s load.Speeds) map[string]dist.ProcessMaker {
	t.Helper()
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]dist.ProcessMaker{
		"fos":               dist.FOSMaker(g, s, alpha),
		"sos":               dist.SOSMaker(g, s, alpha, 1.3),
		"periodic-matching": dist.PeriodicMatchingMaker(g, s, nil),
		"random-matching":   dist.RandomMatchingMaker(g, s, 42),
	}
}

// TestVerifyAllMakersAllGraphs: the distributed run is bit-for-bit identical
// to the centralized Algorithm 1 for every maker kind on every graph class.
func TestVerifyAllMakersAllGraphs(t *testing.T) {
	for gname, g := range testGraphs(t) {
		s := load.UniformSpeeds(g.N())
		x0, err := workload.PointMass(g.N(), 32*int64(g.N()), 0)
		if err != nil {
			t.Fatal(err)
		}
		tokens, err := load.NewTokens(x0)
		if err != nil {
			t.Fatal(err)
		}
		for mname, maker := range testMakers(t, g, s) {
			t.Run(gname+"/"+mname, func(t *testing.T) {
				t.Parallel()
				if err := dist.Verify(g, s, tokens, maker, 60); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestVerifyWeightedHeterogeneous: identity also holds in the paper's
// general model — weighted tasks and heterogeneous speeds.
func TestVerifyWeightedHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workload.PointMassWeightedTasks(g.N(), 200, 0, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.Verify(g, s, d, dist.FOSMaker(g, s, alpha), 80); err != nil {
		t.Fatal(err)
	}
}

// TestClusterMatchesCentralizedRoundByRound exercises the Cluster API
// directly (rather than through Verify) and checks loads, real loads and
// dummies against the centralized run after every round.
func TestClusterMatchesCentralizedRoundByRound(t *testing.T) {
	g, err := graph.Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 16*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	maker := dist.FOSMaker(g, s, alpha)
	c, err := dist.NewCluster(g, s, tokens, maker)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	central, err := core.NewFlowImitation(g, s, tokens, continuous.Factory(maker), core.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		c.Step()
		central.Step()
		cl, gl := c.Load(), central.Load()
		for i := range cl {
			if cl[i] != gl[i] {
				t.Fatalf("round %d node %d: dist %d vs centralized %d", round, i, cl[i], gl[i])
			}
		}
		rl, grl := c.LoadExcludingDummies(), central.LoadExcludingDummies()
		for i := range rl {
			if rl[i] != grl[i] {
				t.Fatalf("round %d node %d real load: dist %d vs centralized %d", round, i, rl[i], grl[i])
			}
		}
		if c.DummiesCreated() != central.DummiesCreated() {
			t.Fatalf("round %d: dummies %d vs %d", round, c.DummiesCreated(), central.DummiesCreated())
		}
	}
	if c.Round() != 100 {
		t.Errorf("Round = %d, want 100", c.Round())
	}
}

// TestConservation: total weight is conserved up to dummy creation, and the
// real load never changes.
func TestConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.RandomSpeeds(g.N(), 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workload.PointMassWeightedTasks(g.N(), 60, 0, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := d.Loads().Total()
	c, err := dist.NewCluster(g, s, d, dist.FOSMaker(g, s, alpha))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Run(50)
	if got := c.Load().Total(); got != total+c.DummiesCreated() {
		t.Errorf("conservation: %d != %d + %d", got, total, c.DummiesCreated())
	}
	if real := c.LoadExcludingDummies().Total(); real != total {
		t.Errorf("real load %d != %d", real, total)
	}
}

// TestStressManyRounds is the -race workhorse: a larger graph, many rounds,
// state read between every round, for every maker kind.
func TestStressManyRounds(t *testing.T) {
	g, err := graph.Hypercube(6) // 64 node goroutines
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), 8*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	total := x0.Total()
	for mname, maker := range testMakers(t, g, s) {
		t.Run(mname, func(t *testing.T) {
			t.Parallel()
			c, err := dist.NewCluster(g, s, tokens, maker)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			for round := 0; round < 300; round++ {
				c.Step()
				if got := c.LoadExcludingDummies().Total(); got != total {
					t.Fatalf("round %d: real load %d != %d", round, got, total)
				}
			}
		})
	}
}

// TestNewClusterValidation: constructor input checking.
func TestNewClusterValidation(t *testing.T) {
	g, err := graph.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	maker := dist.FOSMaker(g, s, alpha)
	if _, err := dist.NewCluster(nil, s, d, maker); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := dist.NewCluster(g, s, d, nil); err == nil {
		t.Error("nil maker should error")
	}
	if _, err := dist.NewCluster(g, s[:2], d, maker); err == nil {
		t.Error("short speeds should error")
	}
	if _, err := dist.NewCluster(g, s, d[:2], maker); err == nil {
		t.Error("short task distribution should error")
	}
	bad := d.Clone()
	bad[0] = append(bad[0], load.Task{Weight: 0})
	if _, err := dist.NewCluster(g, s, bad, maker); err == nil {
		t.Error("zero-weight task should error")
	}
	// A maker whose replica construction fails must surface the error.
	failing := func(x0 []float64) (continuous.Process, error) {
		return continuous.NewFOS(g, s, alpha[:1], x0)
	}
	if _, err := dist.NewCluster(g, s, d, failing); err == nil {
		t.Error("failing maker should error")
	}
}

// TestStopIsIdempotentAndStepPanics: Stop twice is fine; Step afterwards
// panics rather than deadlocking.
func TestStopIsIdempotentAndStepPanics(t *testing.T) {
	g, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	d, err := load.NewTokens(load.Vector{8, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.NewCluster(g, s, d, dist.FOSMaker(g, s, alpha))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3)
	c.Stop()
	c.Stop()
	if got := c.Round(); got != 3 {
		t.Errorf("Round after Stop = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Step after Stop should panic")
		}
	}()
	c.Step()
}

// TestMakerConvertsToFactory: the documented interchangeability with
// continuous.Factory.
func TestMakerConvertsToFactory(t *testing.T) {
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	factory := continuous.Factory(dist.FOSMaker(g, s, alpha))
	p, err := factory([]float64{6, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fos" {
		t.Errorf("Name = %q", p.Name())
	}
}
