// Package dist executes the paper's Algorithm 1 (flow imitation) as a
// message-passing distributed system: one goroutine per node, whole tasks
// travelling as channel messages between neighbours, and a private replica
// of the continuous process on every node — the paper's footnote 1, which
// observes that Algorithm 1 is a local algorithm because every node can
// simulate the (deterministic, or coupled-randomness) continuous process on
// its own and therefore knows the cumulative continuous flow over each of
// its incident edges without any extra communication.
//
// Rounds are barrier-synchronized: Cluster.Step wakes every node goroutine,
// each node advances its replica, decides and sends one task batch per
// incident edge (possibly empty), receives its neighbours' batches, and
// reports back; Step returns when all nodes have finished the round. Within
// a round a node inspects its incident edges in increasing edge-index order
// and pops tasks LIFO from the pool it held at round start, which makes the
// run bit-for-bit identical to the centralized core.FlowImitation with
// core.PolicyLIFO — Verify asserts exactly that, task slice by task slice.
//
// The continuous replicas are created by a ProcessMaker, one independent
// instance per node, all seeded with the same initial load vector. Replicas
// must be deterministic copies of one another: for randomized matching
// schedules that means same-seeded schedules (coupled randomness), which is
// what RandomMatchingMaker builds. Because every replica performs the same
// float64 operations on the same state, all nodes agree on the continuous
// flow of every edge in every round without exchanging flow values.
//
// Package netsim is the wire-protocol counterpart of this package: same
// algorithm, but batches travel over net.Conn links as gob frames instead
// of through channels.
package dist
