package dist

import (
	"fmt"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
)

// Verify runs the distributed cluster and the centralized core.FlowImitation
// (with core.PolicyLIFO) side by side for the given number of rounds and
// returns an error on the first divergence. The comparison is bit-for-bit:
// after every round the two task distributions must match task by task —
// same pool order, same weights, same dummy flags — and the dummy-token
// totals must agree.
func Verify(g *graph.Graph, s load.Speeds, d load.TaskDist, maker ProcessMaker, rounds int) error {
	c, err := NewCluster(g, s, d, maker)
	if err != nil {
		return err
	}
	defer c.Stop()
	central, err := core.NewFlowImitation(g, s, d, continuous.Factory(maker), core.PolicyLIFO)
	if err != nil {
		return err
	}
	for t := 0; t < rounds; t++ {
		c.Step()
		central.Step()
		if err := equalTaskDists(c.Tasks(), central.Tasks()); err != nil {
			return fmt.Errorf("dist: verify round %d: %w", t, err)
		}
		if cd, gd := c.DummiesCreated(), central.DummiesCreated(); cd != gd {
			return fmt.Errorf("dist: verify round %d: dummies %d (distributed) != %d (centralized)", t, cd, gd)
		}
	}
	return nil
}

// equalTaskDists reports the first difference between two task
// distributions, comparing pool order, weights and dummy flags.
func equalTaskDists(a, b load.TaskDist) error {
	if len(a) != len(b) {
		return fmt.Errorf("node count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("node %d: %d tasks (distributed) != %d (centralized)", i, len(a[i]), len(b[i]))
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return fmt.Errorf("node %d task %d: %+v (distributed) != %+v (centralized)", i, k, a[i][k], b[i][k])
			}
		}
	}
	return nil
}
