package dist

import (
	"errors"

	"repro/internal/continuous"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
)

// FOSMaker builds per-node replicas of first-order diffusion with the given
// symmetric parameters. FOS is deterministic, so the replicas agree on every
// flow by construction.
func FOSMaker(g *graph.Graph, s load.Speeds, alpha continuous.Alphas) ProcessMaker {
	return ProcessMaker(continuous.FOSFactory(g, s, alpha))
}

// SOSMaker builds per-node replicas of second-order diffusion with
// relaxation parameter beta in (0, 2].
func SOSMaker(g *graph.Graph, s load.Speeds, alpha continuous.Alphas, beta float64) ProcessMaker {
	return ProcessMaker(continuous.SOSFactory(g, s, alpha, beta))
}

// PeriodicMatchingMaker builds per-node replicas of the periodic
// dimension-exchange process. With explicit matchings the schedule cycles
// through them; with matchings == nil the canonical schedule derived from
// the greedy edge colouring of g is used. The schedule is built once and
// shared by every replica — matching.Periodic is immutable, so sharing is
// goroutine-safe.
func PeriodicMatchingMaker(g *graph.Graph, s load.Speeds, matchings []matching.Matching) ProcessMaker {
	var (
		sched *matching.Periodic
		err   error
	)
	switch {
	case g == nil:
		err = errors.New("dist: nil graph")
	case matchings == nil:
		sched, err = matching.NewPeriodicFromColoring(g)
	default:
		sched, err = matching.NewPeriodic(g, matchings)
	}
	return func(x0 []float64) (continuous.Process, error) {
		if err != nil {
			return nil, err
		}
		return continuous.NewMatchingProcess(g, s, sched, x0)
	}
}

// RandomMatchingMaker builds per-node replicas of the random-matching
// dimension-exchange process. Each replica gets its own matching.Random
// schedule with the same seed: schedules derive round t's matching
// deterministically from (seed, t), so all replicas draw identical matchings
// (coupled randomness) while sharing no mutable state — matching.Random
// caches its last matching and must not be shared across goroutines.
func RandomMatchingMaker(g *graph.Graph, s load.Speeds, seed int64) ProcessMaker {
	return func(x0 []float64) (continuous.Process, error) {
		if g == nil {
			return nil, errors.New("dist: nil graph")
		}
		return continuous.NewMatchingProcess(g, s, matching.NewRandom(g, seed), x0)
	}
}
