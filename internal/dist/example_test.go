package dist_test

import (
	"fmt"
	"log"

	"repro/internal/continuous"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// ExampleCluster mirrors examples/distributed: run Algorithm 1 over
// first-order diffusion with one goroutine per node until the continuous
// balancing time, then cross-check against the centralized implementation.
func ExampleCluster() {
	g, err := graph.Hypercube(4) // n = 16, d = 4
	if err != nil {
		log.Fatal(err)
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		log.Fatal(err)
	}
	x0, err := workload.PointMass(g.N(), 16*int64(g.N()), 0)
	if err != nil {
		log.Fatal(err)
	}
	tokens, err := load.NewTokens(x0)
	if err != nil {
		log.Fatal(err)
	}
	maker := dist.FOSMaker(g, s, alpha)

	// How long the continuous process needs to balance.
	probe, err := maker(x0.Float())
	if err != nil {
		log.Fatal(err)
	}
	bt, err := continuous.BalancingTime(probe, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := dist.NewCluster(g, s, tokens, maker)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Run(bt)

	maxAvg, err := load.MaxAvgDiscrepancy(cluster.LoadExcludingDummies(), s, x0.Total())
	if err != nil {
		log.Fatal(err)
	}
	bound := float64(2*g.MaxDegree() + 2) // Theorem 3 with wmax = 1
	fmt.Printf("within Theorem 3 bound: %v\n", maxAvg <= bound)
	fmt.Printf("identical to centralized: %v\n", dist.Verify(g, s, tokens, maker, bt) == nil)
	// Output:
	// within Theorem 3 bound: true
	// identical to centralized: true
}
