// Package wire defines the JSON wire format of injected runtime events:
// the body of lbserve's POST /events and one NDJSON line of
// POST /events/stream. It is a leaf package so both the engine (which
// decodes the format into runtime events) and the workload generators
// (which emit it) can share the type without depending on each other.
package wire

// Event is one injected event on the wire. Kind selects which fields
// matter (see engine.FromWire): Tokens is a convenience for
// uniform-weight arrivals, Weight scales them, and Weights carries an
// explicit per-task weight list for heterogeneous arrivals (the lossless
// form the write-ahead log uses to record applied arrivals).
type Event struct {
	Kind    string   `json:"kind"`
	At      int64    `json:"at,omitempty"`
	Node    int      `json:"node,omitempty"`
	Tokens  int      `json:"tokens,omitempty"`
	Weight  int64    `json:"weight,omitempty"`
	Weights []int64  `json:"weights,omitempty"`
	Count   int      `json:"count,omitempty"`
	Speed   int64    `json:"speed,omitempty"`
	Peers   []int    `json:"peers,omitempty"`
	Add     [][2]int `json:"add,omitempty"`
	Remove  [][2]int `json:"remove,omitempty"`
}
