package load

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedsValidate(t *testing.T) {
	if err := (Speeds{1, 2, 3}).Validate(); err != nil {
		t.Errorf("valid speeds rejected: %v", err)
	}
	if err := (Speeds{}).Validate(); err == nil {
		t.Error("empty speeds should error")
	}
	if err := (Speeds{1, 0}).Validate(); err == nil {
		t.Error("zero speed should error")
	}
	if err := (Speeds{-2}).Validate(); err == nil {
		t.Error("negative speed should error")
	}
}

func TestUniformSpeeds(t *testing.T) {
	s := UniformSpeeds(5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	if s.Sum() != 5 {
		t.Errorf("Sum = %d, want 5", s.Sum())
	}
}

func TestSpeedsClone(t *testing.T) {
	s := Speeds{1, 2}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone must copy")
	}
}

func TestVectorBasics(t *testing.T) {
	x := Vector{3, 0, -2}
	if x.Total() != 1 {
		t.Errorf("Total = %d, want 1", x.Total())
	}
	if !x.HasNegative() {
		t.Error("HasNegative should be true")
	}
	if (Vector{0, 1}).HasNegative() {
		t.Error("HasNegative on non-negative vector")
	}
	f := x.Float()
	if f[0] != 3 || f[2] != -2 {
		t.Errorf("Float = %v", f)
	}
	c := x.Clone()
	c[0] = 99
	if x[0] != 3 {
		t.Error("Clone must copy")
	}
}

func TestNewTokens(t *testing.T) {
	d, err := NewTokens(Vector{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d[0]) != 2 || len(d[1]) != 0 || len(d[2]) != 1 {
		t.Errorf("token counts wrong: %v", d)
	}
	for _, tasks := range d {
		for _, task := range tasks {
			if task.Weight != 1 || task.Dummy {
				t.Errorf("token %+v should be unit weight non-dummy", task)
			}
		}
	}
	if _, err := NewTokens(Vector{-1}); err != nil {
	} else {
		t.Error("negative counts should error")
	}
}

func TestTaskDistValidate(t *testing.T) {
	ok := TaskDist{{{Weight: 2}}, {}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid dist rejected: %v", err)
	}
	bad := TaskDist{{{Weight: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-weight task should error")
	}
}

func TestTaskDistLoads(t *testing.T) {
	d := TaskDist{
		{{Weight: 2}, {Weight: 3, Dummy: true}},
		{{Weight: 1}},
		{},
	}
	loads := d.Loads()
	if loads[0] != 5 || loads[1] != 1 || loads[2] != 0 {
		t.Errorf("Loads = %v", loads)
	}
	real := d.LoadsExcludingDummies()
	if real[0] != 2 || real[1] != 1 {
		t.Errorf("LoadsExcludingDummies = %v", real)
	}
	if d.MaxWeight() != 3 {
		t.Errorf("MaxWeight = %d, want 3", d.MaxWeight())
	}
	if d.CountTasks() != 3 {
		t.Errorf("CountTasks = %d, want 3", d.CountTasks())
	}
	if (TaskDist{{}}).MaxWeight() != 1 {
		t.Error("empty dist MaxWeight should be 1 (dummy weight)")
	}
}

func TestTaskDistClone(t *testing.T) {
	d := TaskDist{{{Weight: 2}}}
	c := d.Clone()
	c[0][0].Weight = 9
	if d[0][0].Weight != 2 {
		t.Error("Clone must deep-copy tasks")
	}
}

func TestMakespans(t *testing.T) {
	ms, err := Makespans(Vector{6, 4}, Speeds{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0] != 3 || ms[1] != 4 {
		t.Errorf("Makespans = %v, want [3 4]", ms)
	}
	if _, err := Makespans(Vector{1}, Speeds{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxMinDiscrepancy(t *testing.T) {
	got, err := MaxMinDiscrepancy(Vector{6, 4, 10}, Speeds{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Makespans: 3, 4, 5 => discrepancy 2.
	if got != 2 {
		t.Errorf("MaxMin = %v, want 2", got)
	}
	if _, err := MaxMinDiscrepancy(Vector{1}, Speeds{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxAvgDiscrepancy(t *testing.T) {
	// W = 20, S = 5, balanced makespan 4; max makespan = 10/2 = 5.
	got, err := MaxAvgDiscrepancy(Vector{6, 4, 10}, Speeds{2, 1, 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MaxAvg = %v, want 1", got)
	}
}

func TestPotential(t *testing.T) {
	// Perfectly balanced: zero potential.
	got, err := Potential(Vector{4, 2, 2}, Speeds{2, 1, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("balanced potential = %v, want 0", got)
	}
	// Known value: x = (3, 1), s = (1, 1), W = 4 => deviations ±1, Φ = 2.
	got, err = Potential(Vector{3, 1}, Speeds{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("Φ = %v, want 2", got)
	}
	if _, err := Potential(Vector{1}, Speeds{1, 1}, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPotentialFloat(t *testing.T) {
	got, err := PotentialFloat([]float64{3, 1}, Speeds{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Φ = %v, want 2", got)
	}
	if _, err := PotentialFloat([]float64{1}, Speeds{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxMinDiscrepancyFloat(t *testing.T) {
	got, err := MaxMinDiscrepancyFloat([]float64{2, 8}, Speeds{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MaxMinFloat = %v, want 2", got)
	}
	if _, err := MaxMinDiscrepancyFloat([]float64{1}, Speeds{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

// Property: for any non-negative loads with uniform speeds, max-avg
// discrepancy is at most max-min discrepancy, and both are non-negative.
func TestDiscrepancyOrderingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		x := make(Vector, len(raw))
		for i, v := range raw {
			x[i] = int64(v)
		}
		s := UniformSpeeds(len(x))
		mm, err := MaxMinDiscrepancy(x, s)
		if err != nil {
			return false
		}
		ma, err := MaxAvgDiscrepancy(x, s, x.Total())
		if err != nil {
			return false
		}
		return mm >= -1e-12 && ma >= -1e-12 && ma <= mm+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the potential is invariant under permuting nodes with equal
// speeds and scales quadratically when the deviation doubles.
func TestPotentialQuadraticProperty(t *testing.T) {
	f := func(dev uint8) bool {
		d := int64(dev%50) + 1
		base := Vector{10 + d, 10 - d}
		double := Vector{10 + 2*d, 10 - 2*d}
		s := UniformSpeeds(2)
		p1, err := Potential(base, s, 20)
		if err != nil {
			return false
		}
		p2, err := Potential(double, s, 20)
		if err != nil {
			return false
		}
		return math.Abs(p2-4*p1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
