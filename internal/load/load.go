// Package load defines the workload model of the paper: integer-weight tasks
// assigned to nodes with integer speeds, together with the makespan and
// discrepancy metrics (max-min and max-avg) and the quadratic potential
// function used throughout the discrete load balancing literature.
package load

import (
	"errors"
	"fmt"
	"math"
)

// Task is a single non-divisible work item. Weight is a positive integer
// (tasks of weight 1 are the paper's "tokens"). Dummy marks tokens created
// by Algorithm 1/2's infinite source; they participate in balancing like any
// other task and are eliminated only when measuring real load.
type Task struct {
	Weight int64
	Dummy  bool
}

// Speeds holds the processing speed s_i >= 1 of every node. The paper
// normalizes the minimum speed to 1; Validate enforces s_i >= 1.
type Speeds []int64

// UniformSpeeds returns n speeds all equal to 1.
func UniformSpeeds(n int) Speeds {
	s := make(Speeds, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// Validate checks that every speed is at least 1.
func (s Speeds) Validate() error {
	if len(s) == 0 {
		return errors.New("load: speeds must be non-empty")
	}
	for i, v := range s {
		if v < 1 {
			return fmt.Errorf("load: speed of node %d is %d, must be >= 1", i, v)
		}
	}
	return nil
}

// Sum returns S, the total capacity of the network.
func (s Speeds) Sum() int64 {
	var total int64
	for _, v := range s {
		total += v
	}
	return total
}

// Clone returns a copy.
func (s Speeds) Clone() Speeds {
	out := make(Speeds, len(s))
	copy(out, s)
	return out
}

// Vector is an integer load vector: total task weight per node. Baseline
// processes that can produce the literature's "negative load" may hold
// negative entries.
type Vector []int64

// Clone returns a copy.
func (x Vector) Clone() Vector {
	out := make(Vector, len(x))
	copy(out, x)
	return out
}

// Total returns W, the total load.
func (x Vector) Total() int64 {
	var w int64
	for _, v := range x {
		w += v
	}
	return w
}

// Float converts to a float64 vector (for seeding continuous processes).
func (x Vector) Float() []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}

// HasNegative reports whether any node holds negative load.
func (x Vector) HasNegative() bool {
	for _, v := range x {
		if v < 0 {
			return true
		}
	}
	return false
}

// TaskDist is a distribution of whole tasks over nodes.
type TaskDist [][]Task

// NewTokens builds a TaskDist of unit-weight tasks from token counts.
func NewTokens(counts Vector) (TaskDist, error) {
	d := make(TaskDist, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("load: node %d has negative token count %d", i, c)
		}
		d[i] = make([]Task, c)
		for k := range d[i] {
			d[i][k] = Task{Weight: 1}
		}
	}
	return d, nil
}

// Validate checks that every task has positive weight.
func (d TaskDist) Validate() error {
	for i, tasks := range d {
		for k, t := range tasks {
			if t.Weight < 1 {
				return fmt.Errorf("load: node %d task %d has weight %d, must be >= 1", i, k, t.Weight)
			}
		}
	}
	return nil
}

// Loads returns the per-node total task weight.
func (d TaskDist) Loads() Vector {
	x := make(Vector, len(d))
	for i, tasks := range d {
		for _, t := range tasks {
			x[i] += t.Weight
		}
	}
	return x
}

// LoadsExcludingDummies returns per-node total weight of non-dummy tasks,
// i.e. the real load after the paper's end-of-process dummy elimination.
func (d TaskDist) LoadsExcludingDummies() Vector {
	x := make(Vector, len(d))
	for i, tasks := range d {
		for _, t := range tasks {
			if !t.Dummy {
				x[i] += t.Weight
			}
		}
	}
	return x
}

// MaxWeight returns wmax over all tasks (at least 1 even for empty
// distributions, since dummy tokens have weight 1).
func (d TaskDist) MaxWeight() int64 {
	var w int64 = 1
	for _, tasks := range d {
		for _, t := range tasks {
			if t.Weight > w {
				w = t.Weight
			}
		}
	}
	return w
}

// Clone deep-copies the distribution.
func (d TaskDist) Clone() TaskDist {
	out := make(TaskDist, len(d))
	for i, tasks := range d {
		out[i] = append([]Task(nil), tasks...)
	}
	return out
}

// CountTasks returns the total number of tasks.
func (d TaskDist) CountTasks() int {
	total := 0
	for _, tasks := range d {
		total += len(tasks)
	}
	return total
}

// Makespans returns x_i/s_i for every node.
func Makespans(x Vector, s Speeds) ([]float64, error) {
	if len(x) != len(s) {
		return nil, fmt.Errorf("load: vector length %d != speeds length %d", len(x), len(s))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = float64(x[i]) / float64(s[i])
	}
	return out, nil
}

// MaxMinDiscrepancy returns the difference between the maximum and minimum
// makespan of the assignment.
func MaxMinDiscrepancy(x Vector, s Speeds) (float64, error) {
	ms, err := Makespans(x, s)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range ms {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	return hi - lo, nil
}

// MaxAvgDiscrepancy returns the difference between the maximum makespan and
// the makespan W/S of the perfectly balanced allocation. avgLoad is W (the
// real total weight, which may differ from x.Total() when dummies exist).
func MaxAvgDiscrepancy(x Vector, s Speeds, totalWeight int64) (float64, error) {
	ms, err := Makespans(x, s)
	if err != nil {
		return 0, err
	}
	hi := math.Inf(-1)
	for _, m := range ms {
		hi = math.Max(hi, m)
	}
	return hi - float64(totalWeight)/float64(s.Sum()), nil
}

// Potential is the quadratic potential Φ(x) = Σ_i (x_i - s_i*W/S)² used by
// Muthukrishnan et al. and Ghosh–Muthukrishnan (with speeds as in Elsässer,
// Monien, Schamberger).
func Potential(x Vector, s Speeds, totalWeight int64) (float64, error) {
	if len(x) != len(s) {
		return 0, fmt.Errorf("load: vector length %d != speeds length %d", len(x), len(s))
	}
	ratio := float64(totalWeight) / float64(s.Sum())
	sum := 0.0
	for i := range x {
		dev := float64(x[i]) - float64(s[i])*ratio
		sum += dev * dev
	}
	return sum, nil
}

// PotentialFloat is Potential for continuous (float64) load vectors.
func PotentialFloat(x []float64, s Speeds) (float64, error) {
	if len(x) != len(s) {
		return 0, fmt.Errorf("load: vector length %d != speeds length %d", len(x), len(s))
	}
	var total float64
	for _, v := range x {
		total += v
	}
	ratio := total / float64(s.Sum())
	sum := 0.0
	for i := range x {
		dev := x[i] - float64(s[i])*ratio
		sum += dev * dev
	}
	return sum, nil
}

// MaxMinDiscrepancyFloat is MaxMinDiscrepancy for continuous load vectors.
func MaxMinDiscrepancyFloat(x []float64, s Speeds) (float64, error) {
	if len(x) != len(s) {
		return 0, fmt.Errorf("load: vector length %d != speeds length %d", len(x), len(s))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range x {
		m := x[i] / float64(s[i])
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	return hi - lo, nil
}
