package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// FormatTable1 renders Table 1 rows in the paper's layout: one block per
// graph class, one line per scheme.
func FormatTable1(rows []Row) string {
	return FormatRows("Table 1 — final max-min discrepancy at T (diffusion model)", rows)
}

// FormatRows renders Row groups under an arbitrary title (used by Table 1
// and the extension Table 3).
func FormatRows(title string, rows []Row) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	byClass := map[GraphClass][]Row{}
	var order []GraphClass
	for _, r := range rows {
		if _, ok := byClass[r.Class]; !ok {
			order = append(order, r.Class)
		}
		byClass[r.Class] = append(byClass[r.Class], r)
	}
	for _, class := range order {
		group := byClass[class]
		first := group[0]
		fmt.Fprintf(&b, "\n%s  (n=%d, d=%d, T=%d)\n", class, first.N, first.MaxDeg, first.T)
		fmt.Fprintf(&b, "  %-30s %10s %10s %10s %8s %5s\n",
			"scheme", "max-min", "mean-mm", "max-avg", "dummies", "neg")
		for _, r := range group {
			fmt.Fprintf(&b, "  %-30s %10.2f %10.2f %10.2f %8d %5v\n",
				r.Scheme, r.MaxMin, r.MeanMM, r.MaxAvg, r.Dummies, r.Neg)
		}
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows: one block per (graph class, model).
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — final max-min discrepancy at T (matching model)\n")
	type key struct {
		class GraphClass
		model MatchingModel
	}
	byKey := map[key][]Table2Row{}
	var order []key
	for _, r := range rows {
		k := key{r.Class, r.Model}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], r)
	}
	for _, k := range order {
		group := byKey[k]
		first := group[0]
		fmt.Fprintf(&b, "\n%s / %s matchings  (n=%d, d=%d, T=%d)\n",
			k.class, k.model, first.N, first.MaxDeg, first.T)
		fmt.Fprintf(&b, "  %-22s %10s %10s %10s %8s\n",
			"scheme", "max-min", "mean-mm", "max-avg", "dummies")
		for _, r := range group {
			fmt.Fprintf(&b, "  %-22s %10.2f %10.2f %10.2f %8d\n",
				r.Scheme, r.MaxMin, r.MeanMM, r.MaxAvg, r.Dummies)
		}
	}
	return b.String()
}

// FormatScalePoints renders scaling series grouped by series name, sorted by
// the swept parameter.
func FormatScalePoints(title string, points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	bySeries := map[string][]ScalePoint{}
	var order []string
	for _, p := range points {
		if _, ok := bySeries[p.Series]; !ok {
			order = append(order, p.Series)
		}
		bySeries[p.Series] = append(bySeries[p.Series], p)
	}
	for _, name := range order {
		series := bySeries[name]
		sort.Slice(series, func(i, j int) bool { return series[i].X < series[j].X })
		fmt.Fprintf(&b, "\n%s\n", name)
		fmt.Fprintf(&b, "  %10s %12s %12s %12s\n", "x", "value", "bound", "extra")
		for _, p := range series {
			fmt.Fprintf(&b, "  %10.4g %12.3f %12.3f %12.3f\n", p.X, p.Value, p.Bound, p.Extra)
		}
	}
	return b.String()
}

// FormatConvergence renders convergence-time rows.
func FormatConvergence(points []ConvergencePoint) string {
	sort.Slice(points, func(i, j int) bool { return points[i].Graph < points[j].Graph })
	var b strings.Builder
	b.WriteString("Convergence times from point mass (continuous processes)\n")
	fmt.Fprintf(&b, "  %-16s %6s %9s %7s %8s %8s %8s\n",
		"graph", "n", "lambda", "beta*", "T(FOS)", "T(SOS)", "T(match)")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-16s %6d %9.5f %7.4f %8d %8d %8d\n",
			p.Graph, p.N, p.Lambda, p.Beta, p.TFOS, p.TSOS, p.TMatch)
	}
	return b.String()
}
