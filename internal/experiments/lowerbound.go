package experiments

import (
	"fmt"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CycleLowerBound contrasts round-down FOS with Algorithm 1 on cycles of
// growing size. Round-down's final discrepancy is Ω(d·diam(G)) (Friedrich
// et al.; Ghosh–Muthukrishnan), so it must grow linearly with n on the
// cycle, while Theorem 3 keeps Algorithm 1 at O(d) = O(1). This experiment
// demonstrates the separation that Table 1's torus/cycle columns encode.
// Value = final max-min discrepancy; Bound = Theorem 3's 2d+2 for the
// Algorithm 1 series.
func CycleLowerBound(sizes []int, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var points []ScalePoint
	for _, n := range sizes {
		pair, err := cycleLowerBoundPoint(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("cycle n=%d: %w", n, err)
		}
		points = append(points, pair...)
	}
	return points, nil
}

func cycleLowerBoundPoint(n int, cfg Config) ([]ScalePoint, error) {
	g, err := graph.Cycle(n)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	// Adversarial half-loaded start: all load spread over one arc of the
	// cycle, which maximizes the cumulative rounding deficit across the
	// cut — the configuration behind the Ω(diam) lower bound.
	x0 := workload.Bipartition(g, cfg.TokensPerNode*int64(g.N()), n/4)
	factory := continuous.FOSFactory(g, s, alpha)
	bt, err := sim.TimeToBalance(factory, x0.Float(), cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	rd, err := BuildDiffusionScheme(SchemeRoundDown, g, s, alpha, x0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rdRes, err := sim.Run(rd, sim.Options{Rounds: bt, RealTotal: x0.Total()})
	if err != nil {
		return nil, err
	}
	dist, err := load.NewTokens(x0)
	if err != nil {
		return nil, err
	}
	alg1, err := core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
	if err != nil {
		return nil, err
	}
	a1Res, err := sim.Run(alg1, sim.Options{Rounds: bt, RealTotal: x0.Total()})
	if err != nil {
		return nil, err
	}
	return []ScalePoint{
		{Series: "round-down-vs-n(cycle)", X: float64(n), Value: rdRes.MaxMin, Extra: float64(bt)},
		{Series: "alg1-vs-n(cycle)", X: float64(n), Value: a1Res.MaxMin,
			Bound: float64(2*g.MaxDegree() + 2), Extra: float64(bt)},
	}, nil
}
