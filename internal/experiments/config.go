// Package experiments contains the drivers that regenerate the paper's
// evaluation artifacts: Table 1 (diffusion model), Table 2 (matching model),
// and the theorem-scaling experiments F1–F6 listed in DESIGN.md. The same
// drivers back cmd/lbtable, cmd/lbsweep and the repository benchmarks.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GraphClass identifies one of the graph families from the paper's tables.
type GraphClass int

const (
	// ClassArbitrary is a connected Erdős–Rényi graph (non-regular).
	ClassArbitrary GraphClass = iota + 1
	// ClassExpander is a random 3-regular graph (constant-degree expander
	// w.h.p.).
	ClassExpander
	// ClassHypercube is the log2(n)-dimensional hypercube.
	ClassHypercube
	// ClassTorus is the 2-dimensional square torus.
	ClassTorus
	// ClassTorus3D is the 3-dimensional cubic torus (the "r-dim tori,
	// r = O(1)" column of the paper's tables at r = 3).
	ClassTorus3D
)

// String implements fmt.Stringer.
func (c GraphClass) String() string {
	switch c {
	case ClassArbitrary:
		return "arbitrary"
	case ClassExpander:
		return "expander-3reg"
	case ClassHypercube:
		return "hypercube"
	case ClassTorus:
		return "torus-2d"
	case ClassTorus3D:
		return "torus-3d"
	default:
		return fmt.Sprintf("GraphClass(%d)", int(c))
	}
}

// BuildClass instantiates a graph of the given class with approximately n
// nodes (hypercubes round n down to a power of two; tori to a square).
func BuildClass(c GraphClass, n int, seed int64) (*graph.Graph, error) {
	switch c {
	case ClassArbitrary:
		rng := rand.New(rand.NewSource(seed))
		// Average degree about 8, comfortably connected, non-regular.
		p := 8.0 / float64(n-1)
		if p > 1 {
			p = 1
		}
		return graph.ErdosRenyi(n, p, rng)
	case ClassExpander:
		rng := rand.New(rand.NewSource(seed))
		if n%2 == 1 {
			n++
		}
		return graph.RandomRegular(n, 3, rng)
	case ClassHypercube:
		dim := 0
		for (1 << (dim + 1)) <= n {
			dim++
		}
		return graph.Hypercube(dim)
	case ClassTorus:
		side := 3
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Torus(side, side)
	case ClassTorus3D:
		side := 3
		for (side+1)*(side+1)*(side+1) <= n {
			side++
		}
		return graph.Torus(side, side, side)
	default:
		return nil, fmt.Errorf("experiments: unknown graph class %v", c)
	}
}

// Config controls the size and statistical effort of the table experiments.
type Config struct {
	// N is the target node count per graph instance.
	N int
	// TokensPerNode sets the total load m = TokensPerNode * n, all placed
	// on node 0 (the adversarial point mass, K = m).
	TokensPerNode int64
	// Trials is the number of independent seeds for randomized schemes.
	Trials int
	// Seed is the base randomness seed.
	Seed int64
	// MaxRounds caps the continuous balancing-time probe.
	MaxRounds int
}

// DefaultConfig returns the paper-scale defaults used by cmd/lbtable.
func DefaultConfig() Config {
	return Config{
		N:             256,
		TokensPerNode: 64,
		Trials:        8,
		Seed:          1,
		MaxRounds:     500_000,
	}
}

// QuickConfig returns a reduced configuration for benchmarks and smoke
// tests.
func QuickConfig() Config {
	return Config{
		N:             64,
		TokensPerNode: 32,
		Trials:        3,
		Seed:          1,
		MaxRounds:     200_000,
	}
}

func (c Config) validate() error {
	if c.N < 4 {
		return fmt.Errorf("experiments: N %d too small", c.N)
	}
	if c.TokensPerNode < 1 {
		return fmt.Errorf("experiments: TokensPerNode %d must be >= 1", c.TokensPerNode)
	}
	if c.Trials < 1 {
		return fmt.Errorf("experiments: Trials %d must be >= 1", c.Trials)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("experiments: MaxRounds %d must be >= 1", c.MaxRounds)
	}
	return nil
}

// Row is one (graph class, scheme) cell of a reproduced table.
type Row struct {
	Class   GraphClass
	N       int
	MaxDeg  int
	Scheme  string
	T       int
	Trials  int
	MaxMin  float64 // worst final max-min discrepancy over trials
	MeanMM  float64 // mean final max-min discrepancy over trials
	MaxAvg  float64 // worst final max-avg discrepancy over trials
	Dummies int64   // total dummy weight created (worst trial)
	Neg     bool    // any trial drove a node negative
}
