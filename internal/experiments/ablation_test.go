package experiments

import (
	"math"
	"testing"
)

func TestPotentialDropTracksContinuous(t *testing.T) {
	cfg := quickCfg()
	points, err := PotentialDrop(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, p := range points {
		series[p.Series] = append(series[p.Series], p.Value)
	}
	cont := series["phi-continuous-fos"]
	if len(cont) != 21 {
		t.Fatalf("continuous series has %d points", len(cont))
	}
	// Continuous potential is strictly decreasing from a point mass until
	// numerically tiny.
	for i := 1; i < len(cont); i++ {
		if cont[i] > cont[i-1]+1e-9 && cont[i-1] > 1e-6 {
			t.Errorf("round %d: continuous Φ rose from %v to %v", i, cont[i-1], cont[i])
		}
	}
	// Algorithm 1's potential stays within an additive O((d·wmax)²·n)
	// envelope of the continuous one (by Lemma 6's per-node bound).
	alg1 := series["phi-alg1"]
	g, err := BuildClass(ClassHypercube, cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dw := float64(g.MaxDegree())
	envelope := float64(g.N()) * dw * dw
	for i := range alg1 {
		// (a+b)² <= 2a²+2b² => Φ_D <= 2Φ_C + 2n(d·wmax)².
		if alg1[i] > 2*cont[i]+2*envelope {
			t.Errorf("round %d: Φ_alg1 = %v far above continuous %v", i, alg1[i], cont[i])
		}
	}
}

func TestAlphaAblation(t *testing.T) {
	cfg := quickCfg()
	points, err := AlphaAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	var tDefault, tBoillat float64
	for _, p := range points {
		if p.Value > p.Bound {
			t.Errorf("%s: discrepancy %v > bound %v", p.Series, p.Value, p.Bound)
		}
		switch p.Series {
		case "alpha-default(1/(d+1))":
			tDefault = p.Extra
		case "alpha-boillat(1/2d)":
			tBoillat = p.Extra
		}
	}
	// Boillat's halved rates diffuse more slowly.
	if tBoillat < tDefault {
		t.Errorf("expected Boillat T (%v) >= default T (%v)", tBoillat, tDefault)
	}
}

func TestPolicyAblation(t *testing.T) {
	cfg := quickCfg()
	points, err := PolicyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Value > p.Bound {
			t.Errorf("%s: discrepancy %v > Theorem 3 bound %v (bound must hold for every policy)",
				p.Series, p.Value, p.Bound)
		}
	}
}

func TestBetaSweep(t *testing.T) {
	cfg := quickCfg()
	points, err := BetaSweep([]float64{1.0, 1.5, 1.8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// T must improve as beta approaches the cycle optimum (close to 2).
	if !(points[2].Value < points[0].Value) {
		t.Errorf("T(β=1.8)=%v should beat T(β=1)=%v on a cycle", points[2].Value, points[0].Value)
	}
	if points[0].Extra != 0 {
		t.Error("β=1 is FOS and must not induce negative load")
	}
}

func TestExcessVsRotor(t *testing.T) {
	cfg := quickCfg()
	points, err := ExcessVsRotor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if math.IsNaN(p.Value) || p.Value < 0 || p.Value > 100 {
			t.Errorf("%s: implausible max-min %v", p.Series, p.Value)
		}
	}
}
