package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table3 is this repository's extension table: the paper's *general model*
// — weighted tasks (wmax > 1) AND heterogeneous speeds — across the same
// graph classes as Table 1. Only Algorithm 1 carries a guarantee here
// (2·d·wmax + 2, Theorem 3); the prior schemes were analyzed for unit tasks
// and (mostly) uniform speeds, and are run on the total-weight vector for
// comparison (they may split what were whole tasks, so they solve a
// strictly easier, divisible variant — noted in the Scheme label).
func Table3(cfg Config, wmax int64, maxSpeed int64) ([]Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if wmax < 1 || maxSpeed < 1 {
		return nil, fmt.Errorf("experiments: wmax %d and maxSpeed %d must be >= 1", wmax, maxSpeed)
	}
	var rows []Row
	for _, class := range Table1Classes() {
		classRows, err := table3Class(cfg, class, wmax, maxSpeed)
		if err != nil {
			return nil, fmt.Errorf("table 3, %v: %w", class, err)
		}
		rows = append(rows, classRows...)
	}
	return rows, nil
}

func table3Class(cfg Config, class GraphClass, wmax, maxSpeed int64) ([]Row, error) {
	g, err := BuildClass(class, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(class)))
	s, err := workload.RandomSpeeds(g.N(), maxSpeed, rng)
	if err != nil {
		return nil, err
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	numTasks := int(cfg.TokensPerNode) * g.N() / 2
	dist, err := workload.PointMassWeightedTasks(g.N(), numTasks, 0, wmax, rng)
	if err != nil {
		return nil, err
	}
	x0 := dist.Loads()
	factory := continuous.FOSFactory(g, s, alpha)
	bt, err := sim.TimeToBalance(factory, x0.Float(), cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	realW := x0.Total()

	var rows []Row
	// Algorithm 1 on whole tasks — the only scheme with a guarantee here.
	fi, err := core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(fi, sim.Options{Rounds: bt, RealTotal: realW})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Class: class, N: g.N(), MaxDeg: g.MaxDegree(),
		Scheme: "Alg 1 (whole tasks)", T: bt, Trials: 1,
		MaxMin: res.MaxMin, MeanMM: res.MaxMin, MaxAvg: res.MaxAvg, Dummies: res.Dummies,
	})
	// Comparison schemes on the divisible total-weight vector.
	for _, kind := range []SchemeKind{SchemeRoundDown, SchemeExcess, SchemeAlg2} {
		trials := 1
		if kind.Randomized() {
			trials = cfg.Trials
		}
		row := Row{
			Class: class, N: g.N(), MaxDeg: g.MaxDegree(),
			Scheme: strings.TrimSpace(kind.String()) + " (unit split)", T: bt, Trials: trials,
		}
		var mms, mas []float64
		for trial := 0; trial < trials; trial++ {
			p, err := BuildDiffusionScheme(kind, g, s, alpha, x0, cfg.Seed+int64(41*trial+3))
			if err != nil {
				return nil, err
			}
			r, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: realW})
			if err != nil {
				return nil, err
			}
			mms = append(mms, r.MaxMin)
			mas = append(mas, r.MaxAvg)
			if r.Dummies > row.Dummies {
				row.Dummies = r.Dummies
			}
			row.Neg = row.Neg || r.WentNegative
		}
		mm := sim.Aggregate(mms)
		ma := sim.Aggregate(mas)
		row.MaxMin = mm.Max
		row.MeanMM = mm.Mean
		row.MaxAvg = ma.Max
		rows = append(rows, row)
	}
	return rows, nil
}
