package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func quickCfg() Config {
	cfg := QuickConfig()
	cfg.Trials = 2
	return cfg
}

func TestBuildClass(t *testing.T) {
	for _, class := range Table1Classes() {
		g, err := BuildClass(class, 64, 1)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if !g.IsConnected() {
			t.Errorf("%v: not connected", class)
		}
		if g.N() < 32 || g.N() > 70 {
			t.Errorf("%v: n = %d far from target 64", class, g.N())
		}
	}
	if _, err := BuildClass(GraphClass(99), 64, 1); err == nil {
		t.Error("unknown class should error")
	}
	hc, err := BuildClass(ClassHypercube, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hc.N() != 64 {
		t.Errorf("hypercube rounding: n = %d, want 64", hc.N())
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, bad := range []Config{
		{N: 1, TokensPerNode: 1, Trials: 1, MaxRounds: 1},
		{N: 8, TokensPerNode: 0, Trials: 1, MaxRounds: 1},
		{N: 8, TokensPerNode: 1, Trials: 0, MaxRounds: 1},
		{N: 8, TokensPerNode: 1, Trials: 1, MaxRounds: 0},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestSchemeKindStrings(t *testing.T) {
	for _, k := range append(DiffusionSchemes(), MatchingSchemes()...) {
		if strings.HasPrefix(k.String(), "SchemeKind(") {
			t.Errorf("scheme %d has no name", int(k))
		}
	}
	if !SchemeAlg2.Randomized() || SchemeAlg1.Randomized() {
		t.Error("Randomized flags wrong")
	}
}

func TestTable1ShapeAndBounds(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(Table1Classes()) * len(DiffusionSchemes())
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if math.IsNaN(r.MaxMin) || r.MaxMin < 0 {
			t.Errorf("%v/%s: bad max-min %v", r.Class, r.Scheme, r.MaxMin)
		}
		if r.T <= 0 {
			t.Errorf("%v: T = %d", r.Class, r.T)
		}
		// Headline claim: Algorithm 1's max-avg discrepancy obeys
		// Theorem 3 on every class.
		if r.Scheme == SchemeAlg1.String() {
			bound := float64(2*r.MaxDeg + 2)
			if r.MaxAvg > bound {
				t.Errorf("%v: Alg 1 max-avg %v > bound %v", r.Class, r.MaxAvg, bound)
			}
		}
	}
	out := FormatTable1(rows)
	for _, class := range Table1Classes() {
		if !strings.Contains(out, class.String()) {
			t.Errorf("formatted table missing class %v", class)
		}
	}
	if !strings.Contains(out, "Alg 1") || !strings.Contains(out, "round-down") {
		t.Error("formatted table missing schemes")
	}
}

func TestTable2ShapeAndBounds(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(Table1Classes()) * 2 * len(MatchingSchemes())
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if math.IsNaN(r.MaxMin) || r.MaxMin < 0 {
			t.Errorf("%v/%v/%s: bad max-min %v", r.Class, r.Model, r.Scheme, r.MaxMin)
		}
		if r.Neg {
			t.Errorf("%v/%v/%s: matching schemes cannot go negative", r.Class, r.Model, r.Scheme)
		}
		if r.Scheme == SchemeMatchAlg1.String() {
			bound := float64(2*r.MaxDeg + 2)
			if r.MaxAvg > bound {
				t.Errorf("%v/%v: Alg 1 max-avg %v > bound %v", r.Class, r.Model, r.MaxAvg, bound)
			}
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "periodic") || !strings.Contains(out, "random") {
		t.Error("formatted table missing models")
	}
}

func TestTheorem3ScalingDWithinBounds(t *testing.T) {
	cfg := quickCfg()
	points, err := Theorem3ScalingD([]int{3, 4}, []int{24, 48}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.Series == "alg1-vs-d(hypercube)" || p.Series == "alg1-vs-n(4-regular)" {
			if p.Value > p.Bound {
				t.Errorf("%s x=%v: value %v > bound %v", p.Series, p.X, p.Value, p.Bound)
			}
		}
	}
	out := FormatScalePoints("F1", points)
	if !strings.Contains(out, "alg1-vs-d(hypercube)") {
		t.Error("format missing series")
	}
}

func TestTheorem3ScalingWmaxWithinBounds(t *testing.T) {
	cfg := quickCfg()
	points, err := Theorem3ScalingWmax([]int64{1, 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Value > p.Bound {
			t.Errorf("wmax=%v: value %v > bound %v", p.X, p.Value, p.Bound)
		}
	}
}

func TestTheorem8ScalingSane(t *testing.T) {
	cfg := quickCfg()
	points, err := Theorem8Scaling([]int{3, 5}, []int{24}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Generous factor 3 on the w.h.p. bound.
		if p.Value > 3*p.Bound {
			t.Errorf("%s x=%v: value %v >> bound %v", p.Series, p.X, p.Value, p.Bound)
		}
	}
}

func TestConvergenceTimes(t *testing.T) {
	cfg := quickCfg()
	g1, err := graph.Cycle(24)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	points, err := ConvergenceTimes(map[string]*graph.Graph{"cycle": g1, "hyper": g2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Lambda <= 0 || p.Lambda >= 1 {
			t.Errorf("%s: λ = %v", p.Graph, p.Lambda)
		}
		if p.TFOS <= 0 || p.TSOS <= 0 || p.TMatch <= 0 {
			t.Errorf("%s: non-positive T", p.Graph)
		}
		if p.Graph == "cycle" && p.TSOS >= p.TFOS {
			t.Errorf("cycle: SOS (%d) should beat FOS (%d)", p.TSOS, p.TFOS)
		}
	}
	out := FormatConvergence(points)
	if !strings.Contains(out, "cycle") || !strings.Contains(out, "beta") {
		t.Error("format missing fields")
	}
}

func TestDummyTokenSweepZeroAtFloor(t *testing.T) {
	cfg := quickCfg()
	d := int64(4) // torus degree
	points, err := DummyTokenSweep([]int64{0, d}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Series == "dummies-"+SchemeAlg1.String() && p.X >= float64(d) && p.Value != 0 {
			t.Errorf("Alg 1 with ℓ=%v created %v dummies; Lemma 7 says zero", p.X, p.Value)
		}
	}
}

func TestSOSNegativeLoadCheck(t *testing.T) {
	cfg := quickCfg()
	points, err := SOSNegativeLoadCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, p := range points {
		got[p.Series] = p.Value
	}
	if got["negload-fos"] != 0 {
		t.Error("FOS must not induce negative load")
	}
	if got["negload-matching"] != 0 {
		t.Error("matching must not induce negative load")
	}
	if got["negload-sos"] != 1 {
		t.Error("SOS at β* on a cycle point mass should induce negative load")
	}
}

func TestAccumErrorCheck(t *testing.T) {
	cfg := quickCfg()
	maxErr, err := AccumErrorCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1+1e-9 {
		t.Errorf("accumulated error %v > 1", maxErr)
	}
}
