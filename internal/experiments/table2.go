package experiments

import (
	"fmt"

	"repro/internal/continuous"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MatchingModel selects between the two matching-model rows of Table 2.
type MatchingModel int

const (
	// ModelPeriodic uses the fixed matchings of a greedy edge colouring,
	// cycled periodically.
	ModelPeriodic MatchingModel = iota + 1
	// ModelRandom uses an independent random maximal matching per round.
	ModelRandom
)

// String implements fmt.Stringer.
func (m MatchingModel) String() string {
	switch m {
	case ModelPeriodic:
		return "periodic"
	case ModelRandom:
		return "random"
	default:
		return fmt.Sprintf("MatchingModel(%d)", int(m))
	}
}

// Table2Row extends Row with the matching model.
type Table2Row struct {
	Row
	Model MatchingModel
}

// Table2 reproduces Table 2: final max-min discrepancy of the matching-model
// discrete schemes at the continuous balancing time T, for both the periodic
// and the random matching models, on every graph class.
func Table2(cfg Config) ([]Table2Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, class := range Table1Classes() {
		for _, model := range []MatchingModel{ModelPeriodic, ModelRandom} {
			classRows, err := table2Class(cfg, class, model)
			if err != nil {
				return nil, fmt.Errorf("table 2, %v/%v: %w", class, model, err)
			}
			rows = append(rows, classRows...)
		}
	}
	return rows, nil
}

func table2Class(cfg Config, class GraphClass, model MatchingModel) ([]Table2Row, error) {
	g, err := BuildClass(class, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	newSched := func(trial int) (matching.Schedule, error) {
		switch model {
		case ModelPeriodic:
			return matching.NewPeriodicFromColoring(g)
		case ModelRandom:
			return matching.NewRandom(g, cfg.Seed+int64(31*trial)), nil
		default:
			return nil, fmt.Errorf("experiments: unknown matching model %v", model)
		}
	}
	rows := make([]Table2Row, 0, len(MatchingSchemes()))
	for _, kind := range MatchingSchemes() {
		trials := 1
		if kind.Randomized() || model == ModelRandom {
			trials = cfg.Trials
		}
		var maxMins, maxAvgs []float64
		row := Table2Row{
			Row:   Row{Class: class, N: g.N(), MaxDeg: g.MaxDegree(), Scheme: kind.String(), Trials: trials},
			Model: model,
		}
		for trial := 0; trial < trials; trial++ {
			sched, err := newSched(trial)
			if err != nil {
				return nil, err
			}
			bt, err := sim.TimeToBalance(continuous.MatchingFactory(g, s, sched), x0.Float(), cfg.MaxRounds)
			if err != nil {
				return nil, err
			}
			if bt > row.T {
				row.T = bt
			}
			p, err := BuildMatchingScheme(kind, g, s, sched, x0, cfg.Seed+int64(1000*trial+13))
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
			if err != nil {
				return nil, err
			}
			maxMins = append(maxMins, res.MaxMin)
			maxAvgs = append(maxAvgs, res.MaxAvg)
			if res.Dummies > row.Dummies {
				row.Dummies = res.Dummies
			}
			row.Neg = row.Neg || res.WentNegative
		}
		mm := sim.Aggregate(maxMins)
		ma := sim.Aggregate(maxAvgs)
		row.MaxMin = mm.Max
		row.MeanMM = mm.Mean
		row.MaxAvg = ma.Max
		rows = append(rows, row)
	}
	return rows, nil
}
