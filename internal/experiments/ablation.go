package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PotentialDrop traces the quadratic potential Φ(t) of the continuous FOS,
// Algorithm 1 and round-down on a hypercube from the point-mass start. The
// continuous series must contract by at least λ² per round (Muthukrishnan
// et al.); the discrete series track it until the rounding floor.
func PotentialDrop(cfg Config, rounds int) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := BuildClass(ClassHypercube, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	cont, err := continuous.NewFOS(g, s, alpha, x0.Float())
	if err != nil {
		return nil, err
	}
	dist, err := load.NewTokens(x0)
	if err != nil {
		return nil, err
	}
	alg1, err := core.NewFlowImitation(g, s, dist, continuous.FOSFactory(g, s, alpha), core.PolicyLIFO)
	if err != nil {
		return nil, err
	}
	rd, err := baseline.NewRoundDownDiffusion(g, s, alpha, x0)
	if err != nil {
		return nil, err
	}
	var points []ScalePoint
	w := x0.Total()
	for t := 0; t <= rounds; t++ {
		phiC, err := load.PotentialFloat(cont.Load(), s)
		if err != nil {
			return nil, err
		}
		phiA, err := load.Potential(alg1.Load(), s, w)
		if err != nil {
			return nil, err
		}
		phiR, err := load.Potential(rd.Load(), s, w)
		if err != nil {
			return nil, err
		}
		points = append(points,
			ScalePoint{Series: "phi-continuous-fos", X: float64(t), Value: phiC},
			ScalePoint{Series: "phi-alg1", X: float64(t), Value: phiA},
			ScalePoint{Series: "phi-round-down", X: float64(t), Value: phiR},
		)
		cont.Step()
		alg1.Step()
		rd.Step()
	}
	return points, nil
}

// AlphaAblation compares the two standard diffusion-parameter choices —
// α = 1/(max(d_i,d_j)+1) versus Boillat's α = 1/(2·max(d_i,d_j)) — on the
// balancing time T and Algorithm 1's final discrepancy. Value = final
// max-avg discrepancy, Extra = T.
func AlphaAblation(cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := BuildClass(ClassTorus, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	choices := []struct {
		name  string
		build func(*graph.Graph, load.Speeds) (continuous.Alphas, error)
	}{
		{"default(1/(d+1))", continuous.DefaultAlphas},
		{"boillat(1/2d)", continuous.BoillatAlphas},
	}
	var points []ScalePoint
	for idx, choice := range choices {
		alpha, err := choice.build(g, s)
		if err != nil {
			return nil, err
		}
		factory := continuous.FOSFactory(g, s, alpha)
		bt, err := sim.TimeToBalance(factory, x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", choice.name, err)
		}
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		p, err := core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
		if err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Series: "alpha-" + choice.name,
			X:      float64(idx),
			Value:  res.MaxAvg,
			Bound:  float64(2*g.MaxDegree() + 2),
			Extra:  float64(bt),
		})
	}
	return points, nil
}

// PolicyAblation compares Algorithm 1's task-selection policies on a
// weighted-task workload: Value = final max-avg discrepancy, Extra = number
// of dummy tokens. The Theorem 3 bound holds for every policy.
func PolicyAblation(cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := BuildClass(ClassTorus, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s, err := workload.RandomSpeeds(g.N(), 3, rng)
	if err != nil {
		return nil, err
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	dist, err := workload.PointMassWeightedTasks(g.N(), int(cfg.TokensPerNode)*g.N()/4, 0, 8, rng)
	if err != nil {
		return nil, err
	}
	x0 := dist.Loads()
	factory := continuous.FOSFactory(g, s, alpha)
	bt, err := sim.TimeToBalance(factory, x0.Float(), cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	var points []ScalePoint
	for idx, policy := range []core.TaskPolicy{core.PolicyLIFO, core.PolicyFIFO, core.PolicyLargestFirst} {
		p, err := core.NewFlowImitation(g, s, dist, factory, policy)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
		if err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Series: "policy-" + policy.String(),
			X:      float64(idx),
			Value:  res.MaxAvg,
			Bound:  float64(2*int64(g.MaxDegree())*dist.MaxWeight() + 2),
			Extra:  float64(res.Dummies),
		})
	}
	return points, nil
}

// BetaSweep measures the SOS balancing time across β values on a cycle
// (where the optimum is near 2) and whether each β induces negative load.
// Value = T, Extra = 1 if Definition 1 was violated.
func BetaSweep(betas []float64, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := graph.Cycle(cfg.N)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	var points []ScalePoint
	for _, beta := range betas {
		factory := continuous.SOSFactory(g, s, alpha, beta)
		bt, err := sim.TimeToBalance(factory, x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, fmt.Errorf("beta %v: %w", beta, err)
		}
		probe, err := factory(x0.Float())
		if err != nil {
			return nil, err
		}
		neg, _ := continuous.InducesNegativeLoad(probe, bt)
		negVal := 0.0
		if neg {
			negVal = 1
		}
		points = append(points, ScalePoint{
			Series: "sos-T-vs-beta(cycle)",
			X:      beta,
			Value:  float64(bt),
			Extra:  negVal,
		})
	}
	return points, nil
}

// ExcessVsRotor compares the randomized excess-token diffusion [9] with its
// deterministic rotor (round-robin) derandomization [5] on final max-min
// discrepancy, worst over cfg.Trials seeds.
func ExcessVsRotor(cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := BuildClass(ClassTorus, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	type builder func(seed int64) (sim.Discrete, error)
	schemes := map[string]builder{
		"excess-token": func(seed int64) (sim.Discrete, error) {
			return baseline.NewExcessToken(g, s, alpha, x0, rand.New(rand.NewSource(seed)))
		},
		"rotor-excess": func(seed int64) (sim.Discrete, error) {
			return baseline.NewRotorExcess(g, s, alpha, x0, rand.New(rand.NewSource(seed)))
		},
	}
	var points []ScalePoint
	for name, build := range schemes {
		worst := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			p, err := build(cfg.Seed + int64(97*trial))
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
			if err != nil {
				return nil, err
			}
			if res.MaxMin > worst {
				worst = res.MaxMin
			}
		}
		points = append(points, ScalePoint{Series: "maxmin-" + name, X: 0, Value: worst})
	}
	return points, nil
}
