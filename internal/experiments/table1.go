package experiments

import (
	"fmt"

	"repro/internal/continuous"
	"repro/internal/load"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1Classes lists the graph-class columns of Table 1 in paper order;
// the "r-dim tori" column is instantiated at both r = 2 and r = 3.
func Table1Classes() []GraphClass {
	return []GraphClass{ClassArbitrary, ClassExpander, ClassHypercube, ClassTorus, ClassTorus3D}
}

// Table1 reproduces Table 1: final max-min discrepancy of the diffusion-model
// discrete schemes at the continuous balancing time T, on every graph class,
// from the adversarial point-mass start. Randomized schemes are repeated
// over cfg.Trials seeds; the reported MaxMin is the worst trial.
func Table1(cfg Config) ([]Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var rows []Row
	for _, class := range Table1Classes() {
		classRows, err := table1Class(cfg, class)
		if err != nil {
			return nil, fmt.Errorf("table 1, %v: %w", class, err)
		}
		rows = append(rows, classRows...)
	}
	return rows, nil
}

func table1Class(cfg Config, class GraphClass) ([]Row, error) {
	g, err := BuildClass(class, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(DiffusionSchemes()))
	for _, kind := range DiffusionSchemes() {
		trials := 1
		if kind.Randomized() {
			trials = cfg.Trials
		}
		var maxMins, maxAvgs []float64
		row := Row{Class: class, N: g.N(), MaxDeg: g.MaxDegree(), Scheme: kind.String(), T: bt, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			p, err := BuildDiffusionScheme(kind, g, s, alpha, x0, cfg.Seed+int64(1000*trial+7))
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
			if err != nil {
				return nil, err
			}
			maxMins = append(maxMins, res.MaxMin)
			maxAvgs = append(maxAvgs, res.MaxAvg)
			if res.Dummies > row.Dummies {
				row.Dummies = res.Dummies
			}
			row.Neg = row.Neg || res.WentNegative
		}
		mm := sim.Aggregate(maxMins)
		ma := sim.Aggregate(maxAvgs)
		row.MaxMin = mm.Max
		row.MeanMM = mm.Mean
		row.MaxAvg = ma.Max
		rows = append(rows, row)
	}
	return rows, nil
}
