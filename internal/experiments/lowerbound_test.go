package experiments

import "testing"

func TestCycleLowerBoundSeparation(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxRounds = 2_000_000
	sizes := []int{16, 32, 64}
	points, err := CycleLowerBound(sizes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg1 := map[float64]float64{}
	rd := map[float64]float64{}
	for _, p := range points {
		switch p.Series {
		case "alg1-vs-n(cycle)":
			alg1[p.X] = p.Value
			if p.Value > p.Bound {
				t.Errorf("n=%v: Alg 1 max-min %v > bound %v", p.X, p.Value, p.Bound)
			}
		case "round-down-vs-n(cycle)":
			rd[p.X] = p.Value
		}
	}
	if len(alg1) != len(sizes) || len(rd) != len(sizes) {
		t.Fatalf("missing series points: alg1=%d rd=%d", len(alg1), len(rd))
	}
	// Round-down must grow with n (the Ω(diam) effect) while Alg 1 stays
	// flat; demand a clear separation at the largest size.
	if !(rd[64] > rd[16]) {
		t.Errorf("round-down should grow with n: rd(16)=%v rd(64)=%v", rd[16], rd[64])
	}
	if !(rd[64] > alg1[64]) {
		t.Errorf("round-down (%v) should exceed Alg 1 (%v) at n=64", rd[64], alg1[64])
	}
}

func TestTable3GeneralModel(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table3(cfg, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Classes())*4 {
		t.Fatalf("got %d rows, want %d", len(rows), len(Table1Classes())*4)
	}
	for _, r := range rows {
		if r.Scheme == "Alg 1 (whole tasks)" {
			bound := float64(2*int64(r.MaxDeg)*6 + 2)
			if r.MaxAvg > bound {
				t.Errorf("%v: Alg 1 max-avg %v > Theorem 3 bound %v", r.Class, r.MaxAvg, bound)
			}
		}
		if r.T <= 0 {
			t.Errorf("%v/%s: T = %d", r.Class, r.Scheme, r.T)
		}
	}
	if _, err := Table3(cfg, 0, 1); err == nil {
		t.Error("wmax < 1 should error")
	}
}
