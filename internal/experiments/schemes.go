package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/sim"
)

// SchemeKind enumerates the discrete schemes compared by the tables.
type SchemeKind int

const (
	// SchemeRoundDown is the round-down FOS of Rabani et al.
	SchemeRoundDown SchemeKind = iota + 1
	// SchemeDetAccum is the deterministic bounded-error rounding of
	// Friedrich et al.
	SchemeDetAccum
	// SchemeAlg1 is the paper's Algorithm 1 over FOS.
	SchemeAlg1
	// SchemeRandRound is the randomized rounding FOS of Friedrich et al.
	SchemeRandRound
	// SchemeExcess is the excess-token diffusion of Berenbrink et al.
	SchemeExcess
	// SchemeAlg2 is the paper's Algorithm 2 over FOS.
	SchemeAlg2
	// SchemeMatchRoundDown is round-down dimension exchange.
	SchemeMatchRoundDown
	// SchemeMatchRandRound is randomized-rounding dimension exchange
	// (Friedrich and Sauerwald).
	SchemeMatchRandRound
	// SchemeMatchAlg1 is Algorithm 1 over the matching process.
	SchemeMatchAlg1
	// SchemeMatchAlg2 is Algorithm 2 over the matching process.
	SchemeMatchAlg2
)

// String implements fmt.Stringer.
func (k SchemeKind) String() string {
	switch k {
	case SchemeRoundDown:
		return "round-down [37]"
	case SchemeDetAccum:
		return "deterministic [26]"
	case SchemeAlg1:
		return "Alg 1 (Thm 3)"
	case SchemeRandRound:
		return "rand-round [26]"
	case SchemeExcess:
		return "excess-token [9]"
	case SchemeAlg2:
		return "Alg 2 (Thm 8)"
	case SchemeMatchRoundDown:
		return "round-down [37]"
	case SchemeMatchRandRound:
		return "rand-round [24]"
	case SchemeMatchAlg1:
		return "Alg 1 (Thm 3)"
	case SchemeMatchAlg2:
		return "Alg 2 (Thm 8)"
	default:
		return fmt.Sprintf("SchemeKind(%d)", int(k))
	}
}

// Randomized reports whether the scheme needs multiple trials.
func (k SchemeKind) Randomized() bool {
	switch k {
	case SchemeRandRound, SchemeExcess, SchemeAlg2, SchemeMatchRandRound, SchemeMatchAlg2:
		return true
	default:
		return false
	}
}

// DiffusionSchemes lists the Table 1 schemes in presentation order.
func DiffusionSchemes() []SchemeKind {
	return []SchemeKind{
		SchemeRoundDown, SchemeDetAccum, SchemeAlg1,
		SchemeRandRound, SchemeExcess, SchemeAlg2,
	}
}

// MatchingSchemes lists the Table 2 schemes in presentation order.
func MatchingSchemes() []SchemeKind {
	return []SchemeKind{
		SchemeMatchRoundDown, SchemeMatchRandRound, SchemeMatchAlg1, SchemeMatchAlg2,
	}
}

// BuildDiffusionScheme instantiates a Table 1 scheme on (g, s, alpha) with
// initial token counts x0 and the given trial seed.
func BuildDiffusionScheme(k SchemeKind, g *graph.Graph, s load.Speeds, alpha continuous.Alphas, x0 load.Vector, seed int64) (sim.Discrete, error) {
	rng := rand.New(rand.NewSource(seed))
	fosFactory := continuous.FOSFactory(g, s, alpha)
	switch k {
	case SchemeRoundDown:
		return baseline.NewRoundDownDiffusion(g, s, alpha, x0)
	case SchemeDetAccum:
		return baseline.NewDeterministicAccum(g, s, alpha, x0)
	case SchemeAlg1:
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		return core.NewFlowImitation(g, s, dist, fosFactory, core.PolicyLIFO)
	case SchemeRandRound:
		return baseline.NewRandomizedRounding(g, s, alpha, x0, rng)
	case SchemeExcess:
		return baseline.NewExcessToken(g, s, alpha, x0, rng)
	case SchemeAlg2:
		return core.NewRandomizedFlowImitation(g, s, x0, fosFactory, rng)
	default:
		return nil, fmt.Errorf("experiments: %v is not a diffusion scheme", k)
	}
}

// BuildMatchingScheme instantiates a Table 2 scheme on (g, s) driven by
// sched with initial token counts x0 and the given trial seed.
func BuildMatchingScheme(k SchemeKind, g *graph.Graph, s load.Speeds, sched matching.Schedule, x0 load.Vector, seed int64) (sim.Discrete, error) {
	rng := rand.New(rand.NewSource(seed))
	factory := continuous.MatchingFactory(g, s, sched)
	switch k {
	case SchemeMatchRoundDown:
		return baseline.NewRoundDownMatching(g, s, sched, x0)
	case SchemeMatchRandRound:
		return baseline.NewRandomizedMatching(g, s, sched, x0, rng)
	case SchemeMatchAlg1:
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		return core.NewFlowImitation(g, s, dist, factory, core.PolicyLIFO)
	case SchemeMatchAlg2:
		return core.NewRandomizedFlowImitation(g, s, x0, factory, rng)
	default:
		return nil, fmt.Errorf("experiments: %v is not a matching scheme", k)
	}
}
