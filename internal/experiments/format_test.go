package experiments

import (
	"strings"
	"testing"
)

func TestFormatRowsGroupsByClass(t *testing.T) {
	rows := []Row{
		{Class: ClassHypercube, N: 16, MaxDeg: 4, Scheme: "a", T: 7, MaxMin: 1.5, MeanMM: 1.25, MaxAvg: 1},
		{Class: ClassHypercube, N: 16, MaxDeg: 4, Scheme: "b", T: 7, MaxMin: 3, MeanMM: 3, MaxAvg: 2, Dummies: 5, Neg: true},
		{Class: ClassTorus, N: 16, MaxDeg: 4, Scheme: "a", T: 9, MaxMin: 2, MeanMM: 2, MaxAvg: 1},
	}
	out := FormatRows("My Title", rows)
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title: %q", out[:20])
	}
	if strings.Count(out, "hypercube") != 1 || strings.Count(out, "torus-2d") != 1 {
		t.Error("each class should appear exactly once as a block header")
	}
	if !strings.Contains(out, "T=7") || !strings.Contains(out, "T=9") {
		t.Error("block headers should carry T")
	}
	if !strings.Contains(out, "true") {
		t.Error("negative-load flag missing")
	}
	if strings.Index(out, "hypercube") > strings.Index(out, "torus-2d") {
		t.Error("blocks should preserve first-seen order")
	}
}

func TestFormatScalePointsSortsByX(t *testing.T) {
	points := []ScalePoint{
		{Series: "s", X: 8, Value: 2},
		{Series: "s", X: 2, Value: 1},
		{Series: "s", X: 1.5, Value: 0.5},
	}
	out := FormatScalePoints("title", points)
	var xs []string
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] != "x" {
			xs = append(xs, fields[0])
		}
	}
	want := []string{"1.5", "2", "8"}
	if len(xs) != len(want) {
		t.Fatalf("got %d data lines (%v), want %d:\n%s", len(xs), xs, len(want), out)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("line %d: x = %q, want %q", i, xs[i], want[i])
		}
	}
}

func TestFormatConvergenceSortsByGraph(t *testing.T) {
	points := []ConvergencePoint{
		{Graph: "zebra", N: 4, Lambda: 0.5, Beta: 1.2, TFOS: 10, TSOS: 5, TMatch: 7},
		{Graph: "alpha", N: 8, Lambda: 0.9, Beta: 1.5, TFOS: 100, TSOS: 20, TMatch: 70},
	}
	out := FormatConvergence(points)
	if strings.Index(out, "alpha") > strings.Index(out, "zebra") {
		t.Error("convergence rows should be sorted by graph name")
	}
	if !strings.Contains(out, "0.90000") {
		t.Error("lambda formatting missing")
	}
}
