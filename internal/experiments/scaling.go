package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/workload"
)

// ScalePoint is one point of a scaling series ("figure" experiment).
type ScalePoint struct {
	Series string
	X      float64 // the swept parameter (d, n, wmax, ℓ, ...)
	Value  float64 // measured discrepancy (worst trial for randomized runs)
	Bound  float64 // the paper's bound at this point (0 if not applicable)
	Extra  float64 // experiment-specific auxiliary value
}

// Theorem3ScalingD measures Algorithm 1's final max-avg discrepancy against
// the Theorem 3 bound 2·d·wmax + 2 as the degree grows (hypercubes of
// dimension dims[...]), plus a flatness-in-n series on random 4-regular
// graphs of the given sizes. Unit tokens, so wmax = 1.
func Theorem3ScalingD(dims []int, sizes []int, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var points []ScalePoint
	for _, dim := range dims {
		g, err := graph.Hypercube(dim)
		if err != nil {
			return nil, err
		}
		val, err := alg1MaxAvg(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("hypercube dim %d: %w", dim, err)
		}
		points = append(points, ScalePoint{
			Series: "alg1-vs-d(hypercube)",
			X:      float64(dim),
			Value:  val,
			Bound:  float64(2*dim + 2),
		})
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g, err := graph.RandomRegular(n, 4, rng)
		if err != nil {
			return nil, err
		}
		val, err := alg1MaxAvg(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("random 4-regular n=%d: %w", n, err)
		}
		points = append(points, ScalePoint{
			Series: "alg1-vs-n(4-regular)",
			X:      float64(n),
			Value:  val,
			Bound:  float64(2*4 + 2),
		})
		// Contrast series: round-down grows with n on low-expansion
		// graphs; on expanders it is O(log n)-ish but still n-dependent.
		rdVal, err := roundDownMaxAvg(g, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Series: "round-down-vs-n(4-regular)",
			X:      float64(n),
			Value:  rdVal,
		})
	}
	return points, nil
}

func alg1MaxAvg(g *graph.Graph, cfg Config) (float64, error) {
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return 0, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return 0, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return 0, err
	}
	p, err := BuildDiffusionScheme(SchemeAlg1, g, s, alpha, x0, cfg.Seed)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
	if err != nil {
		return 0, err
	}
	return res.MaxAvg, nil
}

func roundDownMaxAvg(g *graph.Graph, cfg Config) (float64, error) {
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return 0, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return 0, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return 0, err
	}
	p, err := BuildDiffusionScheme(SchemeRoundDown, g, s, alpha, x0, cfg.Seed)
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
	if err != nil {
		return 0, err
	}
	return res.MaxAvg, nil
}

// Theorem3ScalingWmax measures Algorithm 1's final max-avg discrepancy as
// the maximum task weight grows, with heterogeneous speeds, against the
// bound 2·d·wmax + 2. The torus keeps d fixed at 4 so the sweep isolates
// wmax.
func Theorem3ScalingWmax(wmaxes []int64, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	side := 3
	for (side+1)*(side+1) <= cfg.N {
		side++
	}
	g, err := graph.Torus(side, side)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s, err := workload.RandomSpeeds(g.N(), 4, rng)
	if err != nil {
		return nil, err
	}
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	var points []ScalePoint
	numTasks := int(cfg.TokensPerNode) * g.N()
	for _, wmax := range wmaxes {
		dist, err := workload.PointMassWeightedTasks(g.N(), numTasks, 0, wmax, rng)
		if err != nil {
			return nil, err
		}
		x0 := dist.Loads()
		bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, err
		}
		p, err := core.NewFlowImitation(g, s, dist, continuous.FOSFactory(g, s, alpha), core.PolicyLIFO)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
		if err != nil {
			return nil, err
		}
		points = append(points, ScalePoint{
			Series: "alg1-vs-wmax(torus,speeds)",
			X:      float64(wmax),
			Value:  res.MaxAvg,
			Bound:  float64(2*int64(g.MaxDegree())*dist.MaxWeight() + 2),
			Extra:  float64(res.Dummies),
		})
	}
	return points, nil
}

// Theorem8Scaling measures Algorithm 2's final max-avg discrepancy (worst
// over cfg.Trials seeds) against the Theorem 8 shape d/4 + sqrt(d·ln n) as
// the degree grows on hypercubes, plus a flatness-in-n series on random
// 4-regular graphs.
func Theorem8Scaling(dims []int, sizes []int, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var points []ScalePoint
	for _, dim := range dims {
		g, err := graph.Hypercube(dim)
		if err != nil {
			return nil, err
		}
		val, err := alg2WorstMaxAvg(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("hypercube dim %d: %w", dim, err)
		}
		d := float64(dim)
		points = append(points, ScalePoint{
			Series: "alg2-vs-d(hypercube)",
			X:      d,
			Value:  val,
			Bound:  d/4 + math.Sqrt(d*math.Log(float64(g.N()))),
		})
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g, err := graph.RandomRegular(n, 4, rng)
		if err != nil {
			return nil, err
		}
		val, err := alg2WorstMaxAvg(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("random 4-regular n=%d: %w", n, err)
		}
		points = append(points, ScalePoint{
			Series: "alg2-vs-n(4-regular)",
			X:      float64(n),
			Value:  val,
			Bound:  1 + math.Sqrt(4*math.Log(float64(n))),
		})
	}
	return points, nil
}

func alg2WorstMaxAvg(g *graph.Graph, cfg Config) (float64, error) {
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return 0, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return 0, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := BuildDiffusionScheme(SchemeAlg2, g, s, alpha, x0, cfg.Seed+int64(101*trial+5))
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
		if err != nil {
			return 0, err
		}
		if res.MaxAvg > worst {
			worst = res.MaxAvg
		}
	}
	return worst, nil
}

// ConvergencePoint reports the measured balancing time of the continuous
// processes on one graph, together with the spectral quantities the paper's
// T bounds are stated in.
type ConvergencePoint struct {
	Graph    string
	N        int
	Lambda   float64
	Beta     float64
	TFOS     int
	TSOS     int
	TMatch   int
	OneMinus float64 // 1 - λ
}

// ConvergenceTimes measures T for FOS, SOS (optimal β*) and the periodic
// matching process on the given graphs, from the point-mass start.
func ConvergenceTimes(graphs map[string]*graph.Graph, cfg Config) ([]ConvergencePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var points []ConvergencePoint
	for name, g := range graphs {
		s := load.UniformSpeeds(g.N())
		alpha, err := continuous.DefaultAlphas(g, s)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		lambda, err := continuous.DiffusionLambda(g, s, alpha, 2000, rng)
		if err != nil {
			return nil, err
		}
		if lambda > 0.9999999 {
			lambda = 0.9999999
		}
		beta, err := spectral.OptimalSOSBeta(lambda)
		if err != nil {
			return nil, err
		}
		x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
		if err != nil {
			return nil, err
		}
		tf, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, fmt.Errorf("%s: FOS: %w", name, err)
		}
		ts, err := sim.TimeToBalance(continuous.SOSFactory(g, s, alpha, beta), x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, fmt.Errorf("%s: SOS: %w", name, err)
		}
		sched, err := matching.NewPeriodicFromColoring(g)
		if err != nil {
			return nil, err
		}
		tm, err := sim.TimeToBalance(continuous.MatchingFactory(g, s, sched), x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, fmt.Errorf("%s: matching: %w", name, err)
		}
		points = append(points, ConvergencePoint{
			Graph:    name,
			N:        g.N(),
			Lambda:   lambda,
			Beta:     beta,
			TFOS:     tf,
			TSOS:     ts,
			TMatch:   tm,
			OneMinus: 1 - lambda,
		})
	}
	return points, nil
}

// DummyTokenSweep measures how many dummy tokens Algorithms 1 and 2 create
// as a function of the per-speed initial-load floor ℓ, from the point-mass
// start shifted by ℓ·s_i (the Theorem 3(2)/8(2) condition: ℓ >= d·wmax for
// Algorithm 1 guarantees zero dummies).
func DummyTokenSweep(floors []int64, cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	side := 3
	for (side+1)*(side+1) <= cfg.N {
		side++
	}
	g, err := graph.Torus(side, side)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	base, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	var points []ScalePoint
	for _, ell := range floors {
		x0, err := workload.AddFloor(base, s, ell)
		if err != nil {
			return nil, err
		}
		bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
		if err != nil {
			return nil, err
		}
		for _, kind := range []SchemeKind{SchemeAlg1, SchemeAlg2} {
			p, err := BuildDiffusionScheme(kind, g, s, alpha, x0, cfg.Seed+ell)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()})
			if err != nil {
				return nil, err
			}
			points = append(points, ScalePoint{
				Series: "dummies-" + kind.String(),
				X:      float64(ell),
				Value:  float64(res.Dummies),
				Extra:  res.MaxMin,
			})
		}
	}
	return points, nil
}

// SOSNegativeLoadCheck verifies the paper's remark that among the supported
// processes only SOS can induce negative load (Definition 1): it runs FOS,
// SOS at β* and the periodic matching process from a point mass on a cycle
// (where λ is close to 1 and β* close to 2) and reports, per process,
// whether Definition 1 was violated and how many dummy tokens Algorithm 1
// needed on top of it.
func SOSNegativeLoadCheck(cfg Config) ([]ScalePoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := graph.Cycle(cfg.N)
	if err != nil {
		return nil, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lambda, err := continuous.DiffusionLambda(g, s, alpha, 4000, rng)
	if err != nil {
		return nil, err
	}
	if lambda > 0.9999999 {
		lambda = 0.9999999
	}
	beta, err := spectral.OptimalSOSBeta(lambda)
	if err != nil {
		return nil, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return nil, err
	}
	sched, err := matching.NewPeriodicFromColoring(g)
	if err != nil {
		return nil, err
	}
	rounds := 4 * cfg.N
	factories := map[string]continuous.Factory{
		"fos":      continuous.FOSFactory(g, s, alpha),
		"sos":      continuous.SOSFactory(g, s, alpha, beta),
		"matching": continuous.MatchingFactory(g, s, sched),
	}
	var points []ScalePoint
	for name, f := range factories {
		probe, err := f(x0.Float())
		if err != nil {
			return nil, err
		}
		neg, round := continuous.InducesNegativeLoad(probe, rounds)
		val := 0.0
		if neg {
			val = 1
		}
		dist, err := load.NewTokens(x0)
		if err != nil {
			return nil, err
		}
		fi, err := core.NewFlowImitation(g, s, dist, f, core.PolicyLIFO)
		if err != nil {
			return nil, err
		}
		for t := 0; t < rounds; t++ {
			fi.Step()
		}
		points = append(points, ScalePoint{
			Series: "negload-" + name,
			X:      float64(round),
			Value:  val,
			Extra:  float64(fi.DummiesCreated()),
			Bound:  beta,
		})
	}
	return points, nil
}

// AccumErrorCheck runs the deterministic baseline of Friedrich et al. and
// reports the largest accumulated rounding error seen, the bounded-error
// property their analysis relies on.
func AccumErrorCheck(cfg Config) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	g, err := BuildClass(ClassHypercube, cfg.N, cfg.Seed)
	if err != nil {
		return 0, err
	}
	s := load.UniformSpeeds(g.N())
	alpha, err := continuous.DefaultAlphas(g, s)
	if err != nil {
		return 0, err
	}
	x0, err := workload.PointMass(g.N(), cfg.TokensPerNode*int64(g.N()), 0)
	if err != nil {
		return 0, err
	}
	p, err := baseline.NewDeterministicAccum(g, s, alpha, x0)
	if err != nil {
		return 0, err
	}
	bt, err := sim.TimeToBalance(continuous.FOSFactory(g, s, alpha), x0.Float(), cfg.MaxRounds)
	if err != nil {
		return 0, err
	}
	if _, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total()}); err != nil {
		return 0, err
	}
	return p.MaxAccumError(), nil
}
