package discretelb_test

import (
	"math/rand"
	"testing"

	discretelb "repro"
)

func TestBalanceTokensAlg1Quickstart(t *testing.T) {
	g, err := discretelb.NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens, err := discretelb.PointMass(g.N(), 32*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discretelb.BalanceTokensAlg1(g, s, tokens)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(2*g.MaxDegree() + 2)
	if res.MaxAvg > bound {
		t.Errorf("max-avg %v > Theorem 3 bound %v", res.MaxAvg, bound)
	}
	if res.Rounds <= 0 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
	if res.FinalLoad.Total() != tokens.Total()+res.Dummies {
		t.Error("conservation violated")
	}
}

func TestBalanceTokensAlg2Quickstart(t *testing.T) {
	g, err := discretelb.NewTorus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens, err := discretelb.PointMass(g.N(), 32*int64(g.N()), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discretelb.BalanceTokensAlg2(g, s, tokens, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMin < 0 || res.MaxMin > 50 {
		t.Errorf("implausible max-min %v", res.MaxMin)
	}
}

// TestPublicAPIEndToEnd wires the exported pieces together the way an
// external user would: custom graph, custom speeds, weighted tasks, an
// explicit matching schedule, Algorithm 1 over dimension exchange.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := discretelb.NewGraph(6, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := discretelb.Speeds{1, 2, 1, 2, 1, 2}
	rng := rand.New(rand.NewSource(99))
	dist, err := discretelb.RandomWeightedTasks(g.N(), 120, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := discretelb.NewPeriodicFromColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	factory := discretelb.MatchingFactory(g, s, sched)
	bt, err := discretelb.TimeToBalance(factory, dist.Loads().Float(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := discretelb.NewFlowImitation(g, s, dist, factory, discretelb.PolicyFIFO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discretelb.Run(p, discretelb.RunOptions{
		Rounds:    bt,
		RealTotal: dist.Loads().Total(),
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(2*int64(g.MaxDegree())*dist.MaxWeight() + 2)
	if res.MaxAvg > bound {
		t.Errorf("max-avg %v > Theorem 3 bound %v", res.MaxAvg, bound)
	}
}

// TestCrossSchemeConsistency runs Algorithm 1 and round-down on the same
// instance and checks both reach a low-discrepancy state while conserving
// load — an integration test across core, baseline, continuous and sim.
func TestCrossSchemeConsistency(t *testing.T) {
	g, err := discretelb.NewRandomRegular(40, 4, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens, err := discretelb.PointMass(g.N(), 40*64, 0)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		t.Fatal(err)
	}
	factory := discretelb.FOSFactory(g, s, alpha)
	bt, err := discretelb.TimeToBalance(factory, tokens.Float(), 100000)
	if err != nil {
		t.Fatal(err)
	}

	dist, err := discretelb.NewTokens(tokens)
	if err != nil {
		t.Fatal(err)
	}
	alg1, err := discretelb.NewFlowImitation(g, s, dist, factory, discretelb.PolicyLIFO)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := discretelb.NewRoundDownDiffusion(g, s, alpha, tokens)
	if err != nil {
		t.Fatal(err)
	}
	resAlg1, err := discretelb.Run(alg1, discretelb.RunOptions{Rounds: bt, RealTotal: tokens.Total()})
	if err != nil {
		t.Fatal(err)
	}
	resRD, err := discretelb.Run(rd, discretelb.RunOptions{Rounds: bt, RealTotal: tokens.Total()})
	if err != nil {
		t.Fatal(err)
	}
	if resAlg1.MaxAvg > float64(2*g.MaxDegree()+2) {
		t.Errorf("Alg 1 exceeded its bound: %v", resAlg1.MaxAvg)
	}
	if resRD.FinalLoad.Total() != tokens.Total() {
		t.Error("round-down lost load")
	}
	if resRD.MaxMin > 1000 {
		t.Errorf("round-down did not balance at all: %v", resRD.MaxMin)
	}
}
