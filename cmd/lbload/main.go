// Command lbload is a YCSB-style load driver for lbserve's streaming
// ingest path. It generates a named scenario's event stream
// deterministically from a seed (see internal/workload's scenario
// registry), pushes it as NDJSON batches over POST /events/stream from
// concurrent client goroutines, and reports throughput, request-latency
// percentiles (p50/p95/p99), and the driver's memory/GC pressure —
// with periodic progress lines, a graceful SIGINT drain, and a JSON
// export whose fields mirror the BENCH_engine.json entry schema.
//
// Usage:
//
//	lbload -target http://127.0.0.1:8080 -scenario ci-smoke -duration 30s
//	       [-clients 8] [-batch 512] [-rate 0] [-pulse constant]
//	       [-pulse-floor 0.1] [-pulse-period 10s] [-tokens 4] [-wmax 1]
//	       [-seed 1] [-report 5s] [-step auto] [-out lbload.json]
//	       [-log-format text|json]
//
// Scenarios: steady, hotspot, burst, churn-storm, quiescent, ci-smoke.
// With -rate R the generator paces admission through a pulse-shaped
// token bucket (R events/s at the crest); with -rate 0 it runs as fast
// as the target accepts, which is how the throughput milestone is
// measured.
// A single generator goroutine owns the scenario, so the produced event
// sequence is identical for a given (scenario, seed, params) no matter
// how many clients deliver it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
}

type config struct {
	target      string
	scenario    string
	clients     int
	batch       int
	duration    time.Duration
	rate        float64
	pulse       string
	pulseFloor  float64
	pulsePeriod time.Duration
	tokens      int
	wmax        int64
	seed        int64
	report      time.Duration
	stepMode    string
	out         string
	timeout     time.Duration
	logFormat   string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.target, "target", "http://127.0.0.1:8080", "base URL of the lbserve daemon")
	flag.StringVar(&cfg.scenario, "scenario", "ci-smoke", "workload scenario ("+strings.Join(workload.ScenarioNames(), "|")+")")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client goroutines")
	flag.IntVar(&cfg.batch, "batch", 512, "events per NDJSON request")
	flag.DurationVar(&cfg.duration, "duration", 30*time.Second, "run length (SIGINT drains early)")
	flag.Float64Var(&cfg.rate, "rate", 0, "target events/s at the pulse crest (0 = unpaced)")
	flag.StringVar(&cfg.pulse, "pulse", "constant", "pacing pulse shape ("+strings.Join(workload.PulseNames(), "|")+")")
	flag.Float64Var(&cfg.pulseFloor, "pulse-floor", 0.1, "pulse trough as a fraction of the crest rate")
	flag.DurationVar(&cfg.pulsePeriod, "pulse-period", 10*time.Second, "pulse cycle length")
	flag.IntVar(&cfg.tokens, "tokens", 0, "mean tasks per arrival (0 = scenario default)")
	flag.Int64Var(&cfg.wmax, "wmax", 0, "task weights drawn from {1..wmax} (0 = scenario default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed (same seed = same event stream)")
	flag.DurationVar(&cfg.report, "report", 5*time.Second, "progress report interval")
	flag.StringVar(&cfg.stepMode, "step", "auto", "server step mode on the stream (auto|off)")
	flag.StringVar(&cfg.out, "out", "", "write the run's JSON result to this file")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request timeout")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "lifecycle log format ("+strings.Join(cli.LogFormats(), "|")+")")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		return err
	}
	logger := cli.NewLogger(cfg.logFormat, os.Stderr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("lbload: starting",
		"target", cfg.target, "scenario", cfg.scenario, "clients", cfg.clients,
		"batch", cfg.batch, "duration", cfg.duration.String(), "rate", cfg.rate,
		"step", cfg.stepMode, "seed", cfg.seed)
	res, err := runLoad(ctx, cfg, os.Stdout)
	if err != nil {
		return err
	}
	logger.Info("lbload: done",
		"events", res.Iterations, "seconds", res.Seconds, "events_per_sec", res.EventsPerSec,
		"p50_ms", res.P50Ms, "p95_ms", res.P95Ms, "p99_ms", res.P99Ms,
		"errors", res.Errors, "pacer_wait_s", res.PacerWaitSeconds)
	if cfg.out != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		logger.Info("lbload: result written", "path", cfg.out)
	}
	return nil
}

func (cfg *config) validate() error {
	if cfg.target == "" {
		return fmt.Errorf("lbload: -target must not be empty")
	}
	if err := cli.ValidateChoice("scenario", cfg.scenario, workload.ScenarioNames()); err != nil {
		return err
	}
	if err := cli.ValidatePositive("clients", int64(cfg.clients)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("batch", int64(cfg.batch)); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("duration", cfg.duration); err != nil {
		return err
	}
	if err := cli.ValidateNonNegativeFloat("rate", cfg.rate); err != nil {
		return err
	}
	if err := cli.ValidateChoice("pulse", cfg.pulse, workload.PulseNames()); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("pulse-period", cfg.pulsePeriod); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("tokens", int64(cfg.tokens)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("wmax", cfg.wmax); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("report", cfg.report); err != nil {
		return err
	}
	if err := cli.ValidateChoice("step", cfg.stepMode, []string{"auto", "off"}); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("timeout", cfg.timeout); err != nil {
		return err
	}
	if err := cli.ValidateChoice("log-format", cfg.logFormat, cli.LogFormats()); err != nil {
		return err
	}
	return nil
}

// Result is the JSON export of one run. name/scenario/iterations/
// ns_per_op mirror the BENCH_engine.json entry schema, so a run can be
// recorded in that file's history directly.
type Result struct {
	Name         string  `json:"name"`
	Scenario     string  `json:"scenario"`
	Date         string  `json:"date"`
	Goos         string  `json:"goos"`
	Goarch       string  `json:"goarch"`
	CPU          string  `json:"cpu,omitempty"`
	Command      string  `json:"command"`
	Seconds      float64 `json:"seconds"`
	Iterations   int64   `json:"iterations"` // events delivered
	NsPerOp      float64 `json:"ns_per_op"`  // wall nanoseconds per event
	EventsPerSec float64 `json:"events_per_sec"`
	Batches      int64   `json:"batches"`
	Errors       int64   `json:"errors"`

	// Request latency over the NDJSON batch POSTs.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Driver-side memory/GC pressure at the end of the run.
	HeapMB    float64 `json:"heap_mb"`
	SysMB     float64 `json:"sys_mb"`
	GCCycles  uint32  `json:"gc_cycles"`
	GCPauseMs float64 `json:"gc_pause_ms"`

	// Server state from the final snapshot (best-effort).
	ServerRound      int64   `json:"server_round"`
	ServerEvents     int64   `json:"server_events"`
	ServerPending    int     `json:"server_pending"`
	ServerRealTotal  int64   `json:"server_real_total"`
	ServerMaxAvg     float64 `json:"server_max_avg"`
	ServerFullAudits int64   `json:"server_full_audits"`

	// Cumulative per-stage engine.Step time scraped from the server's
	// GET /metrics/prom at the end of the run (best-effort; keyed by
	// engine.StageNames()).
	ServerStageSeconds map[string]float64 `json:"server_stage_seconds,omitempty"`
	// Activity-gate footprint from the same scrape: the engine_hot_nodes /
	// engine_hot_edges gauges, i.e. how much of the graph the last
	// balancing round actually touched. -1 when the scrape lacked the
	// families (pre-gate server).
	ServerHotNodes int64 `json:"server_hot_nodes"`
	ServerHotEdges int64 `json:"server_hot_edges"`
	// Wall time the generator spent blocked in the pacing token bucket.
	PacerWaitSeconds float64 `json:"pacer_wait_seconds"`
}

// snapshot is the slice of lbserve's GET /snapshot this driver reads.
type snapshot struct {
	Round      int64   `json:"round"`
	Nodes      int     `json:"nodes"`
	Events     int64   `json:"events_applied"`
	Pending    int     `json:"pending_events"`
	RealTotal  int64   `json:"real_total"`
	MaxAvg     float64 `json:"max_avg"`
	FullAudits int64   `json:"full_audits"`
	NodeIDs    []int   `json:"node_ids"`
}

// batchMsg is one pre-encoded NDJSON request body.
type batchMsg struct {
	payload []byte
	events  int
}

// stats aggregates across client goroutines.
type stats struct {
	events  atomic.Int64
	batches atomic.Int64
	bytes   atomic.Int64
	errors  atomic.Int64
	rounds  atomic.Int64 // balancing rounds the server stepped inline
	pending atomic.Int64 // last observed server queue depth
	hist    workload.LatencyHist

	mu      sync.Mutex
	lastErr error
}

func (st *stats) fail(err error) {
	st.errors.Add(1)
	st.mu.Lock()
	st.lastErr = err
	st.mu.Unlock()
}

// runLoad executes one load run against cfg.target, writing progress to
// out. It returns an error only when the run produced nothing (target
// unreachable, bad scenario); delivery errors during an otherwise
// productive run are counted in the result instead.
func runLoad(ctx context.Context, cfg config, out io.Writer) (*Result, error) {
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.clients * 2,
			MaxIdleConnsPerHost: cfg.clients * 2,
		},
	}
	defer client.CloseIdleConnections()

	snap0, err := fetchSnapshot(ctx, client, cfg.target)
	if err != nil {
		return nil, fmt.Errorf("lbload: cannot reach target: %w", err)
	}
	nodes := snap0.NodeIDs
	if len(nodes) == 0 {
		nodes = make([]int, snap0.Nodes)
		for i := range nodes {
			nodes[i] = i
		}
	}
	scn, err := workload.NewScenario(cfg.scenario)
	if err != nil {
		return nil, err
	}
	if err := scn.Init(workload.ScenarioParams{
		Nodes:  nodes,
		Seed:   cfg.seed,
		Tokens: cfg.tokens,
		Wmax:   cfg.wmax,
	}); err != nil {
		return nil, err
	}
	var bucket *workload.TokenBucket
	var pacerWait atomic.Int64 // nanoseconds blocked in bucket.Wait
	if cfg.rate > 0 {
		pulse, err := workload.ParsePulse(cfg.pulse, cfg.pulseFloor)
		if err != nil {
			return nil, err
		}
		burst := cfg.batch * cfg.clients
		bucket, err = workload.NewTokenBucket(cfg.rate, burst, pulse, cfg.pulsePeriod)
		if err != nil {
			return nil, err
		}
		bucket.SetWaitObserver(func(blocked time.Duration) {
			pacerWait.Add(int64(blocked))
		})
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &stats{}
	streamURL := strings.TrimRight(cfg.target, "/") + "/events/stream?step=" + cfg.stepMode

	// The generator goroutine owns the scenario: one seeded stream,
	// chunked into pre-encoded NDJSON bodies. Clients only deliver, so
	// GOMAXPROCS and scheduling never change what is sent.
	batches := make(chan batchMsg, cfg.clients*2)
	deadline := time.NewTimer(cfg.duration)
	defer deadline.Stop()
	go func() {
		defer close(batches)
		for {
			select {
			case <-runCtx.Done():
				return
			case <-deadline.C:
				return
			default:
			}
			buf := &bytes.Buffer{}
			buf.Grow(cfg.batch * 48)
			enc := json.NewEncoder(buf)
			for i := 0; i < cfg.batch; i++ {
				ev := scn.Next()
				if err := enc.Encode(&ev); err != nil {
					st.fail(fmt.Errorf("encode event: %w", err))
					return
				}
			}
			if bucket != nil {
				if err := bucket.Wait(runCtx, cfg.batch); err != nil {
					return
				}
			}
			select {
			case batches <- batchMsg{payload: buf.Bytes(), events: cfg.batch}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var aborted atomic.Bool
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			consecutive := 0
			for m := range batches {
				t0 := time.Now()
				rounds, pending, err := postStream(client, streamURL, m.payload)
				if err != nil {
					st.fail(err)
					consecutive++
					// A target that never answers should abort the run
					// instead of spinning for the full duration.
					if consecutive >= 25 && st.events.Load() == 0 {
						aborted.Store(true)
						cancel()
						return
					}
					continue
				}
				consecutive = 0
				st.hist.Record(time.Since(t0))
				st.events.Add(int64(m.events))
				st.batches.Add(1)
				st.bytes.Add(int64(len(m.payload)))
				st.rounds.Add(rounds)
				st.pending.Store(pending)
			}
		}()
	}

	// Periodic progress, modusGraph-style: interval throughput plus
	// cumulative latency percentiles and the driver's heap.
	reporterDone := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(reporterDone)
		ticker := time.NewTicker(cfg.report)
		defer ticker.Stop()
		var lastEvents int64
		lastT := start
		for {
			select {
			case <-runCtx.Done():
				return
			case now := <-ticker.C:
				ev := st.events.Load()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				fmt.Fprintf(out, "lbload: t=%5.1fs events=%d (%.0f/s) p50=%.2fms p95=%.2fms p99=%.2fms pending=%d errs=%d heap=%dMB gc=%d\n",
					now.Sub(start).Seconds(), ev,
					float64(ev-lastEvents)/now.Sub(lastT).Seconds(),
					msOf(st.hist.Quantile(0.50)), msOf(st.hist.Quantile(0.95)), msOf(st.hist.Quantile(0.99)),
					st.pending.Load(), st.errors.Load(), ms.HeapAlloc>>20, ms.NumGC)
				lastEvents, lastT = ev, now
			}
		}
	}()

	wg.Wait()
	cancel()
	<-reporterDone
	elapsed := time.Since(start)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res := &Result{
		Name:       "LbloadStream",
		Scenario:   cfg.scenario,
		Date:       time.Now().Format("2006-01-02"),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel(),
		Command:    fmt.Sprintf("lbload -scenario %s -clients %d -batch %d -duration %v -rate %v -pulse %s -seed %d", cfg.scenario, cfg.clients, cfg.batch, cfg.duration, cfg.rate, cfg.pulse, cfg.seed),
		Seconds:    elapsed.Seconds(),
		Iterations: st.events.Load(),
		Batches:    st.batches.Load(),
		Errors:     st.errors.Load(),
		P50Ms:      msOf(st.hist.Quantile(0.50)),
		P95Ms:      msOf(st.hist.Quantile(0.95)),
		P99Ms:      msOf(st.hist.Quantile(0.99)),
		MaxMs:      msOf(st.hist.Max()),
		HeapMB:     float64(ms.HeapAlloc) / (1 << 20),
		SysMB:      float64(ms.Sys) / (1 << 20),
		GCCycles:   ms.NumGC,
		GCPauseMs:  float64(ms.PauseTotalNs) / 1e6,
	}
	if res.Iterations > 0 {
		res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(res.Iterations)
		res.EventsPerSec = float64(res.Iterations) / elapsed.Seconds()
	}
	res.PacerWaitSeconds = time.Duration(pacerWait.Load()).Seconds()
	if snap, err := fetchSnapshot(context.Background(), client, cfg.target); err == nil {
		res.ServerRound = snap.Round
		res.ServerEvents = snap.Events
		res.ServerPending = snap.Pending
		res.ServerRealTotal = snap.RealTotal
		res.ServerMaxAvg = snap.MaxAvg
		res.ServerFullAudits = snap.FullAudits
	}
	res.ServerHotNodes, res.ServerHotEdges = -1, -1
	if series, err := fetchProm(context.Background(), client, cfg.target); err == nil {
		sums := make(map[string]float64)
		for _, stage := range engine.StageNames() {
			key := engine.MetricStepStageSeconds + `_sum{stage="` + stage + `"}`
			if v, ok := series[key]; ok {
				sums[stage] = v
			}
		}
		if len(sums) > 0 {
			res.ServerStageSeconds = sums
		}
		if v, ok := series["engine_hot_nodes"]; ok {
			res.ServerHotNodes = int64(v)
		}
		if v, ok := series["engine_hot_edges"]; ok {
			res.ServerHotEdges = int64(v)
		}
	}
	if res.Iterations == 0 {
		st.mu.Lock()
		lastErr := st.lastErr
		st.mu.Unlock()
		if lastErr != nil {
			return nil, fmt.Errorf("lbload: no events delivered: %w", lastErr)
		}
		if aborted.Load() {
			return nil, errors.New("lbload: no events delivered: run aborted")
		}
	}
	return res, nil
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// postStream delivers one NDJSON body and returns the rounds the server
// stepped inline plus its remaining queue depth.
func postStream(client *http.Client, url string, payload []byte) (rounds int64, pending int64, err error) {
	resp, err := client.Post(url, "application/x-ndjson", bytes.NewReader(payload))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Error   string `json:"error"`
		Rounds  int64  `json:"rounds"`
		Pending int64  `json:"pending"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); derr != nil && resp.StatusCode == http.StatusOK {
		return 0, 0, fmt.Errorf("decode stream response: %w", derr)
	}
	if resp.StatusCode != http.StatusOK {
		if body.Error != "" {
			return 0, 0, fmt.Errorf("stream rejected (status %d): %s", resp.StatusCode, body.Error)
		}
		return 0, 0, fmt.Errorf("stream rejected: status %d", resp.StatusCode)
	}
	return body.Rounds, body.Pending, nil
}

func fetchSnapshot(ctx context.Context, client *http.Client, target string) (*snapshot, error) {
	url := strings.TrimRight(target, "/") + "/snapshot?loads=1"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /snapshot: status %d", resp.StatusCode)
	}
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	if snap.Nodes < 1 {
		return nil, fmt.Errorf("snapshot reports %d nodes", snap.Nodes)
	}
	return &snap, nil
}

// fetchProm scrapes the server's Prometheus exposition into a series
// map (per-stage step-time sums, hot-set gauges). Validating the whole
// exposition on the way keeps lbload an end-to-end check of the
// /metrics/prom format.
func fetchProm(ctx context.Context, client *http.Client, target string) (map[string]float64, error) {
	url := strings.TrimRight(target, "/") + "/metrics/prom"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics/prom: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	series, err := obs.SampleMap(raw)
	if err != nil {
		return nil, fmt.Errorf("parse exposition: %w", err)
	}
	return series, nil
}

// cpuModel best-effort reads the CPU model for the result header.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
