package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/workload"
)

// startTarget runs a live engine behind the real HTTP handler, like a
// local lbserve: a side×side torus with tokensPerNode initial tasks.
func startTarget(t *testing.T, side int, tokensPerNode int64, lim engine.StreamLimits) (*httptest.Server, *engine.Server) {
	t.Helper()
	g, err := graph.Torus(side, side)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	x0 := make(load.Vector, n)
	for i := range x0 {
		x0[i] = tokensPerNode
	}
	dist, err := load.NewTokens(x0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Graph: g, Speeds: load.UniformSpeeds(n), Tasks: dist})
	if err != nil {
		t.Fatal(err)
	}
	sv := engine.NewServer(eng).WithStreamLimits(lim)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = sv.Do(func(e *engine.Engine) error { e.Close(); return nil })
	})
	return ts, sv
}

func smokeConfig(target string) config {
	return config{
		target:      target,
		scenario:    "ci-smoke",
		clients:     2,
		batch:       64,
		duration:    400 * time.Millisecond,
		pulse:       "constant",
		pulseFloor:  0.1,
		pulsePeriod: time.Second,
		seed:        1,
		report:      150 * time.Millisecond,
		stepMode:    "auto",
		timeout:     10 * time.Second,
		logFormat:   "text",
	}
}

// TestRunLoadScenarios drives every registered scenario end-to-end over
// HTTP: the run must deliver events without a single delivery error,
// and the target engine must come out ledger-consistent.
func TestRunLoadScenarios(t *testing.T) {
	for _, name := range workload.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			// A small pending bound guarantees inline steps even on a slow
			// (race-instrumented) host, so the applied-events assertions
			// below hold at any throughput.
			ts, sv := startTarget(t, 8, 8, engine.StreamLimits{MaxPending: 1024})
			cfg := smokeConfig(ts.URL)
			cfg.scenario = name
			var progress bytes.Buffer
			res, err := runLoad(context.Background(), cfg, &progress)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations == 0 || res.Batches == 0 {
				t.Fatalf("no events delivered: %+v", res)
			}
			if res.Errors != 0 {
				t.Fatalf("%d delivery errors: %+v", res.Errors, res)
			}
			if res.EventsPerSec <= 0 || res.NsPerOp <= 0 {
				t.Fatalf("throughput not computed: %+v", res)
			}
			if res.P99Ms < res.P50Ms {
				t.Fatalf("p99 %.3fms below p50 %.3fms", res.P99Ms, res.P50Ms)
			}
			if res.ServerFullAudits != 0 {
				t.Fatalf("run tripped %d full audits", res.ServerFullAudits)
			}
			if res.ServerEvents == 0 {
				t.Fatalf("server applied no events: %+v", res)
			}
			// The inline steps guaranteed above must surface as per-stage
			// timings in the /metrics/prom scrape.
			if len(res.ServerStageSeconds) == 0 {
				t.Fatalf("no server stage timings scraped: %+v", res)
			}
			if _, ok := res.ServerStageSeconds["event_apply"]; !ok {
				t.Fatalf("stage timings missing event_apply: %v", res.ServerStageSeconds)
			}
			var audited error
			if err := sv.Do(func(e *engine.Engine) error { audited = e.AuditFull(); return nil }); err != nil || audited != nil {
				t.Fatalf("post-run audit: do=%v audit=%v", err, audited)
			}
			if !strings.Contains(progress.String(), "lbload: t=") {
				t.Fatalf("no progress reports emitted:\n%s", progress.String())
			}
		})
	}
}

// TestRunLoadResultJSON pins the export schema: a result must marshal
// with the BENCH_engine.json field names.
func TestRunLoadResultJSON(t *testing.T) {
	ts, _ := startTarget(t, 6, 4, engine.StreamLimits{})
	cfg := smokeConfig(ts.URL)
	cfg.duration = 200 * time.Millisecond
	res, err := runLoad(context.Background(), cfg, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "scenario", "date", "goos", "command", "iterations", "ns_per_op", "events_per_sec", "p50_ms", "p95_ms", "p99_ms", "heap_mb", "gc_cycles", "server_full_audits", "pacer_wait_seconds"} {
		if _, ok := m[key]; !ok {
			t.Errorf("result JSON missing %q: %s", key, raw)
		}
	}
}

// TestRunLoadPaced checks that a rate-limited run still delivers and
// respects the pacing ceiling.
func TestRunLoadPaced(t *testing.T) {
	ts, _ := startTarget(t, 6, 4, engine.StreamLimits{})
	cfg := smokeConfig(ts.URL)
	cfg.batch = 50
	cfg.rate = 2000
	cfg.pulse = "sine"
	cfg.pulseFloor = 0.5
	cfg.pulsePeriod = 500 * time.Millisecond
	cfg.duration = 600 * time.Millisecond
	res, err := runLoad(context.Background(), cfg, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || res.Errors != 0 {
		t.Fatalf("paced run: %+v", res)
	}
	// After the initial burst drains, every batch blocks in the bucket, so
	// the observer must have accumulated real wait time.
	if res.PacerWaitSeconds <= 0 {
		t.Fatalf("paced run recorded no pacer wait: %+v", res)
	}
	// The bucket starts with a full burst (batch*clients), so allow it on
	// top of rate*duration — but the run must not blow far past that.
	ceiling := float64(cfg.rate)*res.Seconds + float64(cfg.batch*cfg.clients) + float64(cfg.batch)
	if float64(res.Iterations) > 1.5*ceiling {
		t.Fatalf("delivered %d events, pacing ceiling ~%.0f", res.Iterations, ceiling)
	}
}

// TestRunLoadUnreachableTarget must fail fast with a useful error, not
// spin for the whole duration.
func TestRunLoadUnreachableTarget(t *testing.T) {
	cfg := smokeConfig("http://127.0.0.1:1")
	cfg.timeout = time.Second
	if _, err := runLoad(context.Background(), cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("runLoad succeeded against a closed port")
	}
}

func TestConfigValidate(t *testing.T) {
	good := smokeConfig("http://localhost:1")
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	breakIt := []func(*config){
		func(c *config) { c.target = "" },
		func(c *config) { c.scenario = "bogus" },
		func(c *config) { c.clients = 0 },
		func(c *config) { c.batch = -1 },
		func(c *config) { c.duration = 0 },
		func(c *config) { c.rate = -5 },
		func(c *config) { c.pulse = "triangle" },
		func(c *config) { c.stepMode = "maybe" },
		func(c *config) { c.report = 0 },
	}
	for i, mutate := range breakIt {
		cfg := smokeConfig("http://localhost:1")
		mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: validate accepted bad config", i)
		}
	}
}

// TestStreamSoak is the CI soak: lbload drives the streaming ingest for
// LBLOAD_SOAK_DURATION (default 3s) and the run must stay flat — zero
// delivery errors, zero full audits, bounded total load, and a driver
// heap that does not climb through the run. LBLOAD_SOAK_MIN_EPS
// optionally enforces a throughput floor.
func TestStreamSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	duration := 3 * time.Second
	if env := os.Getenv("LBLOAD_SOAK_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LBLOAD_SOAK_DURATION: %v", err)
		}
		duration = d
	}

	ts, sv := startTarget(t, 32, 8, engine.StreamLimits{MaxPending: 4096})
	var w0 int64
	_ = sv.Do(func(e *engine.Engine) error { w0 = e.RealTotal(); return nil })

	cfg := smokeConfig(ts.URL)
	cfg.clients = 4
	cfg.batch = 256
	cfg.duration = duration
	cfg.report = time.Second

	// Sample the driver's heap through the run; a leak in the generator,
	// the histogram or the client pool shows up as a climbing profile.
	type sample struct{ heap uint64 }
	samples := make(chan sample, 4096)
	samplerCtx, stopSampler := context.WithCancel(context.Background())
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		ticker := time.NewTicker(200 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-ticker.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				select {
				case samples <- sample{heap: ms.HeapAlloc}:
				default:
				}
			}
		}
	}()

	res, err := runLoad(context.Background(), cfg, os.Stderr)
	stopSampler()
	<-samplerDone
	close(samples)
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Fatalf("soak had %d delivery errors", res.Errors)
	}
	if res.ServerFullAudits != 0 {
		t.Fatalf("soak tripped %d full audits; the ledger must carry the whole run", res.ServerFullAudits)
	}
	var audited error
	var w1 int64
	if err := sv.Do(func(e *engine.Engine) error {
		w1 = e.RealTotal()
		audited = e.AuditFull()
		return nil
	}); err != nil || audited != nil {
		t.Fatalf("post-soak audit: do=%v audit=%v", err, audited)
	}
	// ci-smoke pairs arrivals with completions, but a completion landing
	// on an under-stocked node removes fewer tasks than asked, so the
	// total load climbs to a self-limiting equilibrium set by the step
	// window (growth vanishes as nodes stay stocked). Bound the drift
	// well below the delivered arrival volume (~2 tokens/event): if
	// completions stopped working, drift would track that volume.
	if drift := w1 - w0; drift > res.Iterations/5+16384 {
		t.Fatalf("soak ballooned RealTotal %d -> %d over %d events", w0, w1, res.Iterations)
	}

	var heaps []float64
	for s := range samples {
		heaps = append(heaps, float64(s.heap))
	}
	if len(heaps) >= 8 {
		quarter := len(heaps) / 4
		avg := func(xs []float64) float64 {
			var sum float64
			for _, x := range xs {
				sum += x
			}
			return sum / float64(len(xs))
		}
		first := avg(heaps[:quarter])
		last := avg(heaps[len(heaps)-quarter:])
		// Generous bound: steady-state churn and GC timing wobble, but a
		// real leak grows linearly and blows far past this.
		if last > first*1.75+48*(1<<20) {
			t.Fatalf("driver heap climbed %.1fMB -> %.1fMB over the soak", first/(1<<20), last/(1<<20))
		}
	}

	if env := os.Getenv("LBLOAD_SOAK_MIN_EPS"); env != "" {
		var floor float64
		if _, err := fmt.Sscanf(env, "%f", &floor); err != nil {
			t.Fatalf("LBLOAD_SOAK_MIN_EPS: %v", err)
		}
		if res.EventsPerSec < floor {
			t.Fatalf("soak throughput %.0f events/s below floor %.0f", res.EventsPerSec, floor)
		}
	}
	t.Logf("soak: %d events in %.1fs (%.0f events/s), p50=%.2fms p95=%.2fms p99=%.2fms, W %d->%d",
		res.Iterations, res.Seconds, res.EventsPerSec, res.P50Ms, res.P95Ms, res.P99Ms, w0, w1)
}
