// Command lblint runs the determinism-invariant analyzer suite over this
// repository.
//
// Usage:
//
//	lblint [flags] [packages]
//
//	lblint ./...                 check every package (the CI invocation)
//	lblint -json ./...           machine-readable findings
//	lblint -explain maporder     print the invariant a check protects
//	lblint -explain list         list the analyzers
//
// Flags:
//
//	-json              emit findings as a JSON array instead of text
//	-explain NAME      print the paper-level rationale for one analyzer
//	                   ("list" enumerates them) and exit
//	-allowlist FILE    hotalloc allocation allowlist (default lblint.allow.json)
//	-noescape          skip the hotalloc escape-analysis gate (faster; used
//	                   by tests that exercise only the syntactic analyzers)
//	-C DIR             run as if started in DIR
//
// Exit status is 0 with no findings, 1 with findings, 2 on a usage or load
// error. The suite is zero-dependency: packages load via `go list -json`
// and type-check against toolchain export data, so go.mod stays clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func analyzers(ha *lint.HotAlloc) []lint.Analyzer {
	return []lint.Analyzer{
		lint.MapOrder{},
		lint.NonDet{},
		lint.NewLedgerFlow(lint.DefaultLedgerPolicy()),
		ha,
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	explain := fs.String("explain", "", "print the rationale for one analyzer (\"list\" enumerates) and exit")
	allowPath := fs.String("allowlist", "lblint.allow.json", "hotalloc allocation allowlist")
	noEscape := fs.Bool("noescape", false, "skip the hotalloc escape-analysis gate")
	dir := fs.String("C", "", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ha := &lint.HotAlloc{AllowPath: *allowPath}
	all := analyzers(ha)

	if *explain != "" {
		return runExplain(*explain, all, stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	allow, err := lint.LoadAllowlist(joinDir(*dir, *allowPath))
	if err != nil {
		fmt.Fprintf(stderr, "lblint: %v\n", err)
		return 2
	}
	ha.Allow = allow
	if !*noEscape {
		escDir := *dir
		if escDir == "" {
			escDir = "."
		}
		esc, err := lint.RunEscapeAnalysis(escDir, patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "lblint: escape analysis: %v\n", err)
			return 2
		}
		ha.Escapes = esc
	}

	loader := &lint.Loader{Dir: *dir}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lblint: %v\n", err)
		return 2
	}

	runner := &lint.Runner{Analyzers: all}
	diags := runner.Run(pkgs)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "lblint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lblint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runExplain prints one analyzer's paper-level rationale, or the list.
func runExplain(name string, all []lint.Analyzer, stdout, stderr io.Writer) int {
	if name == "list" {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	for _, a := range all {
		if a.Name() == name {
			fmt.Fprintf(stdout, "%s — %s\n\n%s\n", a.Name(), a.Doc(), a.Explain())
			return 0
		}
	}
	fmt.Fprintf(stderr, "lblint: unknown analyzer %q; use -explain list\n", name)
	return 2
}

// joinDir resolves path against the -C directory when path is relative.
func joinDir(dir, path string) string {
	if dir == "" || len(path) > 0 && os.IsPathSeparator(path[0]) {
		return path
	}
	return dir + string(os.PathSeparator) + path
}
