// Command lbsim runs a single (graph, continuous process, discrete scheme)
// configuration and prints a discrepancy trace — the basic inspection tool
// of this repository.
//
// Usage:
//
//	lbsim -graph hypercube:8 -scheme alg1 -cont fos -tokens 64 [-trace 10] [-json]
//
// Graphs: hypercube:<dim>, torus:<side>, cycle:<n>, grid:<side>,
// regular:<n>:<d>, er:<n>, complete:<n>, star:<n>, lollipop:<clique>:<path>.
// Schemes: alg1, alg2, round-down, det-accum, rand-round, excess, rotor,
// match-round-down, match-rand-round, match-alg1, match-alg2.
// Continuous drivers (for alg1/alg2): fos, sos, match-periodic, match-random.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cli"
	"repro/internal/load"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphSpec = flag.String("graph", "hypercube:8", "graph specification")
		scheme    = flag.String("scheme", "alg1", "discrete scheme")
		contName  = flag.String("cont", "fos", "continuous driver for alg1/alg2")
		tokens    = flag.Int64("tokens", 64, "tokens per node, all on node 0")
		maxSpeed  = flag.Int64("maxspeed", 1, "random speeds in {1..maxspeed}")
		seed      = flag.Int64("seed", 1, "random seed")
		traceEach = flag.Int("trace", 0, "print the discrepancy every N rounds (0 = final only)")
		rounds    = flag.Int("rounds", 0, "override round count (0 = continuous balancing time)")
		maxProbe  = flag.Int("maxrounds", 500000, "cap for the balancing-time probe")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of text")
		withLoad  = flag.Bool("json-load", false, "include the final load vector in JSON output")
	)
	flag.Parse()

	if err := cli.ValidateNonNegative("tokens", *tokens); err != nil {
		return err
	}
	if err := cli.ValidatePositive("maxspeed", *maxSpeed); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("trace", int64(*traceEach)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("rounds", int64(*rounds)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("maxrounds", int64(*maxProbe)); err != nil {
		return err
	}

	g, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var s load.Speeds
	if *maxSpeed <= 1 {
		s = load.UniformSpeeds(g.N())
	} else {
		s, err = workload.RandomSpeeds(g.N(), *maxSpeed, rng)
		if err != nil {
			return err
		}
	}
	x0, err := workload.PointMass(g.N(), *tokens*int64(g.N()), 0)
	if err != nil {
		return err
	}

	factory, sched, err := cli.BuildFactory(*contName, g, s, *seed)
	if err != nil {
		return err
	}
	bt := *rounds
	if bt == 0 {
		bt, err = sim.TimeToBalance(factory, x0.Float(), *maxProbe)
		if err != nil {
			return err
		}
	}

	p, err := cli.BuildScheme(*scheme, g, s, sched, factory, x0, rng)
	if err != nil {
		return err
	}

	res, err := sim.Run(p, sim.Options{Rounds: bt, RealTotal: x0.Total(), TraceEvery: *traceEach})
	if err != nil {
		return err
	}
	if *jsonOut {
		return res.WriteJSON(os.Stdout, *withLoad)
	}
	fmt.Printf("%s on %s (n=%d, m=%d, d=%d), W=%d, T=%d\n",
		p.Name(), *graphSpec, g.N(), g.M(), g.MaxDegree(), x0.Total(), bt)
	for _, pt := range res.Trace {
		fmt.Printf("  round %6d: max-min %8.2f  max-avg %8.2f  dummies %d\n",
			pt.Round, pt.MaxMin, pt.MaxAvg, pt.Dummies)
	}
	fmt.Printf("final: max-min %.2f  max-avg %.2f  dummies %d  negative %v\n",
		res.MaxMin, res.MaxAvg, res.Dummies, res.WentNegative)
	return nil
}
