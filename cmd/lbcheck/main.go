// Command lbcheck validates Prometheus text exposition, the format
// lbserve serves on GET /metrics/prom. It parses the input with the
// same validator the tests use (internal/obs), checking comment syntax,
// sample lines, label quoting, and histogram invariants (cumulative
// buckets, +Inf, _count agreement), and optionally asserts that named
// metric families are present. Exit status 0 means the exposition is
// well-formed (and complete, when -require is given).
//
// Usage:
//
//	curl -s localhost:8080/metrics/prom | lbcheck -require engine_rounds_total,engine_step_seconds
//	lbcheck -file scrape.txt -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	file := flag.String("file", "", "read exposition from this file instead of stdin")
	require := flag.String("require", "", "comma-separated metric families that must be present")
	list := flag.Bool("list", false, "print the metric families found, one per line")
	flag.Parse()

	var raw []byte
	var err error
	if *file != "" {
		raw, err = os.ReadFile(*file)
	} else {
		raw, err = io.ReadAll(io.LimitReader(os.Stdin, 64<<20))
	}
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("empty exposition")
	}

	samples, err := obs.ParseExposition(raw)
	if err != nil {
		return err
	}
	families := make(map[string]int)
	for _, s := range samples {
		families[obs.FamilyOf(s.Name)]++
	}

	if *list {
		names := make([]string, 0, len(families))
		for name := range families {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%s\t%d\n", name, families[name])
		}
	}

	var missing []string
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if families[name] == 0 {
				missing = append(missing, name)
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	fmt.Fprintf(os.Stderr, "lbcheck: ok: %d samples across %d families\n", len(samples), len(families))
	return nil
}
