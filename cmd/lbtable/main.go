// Command lbtable regenerates the paper's Table 1 (diffusion model) and
// Table 2 (matching model): final max-min discrepancy of every discrete
// scheme at the continuous balancing time T, per graph class.
//
// Usage:
//
//	lbtable [-n 256] [-tokens 64] [-trials 8] [-seed 1] [-quick] [-table 1|2|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbtable:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 256, "target node count per graph instance")
		tokens   = flag.Int64("tokens", 64, "tokens per node (total load = tokens*n on node 0)")
		trials   = flag.Int("trials", 8, "seeds per randomized scheme")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "use the reduced smoke-test configuration")
		table    = flag.String("table", "all", "which table to print: 1, 2, 3, or all")
		wmax     = flag.Int64("wmax", 8, "maximum task weight for table 3")
		maxSpeed = flag.Int64("maxspeed", 4, "maximum node speed for table 3")
	)
	flag.Parse()

	if err := cli.ValidateChoice("table", *table, cli.TableNames()); err != nil {
		return err
	}
	for name, v := range map[string]int64{
		"n": int64(*n), "tokens": *tokens, "trials": int64(*trials),
		"wmax": *wmax, "maxspeed": *maxSpeed,
	} {
		if err := cli.ValidatePositive(name, v); err != nil {
			return err
		}
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	} else {
		cfg.N = *n
		cfg.TokensPerNode = *tokens
		cfg.Trials = *trials
		cfg.Seed = *seed
	}

	if *table == "1" || *table == "all" {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		fmt.Println()
	}
	if *table == "2" || *table == "all" {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(rows))
		fmt.Println()
	}
	if *table == "3" || *table == "all" {
		rows, err := experiments.Table3(cfg, *wmax, *maxSpeed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf(
			"Table 3 (extension) — general model: weighted tasks (wmax=%d) + speeds (1..%d)",
			*wmax, *maxSpeed)
		fmt.Print(experiments.FormatRows(title, rows))
	}
	return nil
}
