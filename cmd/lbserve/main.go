// Command lbserve runs the online load balancing engine as an HTTP daemon:
// an always-on Algorithm 1 over a mutable topology, with event injection,
// snapshots and streaming metrics served against the live engine.
//
// Usage:
//
//	lbserve -addr :8080 -graph torus:32 [-tokens 8] [-maxspeed 1]
//	        [-workers 0] [-window 4096] [-rate 50] [-seed 1] [-audit]
//	        [-ingest-rate 0] [-ingest-burst 8192] [-ingest-pulse constant]
//	        [-ingest-floor 0.1] [-ingest-period 10s]
//	        [-stream-batch 512] [-stream-maxline 65536] [-stream-pending 16384]
//	        [-trace 1024] [-pprof] [-log-format text|json]
//
// Endpoints:
//
//	GET  /healthz                liveness + current round
//	GET  /snapshot[?loads=1]     point-in-time summary of the runtime
//	GET  /metrics[?n=K]          the last K streaming metrics samples
//	GET  /metrics/prom           Prometheus text exposition: per-stage step
//	                             timing histograms, ingest counters, and the
//	                             Theorem 3 discrepancy gauges
//	GET  /debug/trace[?n=K]      flight recorder dump (JSONL): the last
//	                             -trace applied events + round summaries
//	GET  /debug/pprof/...        net/http/pprof profiles (with -pprof)
//	POST /events                 inject an event, e.g.
//	                             {"kind":"arrival","node":3,"tokens":500}
//	                             {"kind":"join","peers":[0,17]}
//	                             {"kind":"leave","node":9}
//	POST /events/stream[?step=S] NDJSON stream of events, one per line,
//	                             applied in batches with backpressure
//	POST /step[?rounds=N]        execute N balancing rounds
//
// With -rate R the daemon steps the engine R times per second on its own;
// with -rate 0 rounds only advance through POST /step. With -audit the
// engine runs the full conservation recount after every applied event
// (deep audit) instead of the default O(1) incremental ledger check.
//
// Streaming ingest: -stream-batch/-stream-maxline/-stream-pending bound
// the per-request batch size, line length, and the queue depth at which
// the stream applies backpressure. With -ingest-rate R admission into
// the stream is paced through a token bucket of R events/s, optionally
// shaped by -ingest-pulse (sine|square|sawtooth with -ingest-floor as
// the trough fraction over an -ingest-period cycle) to rehearse diurnal
// or bursty admission profiles.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, the auto-step loop stops, and the engine's worker
// pool is released.
//
// Logs are structured (log/slog) on stderr; -log-format json emits one
// JSON object per line for log shippers, text is the human default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphSpec = flag.String("graph", "torus:32", "initial graph specification")
		tokens    = flag.Int64("tokens", 0, "initial tokens per node, placed uniformly at random")
		maxSpeed  = flag.Int64("maxspeed", 1, "random speeds in {1..maxspeed}")
		seed      = flag.Int64("seed", 1, "random seed for speeds and initial placement")
		workers   = flag.Int("workers", 0, "sharding workers for the hot path (0 = GOMAXPROCS)")
		window    = flag.Int("window", 4096, "metrics ring capacity")
		sample    = flag.Int("sample", 1, "take a metrics sample every N rounds")
		rate      = flag.Float64("rate", 0, "rounds per second to step automatically (0 = manual /step)")
		audit     = flag.Bool("audit", false, "deep audit: full conservation recount after every applied event")

		ingestRate   = flag.Float64("ingest-rate", 0, "stream admission rate in events/s at the pulse crest (0 = unlimited)")
		ingestBurst  = flag.Int("ingest-burst", 8192, "stream admission burst capacity in events")
		ingestPulse  = flag.String("ingest-pulse", "constant", "admission pulse shape (constant|sine|square|sawtooth)")
		ingestFloor  = flag.Float64("ingest-floor", 0.1, "admission pulse trough as a fraction of the crest rate")
		ingestPeriod = flag.Duration("ingest-period", 10*time.Second, "admission pulse cycle length")

		streamBatch   = flag.Int("stream-batch", 0, "events applied per stream batch (0 = default)")
		streamMaxline = flag.Int("stream-maxline", 0, "max NDJSON line length in bytes (0 = default)")
		streamPending = flag.Int("stream-pending", 0, "queue depth that triggers stream backpressure (0 = default)")

		traceWindow = flag.Int("trace", 1024, "flight recorder capacity (recent events + round summaries, GET /debug/trace)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logFormat   = flag.String("log-format", "text", "log output format (text|json)")
	)
	flag.Parse()

	if *addr == "" {
		return fmt.Errorf("lbserve: -addr must not be empty")
	}
	if err := cli.ValidateNonNegative("tokens", *tokens); err != nil {
		return err
	}
	if err := cli.ValidatePositive("maxspeed", *maxSpeed); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("workers", int64(*workers)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("window", int64(*window)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("sample", int64(*sample)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegativeFloat("rate", *rate); err != nil {
		return err
	}
	if err := cli.ValidateNonNegativeFloat("ingest-rate", *ingestRate); err != nil {
		return err
	}
	if err := cli.ValidatePositive("ingest-burst", int64(*ingestBurst)); err != nil {
		return err
	}
	if err := cli.ValidateChoice("ingest-pulse", *ingestPulse, workload.PulseNames()); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("ingest-period", *ingestPeriod); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-batch", int64(*streamBatch)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-maxline", int64(*streamMaxline)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-pending", int64(*streamPending)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("trace", int64(*traceWindow)); err != nil {
		return err
	}
	if err := cli.ValidateChoice("log-format", *logFormat, cli.LogFormats()); err != nil {
		return err
	}
	logger := cli.NewLogger(*logFormat, os.Stderr)

	g, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var s load.Speeds
	if *maxSpeed <= 1 {
		s = load.UniformSpeeds(g.N())
	} else {
		s, err = workload.RandomSpeeds(g.N(), *maxSpeed, rng)
		if err != nil {
			return err
		}
	}
	var tasks load.TaskDist
	if *tokens > 0 {
		tasks, err = load.NewTokens(workload.UniformRandom(g.N(), *tokens*int64(g.N()), rng))
		if err != nil {
			return err
		}
	}

	eng, err := engine.New(engine.Config{
		Graph:         g,
		Speeds:        s,
		Tasks:         tasks,
		Workers:       *workers,
		MetricsWindow: *window,
		SampleEvery:   *sample,
		DeepAudit:     *audit,
		FlightWindow:  *traceWindow,
	})
	if err != nil {
		return err
	}
	// Read before the auto-step goroutine and listener start: after that,
	// the engine is only safe to touch through the server mutex.
	initialW := eng.RealTotal()
	sv := engine.NewServer(eng).WithStreamLimits(engine.StreamLimits{
		MaxLineBytes: *streamMaxline,
		MaxBatch:     *streamBatch,
		MaxPending:   *streamPending,
	})
	if *ingestRate > 0 {
		pulse, err := workload.ParsePulse(*ingestPulse, *ingestFloor)
		if err != nil {
			return err
		}
		bucket, err := workload.NewTokenBucket(*ingestRate, *ingestBurst, pulse, *ingestPeriod)
		if err != nil {
			return err
		}
		sv = sv.WithIngestLimiter(bucket)
	}
	// Close under the server mutex: if Shutdown abandoned a slow /step
	// handler at its deadline, the handler still drives the engine between
	// lock windows — closing through Do serializes with it, and its next
	// chunk fails cleanly with ErrClosed instead of racing a closed pool.
	defer func() {
		_ = sv.Do(func(e *engine.Engine) error { e.Close(); return nil })
	}()

	// Shutdown order (LIFO): cancel the context, wait for the auto-step
	// loop to exit, then close the engine's worker pool.
	var wg sync.WaitGroup
	defer wg.Wait()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *rate > 0 {
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			// A rate above 1e9 rounds/s truncates to zero, which
			// time.NewTicker rejects; tick as fast as the runtime allows.
			interval = time.Nanosecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					err := sv.Do(func(e *engine.Engine) error { return e.Step() })
					switch {
					case err == nil:
					case errors.Is(err, engine.ErrInconsistent), errors.Is(err, engine.ErrClosed):
						// A corrupt (or closed) engine must not be stepped
						// further; stop auto-stepping but keep serving
						// snapshots and metrics for the postmortem. The
						// engine latches the ErrInconsistent, and this loop
						// exits on it, so the latched error is logged
						// exactly once — later /step attempts surface it
						// over HTTP, not in the log.
						logger.Error("lbserve: auto-step halted", "err", err)
						return
					default:
						// Invalid injected events are rejected atomically at
						// apply time; log and keep balancing.
						logger.Warn("lbserve: step rejected event", "err", err)
					}
				}
			}
		}()
	}

	handler := http.Handler(sv.Handler())
	if *pprofOn {
		// The flight recorder keeps /debug/trace; pprof gets the standard
		// /debug/pprof/ prefix on an outer mux so the engine routes stay
		// untouched.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	logger.Info("lbserve: listening",
		"addr", *addr, "graph", *graphSpec, "nodes", g.N(), "edges", g.M(),
		"real_total", initialW, "seed", *seed, "rate", *rate, "audit", *audit,
		"workers", *workers, "window", *window, "sample", *sample,
		"ingest_rate", *ingestRate, "trace", *traceWindow, "pprof", *pprofOn)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("lbserve: signal received, shutting down",
			"addr", *addr, "seed", *seed, "drain_timeout", "10s")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
