// Command lbserve runs the online load balancing engine as an HTTP daemon:
// an always-on Algorithm 1 over a mutable topology, with event injection,
// snapshots and streaming metrics served against the live engine.
//
// Usage:
//
//	lbserve -addr :8080 -graph torus:32 [-tokens 8] [-maxspeed 1]
//	        [-workers 0] [-window 4096] [-rate 50] [-seed 1]
//
// Endpoints:
//
//	GET  /healthz            liveness + current round
//	GET  /snapshot[?loads=1] point-in-time summary of the runtime
//	GET  /metrics[?n=K]      the last K streaming metrics samples
//	POST /events             inject an event, e.g.
//	                         {"kind":"arrival","node":3,"tokens":500}
//	                         {"kind":"join","peers":[0,17]}
//	                         {"kind":"leave","node":9}
//	POST /step[?rounds=N]    execute N balancing rounds
//
// With -rate R the daemon steps the engine R times per second on its own;
// with -rate 0 rounds only advance through POST /step.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphSpec = flag.String("graph", "torus:32", "initial graph specification")
		tokens    = flag.Int64("tokens", 0, "initial tokens per node, placed uniformly at random")
		maxSpeed  = flag.Int64("maxspeed", 1, "random speeds in {1..maxspeed}")
		seed      = flag.Int64("seed", 1, "random seed for speeds and initial placement")
		workers   = flag.Int("workers", 0, "sharding workers for the hot path (0 = GOMAXPROCS)")
		window    = flag.Int("window", 4096, "metrics ring capacity")
		sample    = flag.Int("sample", 1, "take a metrics sample every N rounds")
		rate      = flag.Float64("rate", 0, "rounds per second to step automatically (0 = manual /step)")
	)
	flag.Parse()

	if *addr == "" {
		return fmt.Errorf("lbserve: -addr must not be empty")
	}
	if err := cli.ValidateNonNegative("tokens", *tokens); err != nil {
		return err
	}
	if err := cli.ValidatePositive("maxspeed", *maxSpeed); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("workers", int64(*workers)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("window", int64(*window)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("sample", int64(*sample)); err != nil {
		return err
	}
	if *rate < 0 {
		return fmt.Errorf("lbserve: -rate=%v must be >= 0", *rate)
	}

	g, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var s load.Speeds
	if *maxSpeed <= 1 {
		s = load.UniformSpeeds(g.N())
	} else {
		s, err = workload.RandomSpeeds(g.N(), *maxSpeed, rng)
		if err != nil {
			return err
		}
	}
	var tasks load.TaskDist
	if *tokens > 0 {
		tasks, err = load.NewTokens(workload.UniformRandom(g.N(), *tokens*int64(g.N()), rng))
		if err != nil {
			return err
		}
	}

	eng, err := engine.New(engine.Config{
		Graph:         g,
		Speeds:        s,
		Tasks:         tasks,
		Workers:       *workers,
		MetricsWindow: *window,
		SampleEvery:   *sample,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	sv := engine.NewServer(eng)

	if *rate > 0 {
		interval := time.Duration(float64(time.Second) / *rate)
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for range ticker.C {
				if err := sv.Do(func(e *engine.Engine) error { return e.Step() }); err != nil {
					// Invalid injected events are rejected atomically at
					// apply time; log and keep balancing.
					log.Printf("lbserve: step: %v", err)
				}
			}
		}()
	}

	log.Printf("lbserve: %s (n=%d, m=%d, W=%d) listening on %s (rate=%v rounds/s)",
		*graphSpec, g.N(), g.M(), eng.RealTotal(), *addr, *rate)
	return http.ListenAndServe(*addr, sv.Handler())
}
