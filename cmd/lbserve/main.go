// Command lbserve runs the online load balancing engine as an HTTP daemon:
// an always-on Algorithm 1 over a mutable topology, with event injection,
// snapshots and streaming metrics served against the live engine.
//
// Usage:
//
//	lbserve -addr :8080 -graph torus:32 [-tokens 8] [-maxspeed 1]
//	        [-workers 0] [-window 4096] [-rate 50] [-seed 1] [-audit] [-gate]
//	        [-wal-dir DIR] [-snapshot-every 1024] [-wal-sync interval]
//	        [-wal-sync-interval 100ms] [-wal-segment 67108864] [-wal-retain 2]
//	        [-ingest-rate 0] [-ingest-burst 8192] [-ingest-pulse constant]
//	        [-ingest-floor 0.1] [-ingest-period 10s]
//	        [-stream-batch 512] [-stream-maxline 65536] [-stream-pending 16384]
//	        [-trace 1024] [-pprof] [-log-format text|json]
//
// Endpoints:
//
//	GET  /healthz                liveness + current round
//	GET  /snapshot[?loads=1]     point-in-time summary of the runtime
//	GET  /metrics[?n=K]          the last K streaming metrics samples
//	GET  /metrics/prom           Prometheus text exposition: per-stage step
//	                             timing histograms, ingest counters, and the
//	                             Theorem 3 discrepancy gauges
//	GET  /debug/trace[?n=K]      flight recorder dump (JSONL): the last
//	                             -trace applied events + round summaries
//	GET  /debug/pprof/...        net/http/pprof profiles (with -pprof)
//	POST /events                 inject an event, e.g.
//	                             {"kind":"arrival","node":3,"tokens":500}
//	                             {"kind":"join","peers":[0,17]}
//	                             {"kind":"leave","node":9}
//	POST /events/stream[?step=S] NDJSON stream of events, one per line,
//	                             applied in batches with backpressure
//	POST /step[?rounds=N]        execute N balancing rounds
//
// With -rate R the daemon steps the engine R times per second on its own;
// with -rate 0 rounds only advance through POST /step. When the event
// queue is empty and the engine reports zero woken edges, the auto-step
// loop idles — no lock-and-scan per tick, and the round counter holds —
// until the next event wakes it; the idle/resume transitions are logged
// once each. With -audit the engine runs the full conservation recount
// after every applied event (deep audit) instead of the default O(1)
// incremental ledger check. With -gate=false every round runs the
// ungated full scan instead of the default hot-frontier gating (see the
// README's "Activity gating" section).
//
// Durability: with -wal-dir the daemon appends every applied event and
// round boundary to a write-ahead log and writes a full-state snapshot
// every -snapshot-every rounds. On boot, a directory that already holds a
// log is recovered — newest valid snapshot loaded, committed log tail
// replayed, torn tail truncated — and the daemon refuses to start on a
// CRC or conservation-ledger mismatch anywhere before the durable tail
// (the -graph/-tokens/-maxspeed flags are ignored on recovery; the log
// carries the state). -wal-sync picks the fsync policy: always (fsync at
// every round marker), interval (at most once per -wal-sync-interval, the
// default), never (leave flushing to the OS). A graceful shutdown writes
// a final snapshot so the next boot replays nothing.
//
// Streaming ingest: -stream-batch/-stream-maxline/-stream-pending bound
// the per-request batch size, line length, and the queue depth at which
// the stream applies backpressure. With -ingest-rate R admission into
// the stream is paced through a token bucket of R events/s, optionally
// shaped by -ingest-pulse (sine|square|sawtooth with -ingest-floor as
// the trough fraction over an -ingest-period cycle) to rehearse diurnal
// or bursty admission profiles.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, the auto-step loop stops, and the engine's worker
// pool is released.
//
// Logs are structured (log/slog) on stderr; -log-format json emits one
// JSON object per line for log shippers, text is the human default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		graphSpec = flag.String("graph", "torus:32", "initial graph specification")
		tokens    = flag.Int64("tokens", 0, "initial tokens per node, placed uniformly at random")
		maxSpeed  = flag.Int64("maxspeed", 1, "random speeds in {1..maxspeed}")
		seed      = flag.Int64("seed", 1, "random seed for speeds and initial placement")
		workers   = flag.Int("workers", 0, "sharding workers for the hot path (0 = GOMAXPROCS)")
		window    = flag.Int("window", 4096, "metrics ring capacity")
		sample    = flag.Int("sample", 1, "take a metrics sample every N rounds")
		rate      = flag.Float64("rate", 0, "rounds per second to step automatically (0 = manual /step)")
		audit     = flag.Bool("audit", false, "deep audit: full conservation recount after every applied event")
		gateOn    = flag.Bool("gate", true, "activity gating: run rounds over the hot frontier only (false = full scan every round)")

		walDir       = flag.String("wal-dir", "", "write-ahead log directory (empty = no durability); an existing log is recovered on boot")
		snapEvery    = flag.Int("snapshot-every", 1024, "write a full-state snapshot every N rounds")
		walSync      = flag.String("wal-sync", "interval", "WAL fsync policy (interval|always|never)")
		walSyncEvery = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period for -wal-sync interval")
		walSegment   = flag.Int64("wal-segment", 64<<20, "WAL segment rotation size in bytes")
		walRetain    = flag.Int("wal-retain", 2, "snapshots to retain (older snapshots and covered segments are pruned)")

		ingestRate   = flag.Float64("ingest-rate", 0, "stream admission rate in events/s at the pulse crest (0 = unlimited)")
		ingestBurst  = flag.Int("ingest-burst", 8192, "stream admission burst capacity in events")
		ingestPulse  = flag.String("ingest-pulse", "constant", "admission pulse shape (constant|sine|square|sawtooth)")
		ingestFloor  = flag.Float64("ingest-floor", 0.1, "admission pulse trough as a fraction of the crest rate")
		ingestPeriod = flag.Duration("ingest-period", 10*time.Second, "admission pulse cycle length")

		streamBatch   = flag.Int("stream-batch", 0, "events applied per stream batch (0 = default)")
		streamMaxline = flag.Int("stream-maxline", 0, "max NDJSON line length in bytes (0 = default)")
		streamPending = flag.Int("stream-pending", 0, "queue depth that triggers stream backpressure (0 = default)")

		traceWindow = flag.Int("trace", 1024, "flight recorder capacity (recent events + round summaries, GET /debug/trace)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logFormat   = flag.String("log-format", "text", "log output format (text|json)")
	)
	flag.Parse()

	if *addr == "" {
		return fmt.Errorf("lbserve: -addr must not be empty")
	}
	if err := cli.ValidateNonNegative("tokens", *tokens); err != nil {
		return err
	}
	if err := cli.ValidatePositive("maxspeed", *maxSpeed); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("workers", int64(*workers)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("window", int64(*window)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("sample", int64(*sample)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegativeFloat("rate", *rate); err != nil {
		return err
	}
	if err := cli.ValidatePositive("snapshot-every", int64(*snapEvery)); err != nil {
		return err
	}
	if err := cli.ValidateChoice("wal-sync", *walSync, wal.SyncPolicyNames()); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("wal-sync-interval", *walSyncEvery); err != nil {
		return err
	}
	if err := cli.ValidatePositive("wal-segment", *walSegment); err != nil {
		return err
	}
	if err := cli.ValidatePositive("wal-retain", int64(*walRetain)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegativeFloat("ingest-rate", *ingestRate); err != nil {
		return err
	}
	if err := cli.ValidatePositive("ingest-burst", int64(*ingestBurst)); err != nil {
		return err
	}
	if err := cli.ValidateChoice("ingest-pulse", *ingestPulse, workload.PulseNames()); err != nil {
		return err
	}
	if err := cli.ValidatePositiveDuration("ingest-period", *ingestPeriod); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-batch", int64(*streamBatch)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-maxline", int64(*streamMaxline)); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("stream-pending", int64(*streamPending)); err != nil {
		return err
	}
	if err := cli.ValidatePositive("trace", int64(*traceWindow)); err != nil {
		return err
	}
	if err := cli.ValidateChoice("log-format", *logFormat, cli.LogFormats()); err != nil {
		return err
	}
	logger := cli.NewLogger(*logFormat, os.Stderr)

	// One registry for everything (engine, ingest, WAL, recovery gauges) so
	// a single /metrics/prom scrape sees the whole daemon.
	reg := obs.NewRegistry()
	var (
		walWriter *wal.Writer
		recovery  *wal.Recovery
		err       error
	)
	if *walDir != "" {
		policy, perr := wal.ParseSyncPolicy(*walSync)
		if perr != nil {
			return perr
		}
		walWriter, recovery, err = wal.Open(wal.Options{
			Dir:             *walDir,
			SegmentBytes:    *walSegment,
			Sync:            policy,
			SyncEvery:       *walSyncEvery,
			RetainSnapshots: *walRetain,
			Registry:        reg,
		})
		if err != nil {
			// Corruption before the durable tail (or an unreadable chain):
			// refuse to start rather than serve a state the log disagrees
			// with. The error names the file and byte offset.
			return fmt.Errorf("wal recovery refused: %w", err)
		}
		defer walWriter.Close()
		if recovery.Corruption != nil {
			logger.Warn("lbserve: wal tail truncated to durable prefix",
				"detail", recovery.Corruption.String(), "truncated_bytes", recovery.TruncatedBytes)
		}
	}

	cfg := engine.Config{
		Workers:       *workers,
		MetricsWindow: *window,
		SampleEvery:   *sample,
		DeepAudit:     *audit,
		FlightWindow:  *traceWindow,
		Registry:      reg,
		SnapshotEvery: *snapEvery,
	}
	if !*gateOn {
		cfg.Gate = engine.GateOff
	}
	if walWriter != nil {
		cfg.WAL = walWriter
	}

	var eng *engine.Engine
	if recovery != nil && recovery.HasState() {
		t0 := time.Now()
		eng, err = engine.Restore(recovery, cfg)
		if err != nil {
			// A CRC-valid log that replays to a different state than its
			// markers claim means the build and the log disagree — refuse.
			return fmt.Errorf("wal recovery refused: %w", err)
		}
		elapsed := time.Since(t0)
		reg.Gauge("lbserve_recovery_snapshot_round", "Round of the snapshot recovery started from.").SetInt(recovery.SnapshotRound)
		reg.Gauge("lbserve_recovery_batches_replayed", "Committed log batches replayed on boot.").SetInt(int64(len(recovery.Batches)))
		reg.Gauge("lbserve_recovery_tail_events_discarded", "Uncommitted trailing event records discarded on boot.").SetInt(int64(recovery.TailEvents))
		reg.Gauge("lbserve_recovery_truncated_bytes", "Log tail bytes truncated to the durable prefix on boot.").SetInt(recovery.TruncatedBytes)
		reg.Gauge("lbserve_recovery_seconds", "Wall time of snapshot load + log replay on boot.").Set(elapsed.Seconds())
		logger.Info("lbserve: recovered from write-ahead log",
			"wal_dir", *walDir, "snapshot_round", recovery.SnapshotRound,
			"batches_replayed", len(recovery.Batches), "round", eng.Round(),
			"real_total", eng.RealTotal(), "tail_events_discarded", recovery.TailEvents,
			"elapsed", elapsed.Round(time.Millisecond).String())
	} else {
		g, gerr := cli.ParseGraph(*graphSpec, *seed)
		if gerr != nil {
			return gerr
		}
		rng := rand.New(rand.NewSource(*seed))
		var s load.Speeds
		if *maxSpeed <= 1 {
			s = load.UniformSpeeds(g.N())
		} else {
			s, err = workload.RandomSpeeds(g.N(), *maxSpeed, rng)
			if err != nil {
				return err
			}
		}
		var tasks load.TaskDist
		if *tokens > 0 {
			tasks, err = load.NewTokens(workload.UniformRandom(g.N(), *tokens*int64(g.N()), rng))
			if err != nil {
				return err
			}
		}
		cfg.Graph, cfg.Speeds, cfg.Tasks = g, s, tasks
		eng, err = engine.New(cfg)
		if err != nil {
			return err
		}
	}
	// Read before the auto-step goroutine and listener start: after that,
	// the engine is only safe to touch through the server mutex.
	initialW := eng.RealTotal()
	nodes, edges := eng.NumNodes(), eng.NumEdges()
	sv := engine.NewServer(eng).WithStreamLimits(engine.StreamLimits{
		MaxLineBytes: *streamMaxline,
		MaxBatch:     *streamBatch,
		MaxPending:   *streamPending,
	})
	if *ingestRate > 0 {
		pulse, err := workload.ParsePulse(*ingestPulse, *ingestFloor)
		if err != nil {
			return err
		}
		bucket, err := workload.NewTokenBucket(*ingestRate, *ingestBurst, pulse, *ingestPeriod)
		if err != nil {
			return err
		}
		sv = sv.WithIngestLimiter(bucket)
	}
	// Close under the server mutex: if Shutdown abandoned a slow /step
	// handler at its deadline, the handler still drives the engine between
	// lock windows — closing through Do serializes with it, and its next
	// chunk fails cleanly with ErrClosed instead of racing a closed pool.
	defer func() {
		_ = sv.Do(func(e *engine.Engine) error {
			if walWriter != nil {
				// A final snapshot makes the shutdown point durable so the
				// next boot replays nothing. SnapshotNow refuses if the
				// engine latched an inconsistency — a poisoned state must
				// not become the recovery baseline.
				if err := e.SnapshotNow(); err != nil {
					logger.Warn("lbserve: final snapshot failed", "err", err)
				}
			}
			e.Close()
			return nil
		})
	}()

	// Shutdown order (LIFO): cancel the context, wait for the auto-step
	// loop to exit, then close the engine's worker pool.
	var wg sync.WaitGroup
	defer wg.Wait()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *rate > 0 {
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			// A rate above 1e9 rounds/s truncates to zero, which
			// time.NewTicker rejects; tick as fast as the runtime allows.
			interval = time.Nanosecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			wasIdle := false
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					// Idle skip: with nothing queued and no edge woken for the
					// next round, Step would be a no-op scan — don't burn it.
					// The check itself runs under the server mutex (the queue
					// and gate state are only safe to read there), but it is
					// two O(|hot|) counter reads, not a round. The round
					// counter deliberately does not advance while idle.
					idle, round := false, int64(0)
					err := sv.Do(func(e *engine.Engine) error {
						if e.PendingEvents() == 0 && e.PendingHotEdges() == 0 {
							idle, round = true, e.Round()
							return nil
						}
						return e.Step()
					})
					if idle != wasIdle {
						// Log the transition once, not per tick.
						if idle {
							logger.Info("lbserve: auto-step idle", "round", round)
						} else {
							logger.Info("lbserve: auto-step resumed")
						}
						wasIdle = idle
					}
					if idle {
						continue
					}
					switch {
					case err == nil:
					case errors.Is(err, engine.ErrInconsistent), errors.Is(err, engine.ErrWAL), errors.Is(err, engine.ErrClosed):
						// A corrupt (or closed) engine must not be stepped
						// further; stop auto-stepping but keep serving
						// snapshots and metrics for the postmortem. The
						// engine latches the ErrInconsistent, and this loop
						// exits on it, so the latched error is logged
						// exactly once — later /step attempts surface it
						// over HTTP, not in the log.
						logger.Error("lbserve: auto-step halted", "err", err)
						return
					default:
						// Invalid injected events are rejected atomically at
						// apply time; log and keep balancing.
						logger.Warn("lbserve: step rejected event", "err", err)
					}
				}
			}
		}()
	}

	handler := http.Handler(sv.Handler())
	if *pprofOn {
		// The flight recorder keeps /debug/trace; pprof gets the standard
		// /debug/pprof/ prefix on an outer mux so the engine routes stay
		// untouched.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	logger.Info("lbserve: listening",
		"addr", *addr, "graph", *graphSpec, "nodes", nodes, "edges", edges,
		"real_total", initialW, "seed", *seed, "rate", *rate, "audit", *audit,
		"gate", *gateOn,
		"workers", *workers, "window", *window, "sample", *sample,
		"ingest_rate", *ingestRate, "trace", *traceWindow, "pprof", *pprofOn,
		"wal_dir", *walDir)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("lbserve: signal received, shutting down",
			"addr", *addr, "seed", *seed, "drain_timeout", "10s")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
