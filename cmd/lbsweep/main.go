// Command lbsweep runs the scaling ("figure") experiments F1–F6 from
// DESIGN.md — the Theorem 3 and Theorem 8 discrepancy-vs-parameter sweeps,
// the continuous convergence-time comparison, the dummy-token sweep, the
// SOS negative-load check — plus the ablations F7–F10 (potential drop,
// α choice, Algorithm 1 task policy, SOS β sweep, excess-token vs rotor).
//
// Usage:
//
//	lbsweep [-quick] [-exp f1|...|f10|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "use the reduced smoke-test configuration")
		exp   = flag.String("exp", "all", "which experiment to run: f1..f6 or all")
	)
	flag.Parse()

	if err := cli.ValidateChoice("exp", *exp, cli.ExpNames()); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	dims := []int{3, 4, 5, 6, 7, 8, 9, 10}
	sizes := []int{64, 128, 256, 512}
	wmaxes := []int64{1, 2, 4, 8, 16}
	if *quick {
		cfg = experiments.QuickConfig()
		dims = []int{3, 4, 5, 6}
		sizes = []int{32, 64, 128}
		wmaxes = []int64{1, 2, 4}
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }

	if want("f1") {
		points, err := experiments.Theorem3ScalingD(dims, sizes, cfg)
		if err != nil {
			return fmt.Errorf("f1: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F1 — Theorem 3: Algorithm 1 max-avg discrepancy vs d and vs n (bound 2d·wmax+2)", points))
		fmt.Println()
	}
	if want("f2") {
		points, err := experiments.Theorem3ScalingWmax(wmaxes, cfg)
		if err != nil {
			return fmt.Errorf("f2: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F2 — Theorem 3: Algorithm 1 max-avg discrepancy vs wmax (torus, random speeds)", points))
		fmt.Println()
	}
	if want("f3") {
		points, err := experiments.Theorem8Scaling(dims, sizes, cfg)
		if err != nil {
			return fmt.Errorf("f3: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F3 — Theorem 8: Algorithm 2 max-avg discrepancy vs d and vs n (bound d/4+sqrt(d·ln n))", points))
		fmt.Println()
	}
	if want("f4") {
		graphs, err := convergenceGraphs(*quick)
		if err != nil {
			return fmt.Errorf("f4: %w", err)
		}
		points, err := experiments.ConvergenceTimes(graphs, cfg)
		if err != nil {
			return fmt.Errorf("f4: %w", err)
		}
		fmt.Print(experiments.FormatConvergence(points))
		fmt.Println()
	}
	if want("f5") {
		d := 4 // torus degree
		floors := []int64{0, int64(d) / 2, int64(d), 2 * int64(d)}
		points, err := experiments.DummyTokenSweep(floors, cfg)
		if err != nil {
			return fmt.Errorf("f5: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F5 — dummy tokens created vs initial-load floor ℓ (zero at ℓ >= d·wmax for Alg 1)", points))
		fmt.Println()
	}
	if want("f6") {
		points, err := experiments.SOSNegativeLoadCheck(cfg)
		if err != nil {
			return fmt.Errorf("f6: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F6 — Definition 1 check on a cycle: value=1 iff the process induced negative load (x = first offending round, extra = Alg 1 dummies)", points))
		fmt.Println()
	}
	if want("f7") {
		rounds := 60
		if *quick {
			rounds = 25
		}
		points, err := experiments.PotentialDrop(cfg, rounds)
		if err != nil {
			return fmt.Errorf("f7: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F7 — quadratic potential Φ(t): continuous FOS vs Alg 1 vs round-down (hypercube)", points))
		fmt.Println()
	}
	if want("f8") {
		points, err := experiments.AlphaAblation(cfg)
		if err != nil {
			return fmt.Errorf("f8: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F8 — ablation: diffusion parameter α (value = Alg 1 max-avg, extra = T)", points))
		fmt.Println()
	}
	if want("f9") {
		points, err := experiments.PolicyAblation(cfg)
		if err != nil {
			return fmt.Errorf("f9: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F9 — ablation: Algorithm 1 task-selection policy (weighted tasks, value = max-avg, extra = dummies)", points))
		fmt.Println()
	}
	if want("f10") {
		betas := []float64{1.0, 1.3, 1.6, 1.8, 1.9}
		if *quick {
			betas = []float64{1.0, 1.5, 1.8}
		}
		points, err := experiments.BetaSweep(betas, cfg)
		if err != nil {
			return fmt.Errorf("f10: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F10 — ablation: SOS balancing time vs β on a cycle (extra = 1 iff negative load)", points))
		fmt.Println()
		pts, err := experiments.ExcessVsRotor(cfg)
		if err != nil {
			return fmt.Errorf("f10: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F10b — excess-token [9] vs rotor derandomization [5] (worst max-min over trials)", pts))
		fmt.Println()
	}
	if want("f11") {
		cycleSizes := []int{16, 32, 64, 128}
		if *quick {
			cycleSizes = []int{16, 32, 64}
		}
		lbCfg := cfg
		lbCfg.MaxRounds = 5_000_000
		points, err := experiments.CycleLowerBound(cycleSizes, lbCfg)
		if err != nil {
			return fmt.Errorf("f11: %w", err)
		}
		fmt.Print(experiments.FormatScalePoints(
			"F11 — Ω(diam) separation on cycles: round-down grows with n, Alg 1 stays at O(d)", points))
	}
	return nil
}

func convergenceGraphs(quick bool) (map[string]*graph.Graph, error) {
	type spec struct {
		name  string
		build func() (*graph.Graph, error)
	}
	specs := []spec{
		{"cycle-64", func() (*graph.Graph, error) { return graph.Cycle(64) }},
		{"torus-16x16", func() (*graph.Graph, error) { return graph.Torus(16, 16) }},
		{"hypercube-8", func() (*graph.Graph, error) { return graph.Hypercube(8) }},
	}
	if quick {
		specs = []spec{
			{"cycle-32", func() (*graph.Graph, error) { return graph.Cycle(32) }},
			{"torus-8x8", func() (*graph.Graph, error) { return graph.Torus(8, 8) }},
			{"hypercube-6", func() (*graph.Graph, error) { return graph.Hypercube(6) }},
		}
	}
	graphs := make(map[string]*graph.Graph, len(specs))
	for _, sp := range specs {
		g, err := sp.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.name, err)
		}
		graphs[sp.name] = g
	}
	return graphs, nil
}
