// Command lbreplay turns a captured write-ahead log into a reproducible
// regression trace: it scans an lbserve -wal-dir read-only, rebuilds the
// engine from a snapshot, re-applies every committed batch, and verifies
// each round marker along the way — so a soak failure in the field becomes
// a deterministic local test case.
//
// Usage:
//
//	lbreplay -wal-dir DIR                 replay + verify, print summary JSON
//	lbreplay -wal-dir DIR -scan-only      report log contents without replaying
//	lbreplay -wal-dir DIR -from oldest    replay from the oldest retained snapshot
//	lbreplay -wal-dir DIR -to-round N     stop after round N (bisect a divergence)
//	lbreplay -wal-dir DIR -dump trace.ndjson   export the logged events as NDJSON
//
// The summary reports the recovered state (round, real total, dummies,
// max-avg discrepancy vs the Theorem 3 bound) and the SHA-256 state hash —
// compare hashes across machines or builds to prove two replays agree.
// A replay that diverges from its round markers exits 1 with the first
// divergent round named; -to-round brackets it to minimize the trace.
// -dump writes the committed events in wire NDJSON form, one per line —
// directly streamable into a fresh lbserve via POST /events/stream.
//
// lbreplay never mutates the log directory. A torn or uncommitted tail is
// reported (as lbserve's recovery would truncate it) but left in place.
package main

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lbreplay:", err)
		os.Exit(1)
	}
}

// summary is the JSON report printed on stdout.
type summary struct {
	WALDir           string `json:"wal_dir"`
	SnapshotLSN      int64  `json:"snapshot_lsn"`
	SnapshotRound    int64  `json:"snapshot_round"`
	CommittedBatches int    `json:"committed_batches"`
	CommittedEvents  int    `json:"committed_events"`
	LastLSN          int64  `json:"last_lsn"`
	LastRound        int64  `json:"last_round"`
	TailEvents       int    `json:"tail_events_discarded,omitempty"`
	TruncatedBytes   int64  `json:"tail_bytes_beyond_durable_prefix,omitempty"`
	Corruption       string `json:"tail_corruption,omitempty"`

	// Replay results (absent with -scan-only).
	Replayed  int     `json:"replayed_batches,omitempty"`
	Round     int64   `json:"round,omitempty"`
	RealTotal int64   `json:"real_total,omitempty"`
	Dummies   int64   `json:"dummies,omitempty"`
	Wmax      int64   `json:"wmax,omitempty"`
	MaxAvg    float64 `json:"max_avg,omitempty"`
	Bound     float64 `json:"bound,omitempty"`
	// Hot-set occupancy of the last replayed round: how much of the graph
	// the activity gate still had awake at the replay tail (0 = fully
	// quiesced; omitted with -scan-only).
	HotNodes     int    `json:"hot_nodes,omitempty"`
	HotEdges     int    `json:"hot_edges,omitempty"`
	StateHash    string `json:"state_hash,omitempty"`
	DumpedEvents int    `json:"dumped_events,omitempty"`
}

func run() error {
	var (
		walDir   = flag.String("wal-dir", "", "write-ahead log directory to replay (required)")
		from     = flag.String("from", "newest", "snapshot to start from (newest|oldest); oldest gives the longest trace the directory retains")
		toRound  = flag.Int64("to-round", 0, "stop after this round (0 = replay the whole log)")
		scanOnly = flag.Bool("scan-only", false, "report the log contents without replaying")
		dump     = flag.String("dump", "", "write the committed events as wire NDJSON to this file (\"-\" = stdout)")
		workers  = flag.Int("workers", 0, "engine sharding workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *walDir == "" {
		return fmt.Errorf("-wal-dir is required")
	}
	if err := cli.ValidateChoice("from", *from, []string{"newest", "oldest"}); err != nil {
		return err
	}
	if err := cli.ValidateNonNegative("to-round", *toRound); err != nil {
		return err
	}

	recover := wal.Recover
	if *from == "oldest" {
		recover = wal.RecoverOldest
	}
	rec, err := recover(*walDir)
	if err != nil {
		return err
	}
	if !rec.HasState() {
		return fmt.Errorf("%s holds no recoverable log", *walDir)
	}

	out := summary{
		WALDir:           *walDir,
		SnapshotLSN:      rec.SnapshotLSN,
		SnapshotRound:    rec.SnapshotRound,
		CommittedBatches: len(rec.Batches),
		LastLSN:          rec.LastLSN,
		LastRound:        rec.LastRound,
		TailEvents:       rec.TailEvents,
		TruncatedBytes:   rec.TruncatedBytes,
	}
	for i := range rec.Batches {
		out.CommittedEvents += len(rec.Batches[i].Events)
	}
	if rec.Corruption != nil {
		out.Corruption = rec.Corruption.String()
	}

	if *dump != "" {
		n, err := dumpEvents(rec, *dump, *toRound)
		if err != nil {
			return err
		}
		out.DumpedEvents = n
	}

	if !*scanOnly {
		eng, err := engine.NewFromState(rec.Snapshot, engine.Config{Workers: *workers, SampleEvery: 1 << 30})
		if err != nil {
			return fmt.Errorf("snapshot rejected: %w", err)
		}
		defer eng.Close()
		for i := range rec.Batches {
			b := &rec.Batches[i]
			if *toRound > 0 && b.Mark.Round > *toRound {
				break
			}
			if err := eng.ReplayStep(b.Events, b.Mark); err != nil {
				// Print what we know before failing: the partial summary is
				// the bisection state.
				out.Replayed = i
				out.Round = eng.Round()
				printSummary(out)
				return fmt.Errorf("replay diverged: %w", err)
			}
			out.Replayed++
		}
		h := eng.StateHash()
		out.Round = eng.Round()
		out.RealTotal = eng.RealTotal()
		out.Dummies = eng.DummiesCreated()
		out.Wmax = eng.Wmax()
		out.MaxAvg = eng.MaxAvg()
		out.Bound = eng.Bound()
		out.HotNodes = eng.HotNodes()
		out.HotEdges = eng.HotEdges()
		out.StateHash = hex.EncodeToString(h[:])
		if err := eng.AuditFull(); err != nil {
			printSummary(out)
			return fmt.Errorf("conservation audit after replay: %w", err)
		}
	}
	printSummary(out)
	return nil
}

func printSummary(s summary) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s)
}

// dumpEvents writes the committed events (up to toRound, 0 = all) as wire
// NDJSON — the exact format POST /events/stream ingests.
func dumpEvents(rec *wal.Recovery, path string, toRound int64) (int, error) {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for i := range rec.Batches {
		b := &rec.Batches[i]
		if toRound > 0 && b.Mark.Round > toRound {
			break
		}
		for k := range b.Events {
			if err := enc.Encode(&b.Events[k]); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, bw.Flush()
}
