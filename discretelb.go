// Package discretelb is the public API of this repository: a library for
// discrete neighbourhood load balancing on arbitrary networks with weighted
// tasks and heterogeneous node speeds, reproducing
//
//	Akbari, Berenbrink, Sauerwald — "A Simple Approach for Adapting
//	Continuous Load Balancing Processes to Discrete Settings" (PODC 2012).
//
// The package re-exports the building blocks from the internal packages:
//
//   - Graphs and generators (hypercube, torus, expanders, arbitrary graphs).
//   - Continuous processes: first-order diffusion (FOS), second-order
//     diffusion (SOS), and matching-based dimension exchange.
//   - The paper's transformations: Algorithm 1 (deterministic flow
//     imitation for weighted tasks) and Algorithm 2 (randomized flow
//     imitation for unit tokens).
//   - Baseline discrete schemes from the prior literature.
//   - A simulation runner with discrepancy metrics and traces.
//
// A minimal end-to-end use:
//
//	g, _ := discretelb.NewHypercube(8)
//	s := discretelb.UniformSpeeds(g.N())
//	x0, _ := discretelb.PointMass(g.N(), 4096, 0)
//	res, _ := discretelb.BalanceTokensAlg1(g, s, x0)
//	fmt.Println(res.MaxMin, res.Rounds)
package discretelb

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/load"
	"repro/internal/matching"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/workload"
)

// Core model types.
type (
	// Graph is an immutable simple undirected network.
	Graph = graph.Graph
	// Arc is one direction of an edge in an adjacency list.
	Arc = graph.Arc
	// Speeds holds per-node processing speeds (>= 1).
	Speeds = load.Speeds
	// Vector is an integer load vector (total task weight per node).
	Vector = load.Vector
	// Task is a non-divisible work item with an integer weight.
	Task = load.Task
	// TaskDist assigns whole tasks to nodes.
	TaskDist = load.TaskDist
	// Alphas are the symmetric diffusion parameters, one per edge.
	Alphas = continuous.Alphas
	// Flows holds one round of per-edge directional transfers.
	Flows = continuous.Flows
	// ContinuousProcess is a continuous balancing process (FOS, SOS,
	// matching-based).
	ContinuousProcess = continuous.Process
	// ContinuousFactory builds coupled instances of a continuous process.
	ContinuousFactory = continuous.Factory
	// Snapshotter is implemented by processes that support gob
	// checkpoint/restore.
	Snapshotter = continuous.Snapshotter
	// Matching is a set of node-disjoint edges.
	Matching = matching.Matching
	// MatchingSchedule yields the matching active in each round.
	MatchingSchedule = matching.Schedule
	// DiscreteProcess is the common interface of all discrete schemes.
	DiscreteProcess = sim.Discrete
	// RunOptions configures a simulation run.
	RunOptions = sim.Options
	// RunResult summarizes a simulation run.
	RunResult = sim.Result
	// TaskPolicy selects which task Algorithm 1 forwards next.
	TaskPolicy = core.TaskPolicy
	// FlowImitation is the paper's Algorithm 1.
	FlowImitation = core.FlowImitation
	// RandomizedFlowImitation is the paper's Algorithm 2.
	RandomizedFlowImitation = core.RandomizedFlowImitation
	// Cluster runs Algorithm 1 distributed: one goroutine per node, tasks
	// as channel messages, a continuous replica per node.
	Cluster = dist.Cluster
	// ProcessMaker builds independent continuous replicas for Cluster
	// nodes.
	ProcessMaker = dist.ProcessMaker
	// DynamicGraph is a mutable topology for online executions.
	DynamicGraph = graph.Dynamic
	// Engine is the always-on, event-driven Algorithm 1 runtime.
	Engine = engine.Engine
	// EngineConfig configures an Engine.
	EngineConfig = engine.Config
	// EngineEvent is one unit of the engine's input stream.
	EngineEvent = engine.Event
	// EngineSample is one round's streamed engine metrics.
	EngineSample = engine.Sample
	// EngineSnapshot is a point-in-time engine summary.
	EngineSnapshot = engine.Snapshot
	// EngineServer exposes a live Engine over HTTP.
	EngineServer = engine.Server
	// EngineGateMode selects the engine's activity-gate posture.
	EngineGateMode = engine.GateMode
	// ArrivalBatch is one scheduled batch of online task arrivals.
	ArrivalBatch = workload.Arrival
)

// Activity-gate postures for EngineConfig.Gate: EngineGateOn (the default)
// runs balancing rounds over the hot frontier only, EngineGateOff forces
// the full scan. Gating is semantics-preserving, so this is purely a
// performance knob.
const (
	EngineGateOn  = engine.GateOn
	EngineGateOff = engine.GateOff
)

// Task selection policies for Algorithm 1.
const (
	PolicyLIFO         = core.PolicyLIFO
	PolicyFIFO         = core.PolicyFIFO
	PolicyLargestFirst = core.PolicyLargestFirst
)

// Graph constructors.
var (
	// NewGraph builds a graph from an explicit edge list.
	NewGraph = graph.New
	// NewHypercube builds the dim-dimensional hypercube.
	NewHypercube = graph.Hypercube
	// NewTorus builds an r-dimensional torus.
	NewTorus = graph.Torus
	// NewGrid2D builds a rows x cols grid.
	NewGrid2D = graph.Grid2D
	// NewCycle builds the n-cycle.
	NewCycle = graph.Cycle
	// NewPath builds the n-path.
	NewPath = graph.Path
	// NewComplete builds K_n.
	NewComplete = graph.Complete
	// NewStar builds the n-star.
	NewStar = graph.Star
	// NewRandomRegular builds a connected random d-regular graph.
	NewRandomRegular = graph.RandomRegular
	// NewErdosRenyi builds a connected Erdős–Rényi graph.
	NewErdosRenyi = graph.ErdosRenyi
)

// Workload helpers.
var (
	// UniformSpeeds returns n speeds equal to 1.
	UniformSpeeds = load.UniformSpeeds
	// PointMass places all load on one node.
	PointMass = workload.PointMass
	// UniformRandomLoad throws tokens uniformly onto nodes.
	UniformRandomLoad = workload.UniformRandom
	// RandomWeightedTasks builds random weighted task distributions.
	RandomWeightedTasks = workload.RandomWeightedTasks
	// AddLoadFloor shifts a load vector by ℓ·s_i per node.
	AddLoadFloor = workload.AddFloor
	// NewTokens converts token counts into a unit-weight TaskDist.
	NewTokens = load.NewTokens
)

// Continuous processes.
var (
	// DefaultAlphas returns α_e = min(s_u,s_v)/(max(d_u,d_v)+1).
	DefaultAlphas = continuous.DefaultAlphas
	// NewFOS builds a first-order diffusion process.
	NewFOS = continuous.NewFOS
	// NewSOS builds a second-order diffusion process.
	NewSOS = continuous.NewSOS
	// NewMatchingProcess builds a dimension-exchange process.
	NewMatchingProcess = continuous.NewMatchingProcess
	// FOSFactory builds coupled FOS instances.
	FOSFactory = continuous.FOSFactory
	// SOSFactory builds coupled SOS instances.
	SOSFactory = continuous.SOSFactory
	// MatchingFactory builds coupled matching processes.
	MatchingFactory = continuous.MatchingFactory
	// BalancingTime runs a continuous process to its balanced state.
	BalancingTime = continuous.BalancingTime
	// DiffusionLambda estimates |λ2| of the diffusion matrix.
	DiffusionLambda = continuous.DiffusionLambda
	// OptimalSOSBeta returns β* = 2/(1+sqrt(1-λ²)).
	OptimalSOSBeta = spectral.OptimalSOSBeta
)

// Matching schedules.
var (
	// NewPeriodicMatchings cycles through explicit matchings.
	NewPeriodicMatchings = matching.NewPeriodic
	// NewPeriodicFromColoring derives periodic matchings from a greedy
	// edge colouring.
	NewPeriodicFromColoring = matching.NewPeriodicFromColoring
	// NewRandomMatchings draws an independent random maximal matching per
	// round.
	NewRandomMatchings = matching.NewRandom
	// GreedyEdgeColoring partitions edges into at most 2d-1 matchings.
	GreedyEdgeColoring = matching.GreedyEdgeColoring
)

// The paper's transformations and prior baselines.
var (
	// NewFlowImitation builds Algorithm 1 over any continuous factory.
	NewFlowImitation = core.NewFlowImitation
	// NewRandomizedFlowImitation builds Algorithm 2.
	NewRandomizedFlowImitation = core.NewRandomizedFlowImitation
	// NewRoundDownDiffusion builds the round-down FOS baseline.
	NewRoundDownDiffusion = baseline.NewRoundDownDiffusion
	// NewDeterministicAccum builds the bounded-error deterministic
	// baseline.
	NewDeterministicAccum = baseline.NewDeterministicAccum
	// NewRandomizedRounding builds the randomized-rounding FOS baseline.
	NewRandomizedRounding = baseline.NewRandomizedRounding
	// NewExcessToken builds the excess-token diffusion baseline.
	NewExcessToken = baseline.NewExcessToken
	// NewRoundDownMatching builds the round-down matching baseline.
	NewRoundDownMatching = baseline.NewRoundDownMatching
	// NewRandomizedMatching builds the randomized matching baseline.
	NewRandomizedMatching = baseline.NewRandomizedMatching
	// NewRotorExcess builds the deterministic rotor (round-robin)
	// excess-token baseline.
	NewRotorExcess = baseline.NewRotorExcess
)

// Distributed execution (one goroutine per node, channel messages).
var (
	// NewCluster builds a distributed Algorithm 1 run.
	NewCluster = dist.NewCluster
	// VerifyDistributed cross-checks a distributed run against the
	// centralized implementation.
	VerifyDistributed = dist.Verify
	// FOSMaker / SOSMaker / PeriodicMatchingMaker / RandomMatchingMaker
	// build per-node continuous replicas for NewCluster.
	FOSMaker              = dist.FOSMaker
	SOSMaker              = dist.SOSMaker
	PeriodicMatchingMaker = dist.PeriodicMatchingMaker
	RandomMatchingMaker   = dist.RandomMatchingMaker
)

// Online engine: event-driven Algorithm 1 with node churn.
var (
	// NewEngine builds the always-on runtime (see internal/engine).
	NewEngine = engine.New
	// NewEngineServer wraps an engine with the lbserve HTTP surface.
	NewEngineServer = engine.NewServer
	// NewDynamicGraph copies a graph into a mutable topology.
	NewDynamicGraph = graph.NewDynamic
	// EngineArrival / EngineArrivalTasks / EngineCompletion / EngineJoin /
	// EngineLeave / EngineEdgeChange build the engine's event stream.
	EngineArrival      = engine.Arrival
	EngineArrivalTasks = engine.ArrivalTasks
	EngineCompletion   = engine.Completion
	EngineJoin         = engine.Join
	EngineLeave        = engine.Leave
	EngineEdgeChange   = engine.EdgeChange
	// PoissonBursts and HotspotIngress generate online arrival processes.
	PoissonBursts  = workload.PoissonBursts
	HotspotIngress = workload.HotspotIngress
)

// Simulation and metrics.
var (
	// Run executes a discrete process and summarizes the outcome.
	Run = sim.Run
	// TimeToBalance probes the continuous balancing time T.
	TimeToBalance = sim.TimeToBalance
	// Makespans returns x_i/s_i per node.
	Makespans = load.Makespans
	// MaxMinDiscrepancy is max makespan − min makespan.
	MaxMinDiscrepancy = load.MaxMinDiscrepancy
	// MaxAvgDiscrepancy is max makespan − W/S.
	MaxAvgDiscrepancy = load.MaxAvgDiscrepancy
	// Potential is the quadratic potential Φ.
	Potential = load.Potential
)

// BalanceTokensAlg1 is a one-call quickstart: it runs Algorithm 1 over
// first-order diffusion with unit tokens until the continuous balancing time
// T and returns the summarized result. maxRounds caps the balancing-time
// probe; 500000 is a safe default for the graphs in this repository.
func BalanceTokensAlg1(g *Graph, s Speeds, tokens Vector) (RunResult, error) {
	const maxRounds = 500_000
	alpha, err := DefaultAlphas(g, s)
	if err != nil {
		return RunResult{}, err
	}
	factory := FOSFactory(g, s, alpha)
	bt, err := TimeToBalance(factory, tokens.Float(), maxRounds)
	if err != nil {
		return RunResult{}, err
	}
	dist, err := NewTokens(tokens)
	if err != nil {
		return RunResult{}, err
	}
	p, err := NewFlowImitation(g, s, dist, factory, PolicyLIFO)
	if err != nil {
		return RunResult{}, err
	}
	return Run(p, RunOptions{Rounds: bt, RealTotal: tokens.Total()})
}

// BalanceTokensAlg2 is the randomized counterpart of BalanceTokensAlg1: it
// runs Algorithm 2 over first-order diffusion with the given seed.
func BalanceTokensAlg2(g *Graph, s Speeds, tokens Vector, seed int64) (RunResult, error) {
	const maxRounds = 500_000
	alpha, err := DefaultAlphas(g, s)
	if err != nil {
		return RunResult{}, err
	}
	factory := FOSFactory(g, s, alpha)
	bt, err := TimeToBalance(factory, tokens.Float(), maxRounds)
	if err != nil {
		return RunResult{}, err
	}
	p, err := NewRandomizedFlowImitation(g, s, tokens, factory, rand.New(rand.NewSource(seed)))
	if err != nil {
		return RunResult{}, err
	}
	return Run(p, RunOptions{Rounds: bt, RealTotal: tokens.Total()})
}
