// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//   - BenchmarkTable1Diffusion  — Table 1 (diffusion model)
//   - BenchmarkTable2Matching   — Table 2 (periodic + random matching models)
//   - BenchmarkTheorem3ScalingD / ScalingWmax — the Theorem 3 "figures"
//   - BenchmarkTheorem8Scaling  — the Theorem 8 "figure"
//   - BenchmarkConvergenceTime  — T(FOS) vs T(SOS) vs T(matching)
//   - BenchmarkDummyTokens      — Lemma 7/11 dummy-token sweep
//   - BenchmarkSOSNegativeLoad  — Definition 1 check (only SOS violates)
//
// Each benchmark logs the reproduced rows (so `go test -bench=.` regenerates
// the paper's tables) and reports the headline measured value as a custom
// metric. Micro-benchmarks for the per-round cost of the core processes are
// at the bottom.
package discretelb_test

import (
	"math/rand"
	"testing"

	discretelb "repro"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/wal"
)

func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Trials = 3
	return cfg
}

func BenchmarkTable1Diffusion(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatTable1(rows))
	worstAlg1 := 0.0
	for _, r := range rows {
		if r.Scheme == experiments.SchemeAlg1.String() && r.MaxMin > worstAlg1 {
			worstAlg1 = r.MaxMin
		}
	}
	b.ReportMetric(worstAlg1, "alg1-worst-maxmin")
}

func BenchmarkTable2Matching(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatTable2(rows))
	worstAlg1 := 0.0
	for _, r := range rows {
		if r.Scheme == experiments.SchemeMatchAlg1.String() && r.MaxMin > worstAlg1 {
			worstAlg1 = r.MaxMin
		}
	}
	b.ReportMetric(worstAlg1, "alg1-worst-maxmin")
}

func BenchmarkTheorem3ScalingD(b *testing.B) {
	cfg := benchConfig()
	dims := []int{3, 4, 5, 6, 7}
	sizes := []int{32, 64, 128}
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Theorem3ScalingD(dims, sizes, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F1 — Theorem 3 scaling in d and n", points))
	worstRatio := 0.0
	for _, p := range points {
		if p.Bound > 0 && p.Value/p.Bound > worstRatio {
			worstRatio = p.Value / p.Bound
		}
	}
	b.ReportMetric(worstRatio, "worst-value/bound")
}

func BenchmarkTheorem3ScalingWmax(b *testing.B) {
	cfg := benchConfig()
	wmaxes := []int64{1, 2, 4, 8}
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Theorem3ScalingWmax(wmaxes, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F2 — Theorem 3 scaling in wmax", points))
	worstRatio := 0.0
	for _, p := range points {
		if p.Bound > 0 && p.Value/p.Bound > worstRatio {
			worstRatio = p.Value / p.Bound
		}
	}
	b.ReportMetric(worstRatio, "worst-value/bound")
}

func BenchmarkTheorem8Scaling(b *testing.B) {
	cfg := benchConfig()
	dims := []int{3, 4, 5, 6, 7}
	sizes := []int{32, 64, 128}
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Theorem8Scaling(dims, sizes, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F3 — Theorem 8 scaling in d and n", points))
	worstRatio := 0.0
	for _, p := range points {
		if p.Bound > 0 && p.Value/p.Bound > worstRatio {
			worstRatio = p.Value / p.Bound
		}
	}
	b.ReportMetric(worstRatio, "worst-value/bound")
}

func BenchmarkConvergenceTime(b *testing.B) {
	cfg := benchConfig()
	graphs := map[string]*graph.Graph{}
	if g, err := graph.Cycle(48); err == nil {
		graphs["cycle-48"] = g
	}
	if g, err := graph.Torus(8, 8); err == nil {
		graphs["torus-8x8"] = g
	}
	if g, err := graph.Hypercube(6); err == nil {
		graphs["hypercube-6"] = g
	}
	var points []experiments.ConvergencePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.ConvergenceTimes(graphs, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatConvergence(points))
	for _, p := range points {
		if p.Graph == "cycle-48" {
			b.ReportMetric(float64(p.TFOS)/float64(p.TSOS), "cycle-fos/sos-speedup")
		}
	}
}

func BenchmarkDummyTokens(b *testing.B) {
	cfg := benchConfig()
	floors := []int64{0, 2, 4, 8}
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.DummyTokenSweep(floors, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F5 — dummy tokens vs initial floor", points))
}

func BenchmarkSOSNegativeLoad(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.SOSNegativeLoadCheck(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F6 — Definition 1 (negative load) check", points))
}

func BenchmarkTable3GeneralModel(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(cfg, 6, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatRows(
		"Table 3 (extension) — general model (wmax=6, speeds 1..4)", rows))
}

func BenchmarkCycleLowerBound(b *testing.B) {
	cfg := benchConfig()
	cfg.MaxRounds = 5_000_000
	sizes := []int{16, 32, 64}
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.CycleLowerBound(sizes, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F11 — cycle lower-bound separation", points))
}

func BenchmarkPotentialDrop(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.PotentialDrop(cfg, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F7 — potential drop", points))
}

func BenchmarkAblationAlpha(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.AlphaAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F8 — alpha ablation", points))
}

func BenchmarkAblationPolicy(b *testing.B) {
	cfg := benchConfig()
	var points []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.PolicyAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F9 — policy ablation", points))
}

func BenchmarkAblationBetaAndRotor(b *testing.B) {
	cfg := benchConfig()
	var beta, rotor []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		beta, err = experiments.BetaSweep([]float64{1.0, 1.5, 1.8}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rotor, err = experiments.ExcessVsRotor(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.FormatScalePoints("F10 — SOS beta sweep", beta))
	b.Log("\n" + experiments.FormatScalePoints("F10b — excess vs rotor", rotor))
}

// --- Micro-benchmarks: per-round cost of the core processes ---

func benchGraphAndLoad(b *testing.B) (*discretelb.Graph, discretelb.Speeds, discretelb.Vector) {
	b.Helper()
	g, err := discretelb.NewTorus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	x0, err := discretelb.PointMass(g.N(), 64*int64(g.N()), 0)
	if err != nil {
		b.Fatal(err)
	}
	return g, s, x0
}

func BenchmarkFOSRound(b *testing.B) {
	g, s, x0 := benchGraphAndLoad(b)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		b.Fatal(err)
	}
	p, err := discretelb.NewFOS(g, s, alpha, x0.Float())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkAlg1Round(b *testing.B) {
	g, s, x0 := benchGraphAndLoad(b)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := discretelb.NewTokens(x0)
	if err != nil {
		b.Fatal(err)
	}
	p, err := discretelb.NewFlowImitation(g, s, dist, discretelb.FOSFactory(g, s, alpha), discretelb.PolicyLIFO)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkAlg2Round(b *testing.B) {
	g, s, x0 := benchGraphAndLoad(b)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		b.Fatal(err)
	}
	p, err := discretelb.NewRandomizedFlowImitation(g, s, x0, discretelb.FOSFactory(g, s, alpha),
		rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkDistClusterRound(b *testing.B) {
	g, s, x0 := benchGraphAndLoad(b)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := discretelb.NewTokens(x0)
	if err != nil {
		b.Fatal(err)
	}
	c, err := discretelb.NewCluster(g, s, dist, discretelb.FOSMaker(g, s, alpha))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkEngineStep measures the engine hot path: one balancing round of
// the online runtime on a 10k-node torus with ~8 tokens/node in flight,
// sharded over the default worker pool (metrics sampling included — it is
// part of the runtime).
func BenchmarkEngineStep(b *testing.B) {
	g, err := discretelb.NewTorus(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens := discretelb.UniformRandomLoad(g.N(), 8*int64(g.N()), rand.New(rand.NewSource(1)))
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := discretelb.NewEngine(discretelb.EngineConfig{Graph: g, Speeds: s, Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBurst measures the event-heavy regime: per iteration a
// burst of 1024 arrival events (4 unit tokens each) plus 1024 matching
// completion events all due in the same round on a 10k-node torus,
// followed by one balancing round. Completions fire after arrivals
// (event-kind ordering), so the in-flight load stays bounded across
// iterations and the measurement isolates per-event overhead — the cost
// of conservation accounting under bursts.
func BenchmarkEngineBurst(b *testing.B) {
	const events = 1024
	g, err := discretelb.NewTorus(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens := discretelb.UniformRandomLoad(g.N(), 8*int64(g.N()), rand.New(rand.NewSource(1)))
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := discretelb.NewEngine(discretelb.EngineConfig{Graph: g, Speeds: s, Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := eng.Round()
		for k := 0; k < events; k++ {
			node := (k * 9) % g.N()
			if err := eng.Schedule(discretelb.EngineArrival(at, node, 4)); err != nil {
				b.Fatal(err)
			}
			if err := eng.Schedule(discretelb.EngineCompletion(at, node, 4)); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBurstWAL is BenchmarkEngineBurst with a write-ahead log
// attached at the default fsync policy (interval): every applied event and
// round marker is encoded and buffered, with periodic fsyncs amortized
// across rounds. The delta against BenchmarkEngineBurst is the durability
// overhead in the regime that stresses it most (2048 logged events per
// round); the acceptance budget is <10%.
func BenchmarkEngineBurstWAL(b *testing.B) {
	const events = 1024
	g, err := discretelb.NewTorus(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens := discretelb.UniformRandomLoad(g.N(), 8*int64(g.N()), rand.New(rand.NewSource(1)))
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		b.Fatal(err)
	}
	w, _, err := wal.Open(wal.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	// SnapshotEvery is set beyond any realistic b.N so the measurement
	// isolates steady-state logging, not snapshot writes.
	eng, err := discretelb.NewEngine(discretelb.EngineConfig{
		Graph: g, Speeds: s, Tasks: tasks, WAL: w, SnapshotEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := eng.Round()
		for k := 0; k < events; k++ {
			node := (k * 9) % g.N()
			if err := eng.Schedule(discretelb.EngineArrival(at, node, 4)); err != nil {
				b.Fatal(err)
			}
			if err := eng.Schedule(discretelb.EngineCompletion(at, node, 4)); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineChurn measures topology-event cost: per iteration one
// NodeJoin (three peers) and one NodeLeave of the joined node, each
// followed by a balancing round — covering neighbourhood α rebuilds, load
// redistribution and the per-event conservation audit on a 1k-node torus.
func BenchmarkEngineChurn(b *testing.B) {
	g, err := discretelb.NewTorus(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	s := discretelb.UniformSpeeds(g.N())
	tokens := discretelb.UniformRandomLoad(g.N(), 8*int64(g.N()), rand.New(rand.NewSource(1)))
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := discretelb.NewEngine(discretelb.EngineConfig{Graph: g, Speeds: s, Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := eng.Round()
		if err := eng.Schedule(discretelb.EngineJoin(at, 1, 7, 300, 777)); err != nil {
			b.Fatal(err)
		}
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
		// The joined node always lands in the first recycled slot.
		if err := eng.Schedule(discretelb.EngineLeave(eng.Round(), g.N())); err != nil {
			b.Fatal(err)
		}
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// quiescedEngineBench builds an exactly-uniform engine (equal speeds,
// identical integer loads) so every edge flow is bitwise zero and the
// activity gate puts the whole graph to sleep, then steps until the hot
// set drains. Sampling is throttled on both the gated and ungated
// variants so the O(n) metrics scan does not mask the round cost.
func quiescedEngineBench(b *testing.B, rows, cols, sampleEvery int, gate discretelb.EngineGateMode) *discretelb.Engine {
	b.Helper()
	g, err := discretelb.NewTorus(rows, cols)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make(discretelb.Vector, g.N())
	for i := range tokens {
		tokens[i] = 8
	}
	tasks, err := discretelb.NewTokens(tokens)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := discretelb.NewEngine(discretelb.EngineConfig{
		Graph: g, Speeds: discretelb.UniformSpeeds(g.N()), Tasks: tasks,
		Gate: gate, SampleEvery: sampleEvery,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	for r := 0; r < 4; r++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// stepQuiesced is one mostly-quiescent iteration: a load-neutral paired
// arrival+completion at one node (≤1% of the graph hot) followed by a
// balancing round. The perturbed neighbourhood cools again immediately,
// so the hot fraction stays constant across iterations.
func stepQuiesced(b *testing.B, eng *discretelb.Engine) {
	at := eng.Round()
	if err := eng.Schedule(discretelb.EngineArrival(at, 0, 4)); err != nil {
		b.Fatal(err)
	}
	if err := eng.Schedule(discretelb.EngineCompletion(at, 0, 4)); err != nil {
		b.Fatal(err)
	}
	if err := eng.Step(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineStepQuiesced is the activity-gate headline: a 10k-node
// torus where only one node's neighbourhood is hot per round (4 edges of
// 20k, 0.02%). The gated engine runs the round over the hot frontier
// only; the acceptance target is ≥10× over the Ungated twin below, which
// measures the identical workload with the full-scan round.
func BenchmarkEngineStepQuiesced(b *testing.B) {
	eng := quiescedEngineBench(b, 100, 100, 100, discretelb.EngineGateOn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepQuiesced(b, eng)
	}
}

// BenchmarkEngineStepQuiescedUngated is the full-scan baseline for the
// quiesced workload — same graph, same events, gate forced off.
func BenchmarkEngineStepQuiescedUngated(b *testing.B) {
	eng := quiescedEngineBench(b, 100, 100, 100, discretelb.EngineGateOff)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepQuiesced(b, eng)
	}
}

// BenchmarkEngineStepMillion is the first million-node in-process round:
// a 1000×1000 torus (1M nodes, 2M edges), mostly quiesced, one hot
// neighbourhood per round. Affordable only because the gate makes the
// round cost O(|hot|) instead of O(n+m). Sampling is throttled harder
// than the 10k benchmark — at this scale the O(n) discrepancy scan of a
// single sample costs ~50 gated rounds.
func BenchmarkEngineStepMillion(b *testing.B) {
	eng := quiescedEngineBench(b, 1000, 1000, 1000, discretelb.EngineGateOn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepQuiesced(b, eng)
	}
}

func BenchmarkRoundDownRound(b *testing.B) {
	g, s, x0 := benchGraphAndLoad(b)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		b.Fatal(err)
	}
	p, err := discretelb.NewRoundDownDiffusion(g, s, alpha, x0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
