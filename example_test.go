package discretelb_test

import (
	"fmt"
	"math/rand"

	discretelb "repro"
)

// The smallest possible instance makes the flow-imitation mechanics visible:
// two nodes joined by one edge, eleven tokens on the first. The continuous
// FOS flow over the edge in round 0 is α·x = 11/2 = 5.5, so Algorithm 1
// forwards exactly floor(5.5) = 5 whole tokens.
func ExampleNewFlowImitation() {
	g, err := discretelb.NewGraph(2, [][2]int{{0, 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	s := discretelb.UniformSpeeds(2)
	dist, err := discretelb.NewTokens(discretelb.Vector{11, 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := discretelb.NewFlowImitation(g, s, dist,
		discretelb.FOSFactory(g, s, alpha), discretelb.PolicyLIFO)
	if err != nil {
		fmt.Println(err)
		return
	}
	p.Step()
	fmt.Println(p.Load())
	// Output: [6 5]
}

// A matched pair with speeds 2 and 3 equalizes makespans in a single
// dimension-exchange round: the continuous split of 100 tokens is (40, 60),
// and round-down dimension exchange hits it exactly because the transfer is
// integral.
func ExampleNewMatchingProcess() {
	g, err := discretelb.NewGraph(2, [][2]int{{0, 1}})
	if err != nil {
		fmt.Println(err)
		return
	}
	s := discretelb.Speeds{2, 3}
	sched, err := discretelb.NewPeriodicFromColoring(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := discretelb.NewMatchingProcess(g, s, sched, []float64{100, 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	p.Step()
	fmt.Println(p.Load())
	// Output: [40 60]
}

// BalancingTime reports the paper's T: the first round where every node is
// within 1 of its speed-proportional share. On the complete graph K4 with
// α = 1/4, a 400-token point mass balances in a single FOS round: node 0
// sends exactly 100 to each neighbour.
func ExampleBalancingTime() {
	g, err := discretelb.NewComplete(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := discretelb.UniformSpeeds(4)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := discretelb.NewFOS(g, s, alpha, []float64{400, 0, 0, 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	bt, err := discretelb.BalancingTime(p, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(bt)
	// Output: 1
}

// Algorithm 2 is seeded: the same seed reproduces the same trajectory.
func ExampleNewRandomizedFlowImitation() {
	g, err := discretelb.NewCycle(6)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := discretelb.UniformSpeeds(6)
	alpha, err := discretelb.DefaultAlphas(g, s)
	if err != nil {
		fmt.Println(err)
		return
	}
	run := func() discretelb.Vector {
		p, err := discretelb.NewRandomizedFlowImitation(g, s,
			discretelb.Vector{60, 0, 0, 0, 0, 0},
			discretelb.FOSFactory(g, s, alpha), rand.New(rand.NewSource(5)))
		if err != nil {
			fmt.Println(err)
			return nil
		}
		for t := 0; t < 30; t++ {
			p.Step()
		}
		return p.Load()
	}
	a, b := run(), run()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	fmt.Println("reproducible:", same, "total:", a.Total())
	// Output: reproducible: true total: 60
}
